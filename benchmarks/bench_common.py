"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's Section 6
(see DESIGN.md's experiment index).  Because the paper's full protocol
(100 repetitions, 1 % CI / 10 % RE targets, a 2x Xeon server) does not
fit a laptop budget, benchmarks run a *scaled* protocol by default and
the full one when requested:

* ``REPRO_BENCH_SCALE`` (float, default 1.0) — multiplies repetition
  counts and budgets; ``REPRO_FULL=1`` selects paper-scale settings.
* quality targets are relaxed by a per-experiment factor at default
  scale (the comparisons are unchanged: same budget accounting for all
  methods).

Every experiment writes its paper-vs-measured table to
``benchmarks/results/<name>.txt`` (and prints it, visible with
``pytest -s``), so the tee'd benchmark log plus the results directory
together document the reproduction.
"""

from __future__ import annotations

import math
import os
from pathlib import Path

from repro.core.estimates import DurabilityEstimate
from repro.core.quality import (ConfidenceIntervalTarget,
                                RelativeErrorTarget)

RESULTS_DIR = Path(__file__).resolve().parent / "results"
RNN_CACHE_DIR = str(Path(__file__).resolve().parent / "_cache")

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def repetitions(default: int, paper: int = 100) -> int:
    """Scaled repetition count (the paper averages over ``paper`` runs)."""
    if FULL:
        return paper
    return max(3, int(round(default * SCALE)))


def quality_for(spec, relax_ci: float = 5.0, relax_re: float = 2.5):
    """The workload's stopping rule, relaxed unless running full-scale."""
    if FULL:
        return spec.quality_target(1.0)
    relax = relax_ci if spec.quality_kind == "ci" else relax_re
    return spec.quality_target(relax / max(SCALE, 1e-9))


def step_cap(default: int) -> int:
    """Budget cap protecting laptop runtimes; lifted in full mode."""
    if FULL:
        return default * 100
    return int(default * SCALE)


def run_to_quality(sampler, query, quality, cap: int, seed: int):
    """Run until the quality target or the cap; extrapolate if capped.

    Returns ``(estimate, steps_to_target, capped)`` where
    ``steps_to_target`` is the measured cost, or — when the cap hit
    first — the projected cost from the 1/n variance law (clearly
    flagged).  This keeps the SRS side of rare-event comparisons
    affordable without distorting the reported ratios.
    """
    estimate = sampler.run(query, quality=quality, max_steps=cap, seed=seed)
    if quality.is_met(estimate.probability, estimate.variance,
                      estimate.hits, estimate.n_roots):
        return estimate, estimate.steps, False
    projected = project_steps_to_target(estimate, quality)
    return estimate, projected, True


def project_steps_to_target(estimate: DurabilityEstimate, quality) -> int:
    """Project the steps needed to meet ``quality`` from a capped run."""
    probability = estimate.probability
    if probability <= 0.0 or estimate.variance <= 0.0:
        return estimate.steps * 100  # no signal at all; report a bound
    if isinstance(quality, RelativeErrorTarget):
        current = math.sqrt(estimate.variance) / probability
        ratio = (current / quality.target) ** 2
    elif isinstance(quality, ConfidenceIntervalTarget):
        from repro.core.stats import critical_value

        half = critical_value(quality.confidence) * math.sqrt(
            estimate.variance)
        allowed = quality.half_width * (probability if quality.relative
                                        else 1.0)
        ratio = (half / allowed) ** 2
    else:
        return estimate.steps
    return int(estimate.steps * max(ratio, 1.0))


def mean_std(values) -> tuple:
    values = list(values)
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var)


def write_report(name: str, title: str, lines) -> str:
    """Write (and print) an experiment report; returns the text."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    header = [title, "=" * len(title),
              f"(scale={'FULL' if FULL else SCALE}; see EXPERIMENTS.md)"]
    text = "\n".join(header + [""] + list(lines)) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text


def speedup(baseline: float, improved: float) -> float:
    """Cost ratio baseline/improved (>1 means the improvement wins)."""
    if improved <= 0:
        return math.inf
    return baseline / improved
