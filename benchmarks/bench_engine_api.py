"""Engine service API: curve-vs-N-runs and batch-vs-loop speedups.

Measures what the :class:`repro.engine.DurabilityEngine` amortizes:

* **durability_curve vs. independent answers** — a 16-threshold grid on
  the random-walk workload, answered by one shared simulation pass
  (running path maxima) vs. 16 independent ``answer()`` calls at the
  same per-threshold accuracy (identical root counts, hence identical
  binomial variance per threshold).  Acceptance: >= 5x fewer simulation
  steps *and* >= 5x less wall-clock, with every curve estimate agreeing
  with the exact DP answer within its own CI.
* **answer_batch vs. a Python loop** — a screening workload (several
  process configurations x several thresholds): cohort grouping turns
  ``configs * thresholds`` runs into ``configs`` shared passes.
* **plan caching** — the greedy plan search runs once per query shape;
  repeats skip it entirely.

Results land in ``BENCH_engine_api.json`` at the repo root and
``benchmarks/results/engine_api.txt``.
"""

import json
import math
import time
from pathlib import Path

from bench_common import write_report
from repro.core.analytic import random_walk_hitting_probability
from repro.core.stats import critical_value
from repro.core.value_functions import DurabilityQuery
from repro.engine import DurabilityEngine, ExecutionPolicy
from repro.processes.random_walk import RandomWalkProcess

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_JSON = REPO_ROOT / "BENCH_engine_api.json"

HORIZON = 60
#: The acceptance grid: 16 thresholds spanning easy to rare.
CURVE_THRESHOLDS = tuple(float(b) for b in range(2, 18))
CURVE_ROOTS = 20_000


def walk_process():
    return RandomWalkProcess(p_up=0.35, p_down=0.45)


def walk_query(process, beta):
    return DurabilityQuery.threshold(
        process, RandomWalkProcess.position, beta=beta, horizon=HORIZON,
        name=f"walk-{beta:g}-{HORIZON}")


def bench_curve_vs_independent():
    """One shared pass vs. one run per threshold, same accuracy."""
    process = walk_process()
    base = walk_query(process, CURVE_THRESHOLDS[-1])
    engine = DurabilityEngine(ExecutionPolicy(
        method="srs", max_roots=CURVE_ROOTS, seed=31))

    started = time.perf_counter()
    independent = [engine.answer(base.with_threshold(beta),
                                 seed=100 + int(beta))
                   for beta in CURVE_THRESHOLDS]
    independent_seconds = time.perf_counter() - started
    independent_steps = sum(e.steps for e in independent)

    started = time.perf_counter()
    curve = engine.durability_curve(base, CURVE_THRESHOLDS, seed=32)
    curve_seconds = time.perf_counter() - started

    z95 = critical_value(0.95)
    agreement = []
    for (beta, estimate), single in zip(curve, independent):
        exact = random_walk_hitting_probability(
            process.p_up, int(beta), HORIZON, p_down=process.p_down)
        curve_ok = (abs(estimate.probability - exact)
                    <= z95 * estimate.std_error + 1e-4)
        joint = z95 * math.sqrt(estimate.variance + single.variance)
        agreement.append({
            "threshold": beta,
            "exact": exact,
            "curve_estimate": estimate.probability,
            "independent_estimate": single.probability,
            "curve_within_ci_of_exact": bool(curve_ok),
            "agree_within_joint_ci": bool(
                abs(estimate.probability - single.probability)
                <= joint + 1e-4),
        })

    return {
        "thresholds": len(CURVE_THRESHOLDS),
        "roots_per_threshold": CURVE_ROOTS,
        "independent": {"steps": independent_steps,
                        "seconds": round(independent_seconds, 4)},
        "curve": {"steps": curve.steps,
                  "seconds": round(curve_seconds, 4)},
        "speedup_steps": round(independent_steps / curve.steps, 2),
        "speedup_wall": round(independent_seconds / curve_seconds, 2),
        "per_threshold": agreement,
    }


def bench_batch_vs_loop():
    """Cohort grouping vs. answering a screen one query at a time."""
    processes = [RandomWalkProcess(p_up=p_up, p_down=0.45)
                 for p_up in (0.32, 0.35, 0.38, 0.41)]
    thresholds = (4.0, 8.0, 12.0, 16.0)
    queries = [walk_query(process, beta)
               for process in processes for beta in thresholds]
    policy = ExecutionPolicy(method="srs", max_roots=10_000, seed=33)

    engine = DurabilityEngine(policy)
    started = time.perf_counter()
    loop = [engine.answer(query, seed=200 + index)
            for index, query in enumerate(queries)]
    loop_seconds = time.perf_counter() - started
    loop_steps = sum(e.steps for e in loop)

    engine = DurabilityEngine(policy)
    started = time.perf_counter()
    batch = engine.answer_batch(queries)
    batch_seconds = time.perf_counter() - started
    # Cohort members report their shared pass; count each pass once.
    batch_steps = sum({e.details["cohort_id"]: e.steps
                       for e in batch}.values())

    max_diff = max(abs(a.probability - b.probability)
                   for a, b in zip(loop, batch))
    return {
        "queries": len(queries),
        "cohorts": len(processes),
        "loop": {"steps": loop_steps, "seconds": round(loop_seconds, 4)},
        "batch": {"steps": batch_steps, "seconds": round(batch_seconds, 4)},
        "speedup_steps": round(loop_steps / batch_steps, 2),
        "speedup_wall": round(loop_seconds / batch_seconds, 2),
        "max_probability_difference": max_diff,
    }


def bench_plan_cache():
    """Greedy plan search amortized across repeated query shapes."""
    process = walk_process()
    query = walk_query(process, 12.0)
    engine = DurabilityEngine(ExecutionPolicy(
        max_steps=120_000, seed=34, trial_steps=10_000))

    started = time.perf_counter()
    first = engine.answer(query)
    first_seconds = time.perf_counter() - started
    started = time.perf_counter()
    second = engine.answer(query)
    second_seconds = time.perf_counter() - started

    return {
        "first_call": {
            "seconds": round(first_seconds, 4),
            "search_steps": first.details["plan_search"]["search_steps"],
            "plan_cache": first.details["plan_cache"],
        },
        "repeat_call": {
            "seconds": round(second_seconds, 4),
            "search_steps": second.details["plan_search"]["search_steps"],
            "plan_cache": second.details["plan_cache"],
        },
        "search_steps_saved":
            first.details["plan_search"]["search_steps"],
        "cache_stats": engine.cache_stats(),
    }


def run_benchmark():
    results = {
        "benchmark": "engine_api",
        "unit": "simulation steps and wall-clock seconds",
        "curve_vs_independent": bench_curve_vs_independent(),
        "batch_vs_loop": bench_batch_vs_loop(),
        "plan_cache": bench_plan_cache(),
    }
    RESULT_JSON.write_text(json.dumps(results, indent=2) + "\n")

    curve = results["curve_vs_independent"]
    batch = results["batch_vs_loop"]
    cache = results["plan_cache"]
    lines = [
        f"durability_curve over {curve['thresholds']} thresholds "
        f"({curve['roots_per_threshold']:,} roots each):",
        f"  independent: {curve['independent']['steps']:>12,} steps "
        f"{curve['independent']['seconds']:>8.2f}s",
        f"  one pass:    {curve['curve']['steps']:>12,} steps "
        f"{curve['curve']['seconds']:>8.2f}s",
        f"  speedup:     {curve['speedup_steps']:.1f}x steps, "
        f"{curve['speedup_wall']:.1f}x wall-clock",
        f"  oracle agreement: "
        f"{sum(r['curve_within_ci_of_exact'] for r in curve['per_threshold'])}"
        f"/{curve['thresholds']} within own 95% CI",
        "",
        f"answer_batch over {batch['queries']} queries "
        f"({batch['cohorts']} cohorts):",
        f"  loop:  {batch['loop']['steps']:>12,} steps "
        f"{batch['loop']['seconds']:>8.2f}s",
        f"  batch: {batch['batch']['steps']:>12,} steps "
        f"{batch['batch']['seconds']:>8.2f}s",
        f"  speedup: {batch['speedup_steps']:.1f}x steps, "
        f"{batch['speedup_wall']:.1f}x wall-clock",
        "",
        f"plan cache: repeat call skipped "
        f"{cache['search_steps_saved']:,} search steps "
        f"({cache['first_call']['seconds']:.2f}s -> "
        f"{cache['repeat_call']['seconds']:.2f}s)",
        "",
        f"JSON: {RESULT_JSON}",
    ]
    write_report("engine_api",
                 "Engine API — shared passes vs. per-query runs", lines)
    return results


def test_engine_api():
    results = run_benchmark()
    curve = results["curve_vs_independent"]
    # Acceptance: one pass answers the 16-threshold grid >= 5x cheaper
    # than 16 independent runs, at matched per-threshold accuracy.
    assert curve["speedup_steps"] >= 5.0, curve
    assert curve["speedup_wall"] >= 5.0, curve
    for row in curve["per_threshold"]:
        assert row["curve_within_ci_of_exact"], row
    batch = results["batch_vs_loop"]
    assert batch["speedup_steps"] >= 2.0, batch
    cache = results["plan_cache"]
    assert cache["repeat_call"]["search_steps"] == 0, cache
    assert cache["repeat_call"]["plan_cache"] == "hit", cache


if __name__ == "__main__":
    run_benchmark()
