"""Ablations beyond the paper's figures.

Three design-choice checks DESIGN.md calls out:

1. **IS/CE comparator** (Section 2.2): on a Gaussian-step model where
   importance sampling *is* applicable, CE-tuned IS and MLSS both beat
   SRS — MLSS matching specialised IS without needing model internals.
2. **Bootstrap policy**: the conservative (geometric) evaluation
   schedule keeps bootstrap overhead a small fraction of g-MLSS time
   versus checking after every batch.
3. **Balanced-growth theory** (Eq. 13): the measured s-MLSS variance
   under a balanced plan tracks the branching-process prediction.
"""

import pytest

from bench_common import step_cap, write_report
from repro.core.gmlss import GMLSSSampler
from repro.core.importance import ISSampler, cross_entropy_tilt
from repro.core.levels import LevelPartition
from repro.core.quality import RelativeErrorTarget
from repro.core.smlss import SMLSSSampler
from repro.core.srs import SRSSampler
from repro.core.value_functions import DurabilityQuery
from repro.core.variance import balanced_growth_variance
from repro.processes.random_walk import GaussianWalkProcess


def gaussian_walk_query(threshold=9.0, horizon=25):
    process = GaussianWalkProcess(drift=0.0, sigma=1.0)
    return DurabilityQuery.threshold(process, GaussianWalkProcess.position,
                                     beta=threshold, horizon=horizon)


@pytest.mark.benchmark(group="ablations")
def test_ablation_is_ce_vs_mlss_vs_srs(benchmark):
    query = gaussian_walk_query()
    budget = step_cap(400_000)

    def run():
        tilt = cross_entropy_tilt(query, rounds=4, paths_per_round=400,
                                  seed=1)
        # Gaussian steps can cross several levels at once, so only the
        # general estimator is sound here (s-MLSS would be biased low).
        results = {
            "srs": SRSSampler().run(query, max_steps=budget, seed=2),
            "is-ce": ISSampler(tilt=tilt).run(query, max_steps=budget,
                                              seed=3),
            "mlss": GMLSSSampler(LevelPartition([0.33, 0.55, 0.75, 0.9]),
                                 ratio=3).run(query, max_steps=budget,
                                              seed=4),
        }
        return tilt, results

    tilt, results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"CE tilt: {tilt:.3f}"]
    for name, est in results.items():
        lines.append(f"{name:6s} tau={est.probability:.6f} "
                     f"RE={est.relative_error():.3f} steps={est.steps}")
    write_report("ablation_is_ce",
                 "Ablation — IS/CE vs MLSS vs SRS (Gaussian walk)", lines)
    assert results["is-ce"].relative_error() < results[
        "srs"].relative_error()
    assert results["mlss"].relative_error() < results[
        "srs"].relative_error()


@pytest.mark.benchmark(group="ablations")
def test_ablation_bootstrap_policy(benchmark, small_plan=None):
    from repro.processes.markov_chain import birth_death_chain

    chain = birth_death_chain(n=13, p_up=0.25, p_down=0.35)
    query = DurabilityQuery.threshold(chain, chain.state_value, beta=12.0,
                                      horizon=60)
    partition = LevelPartition([4 / 12, 8 / 12])
    target = RelativeErrorTarget(target=0.15)

    def run():
        eager = GMLSSSampler(partition, ratio=3, batch_roots=100,
                             first_check_roots=100, check_growth=1.0001)
        lazy = GMLSSSampler(partition, ratio=3, batch_roots=100,
                            first_check_roots=200, check_growth=1.5)
        return (eager.run(query, quality=target, max_roots=200_000, seed=5),
                lazy.run(query, quality=target, max_roots=200_000, seed=5))

    eager, lazy = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for name, est in (("eager", eager), ("conservative", lazy)):
        share = est.details["bootstrap_seconds"] / max(
            est.elapsed_seconds, 1e-9)
        lines.append(
            f"{name:12s} evals={est.details['bootstrap_evals']:>3d} "
            f"boot-share={share:.0%} total={est.elapsed_seconds:.2f}s "
            f"tau={est.probability:.5f}")
    write_report("ablation_bootstrap_policy",
                 "Ablation — bootstrap evaluation schedule", lines)
    assert lazy.details["bootstrap_evals"] < eager.details[
        "bootstrap_evals"]
    assert (lazy.details["bootstrap_seconds"]
            <= eager.details["bootstrap_seconds"])


@pytest.mark.benchmark(group="ablations")
def test_ablation_balanced_growth_theory(benchmark):
    """Eq. 13 vs measured: same order for the balanced chain plan."""
    from repro.core.analytic import hitting_probability
    from repro.processes.markov_chain import birth_death_chain

    chain = birth_death_chain(n=13, p_up=0.25, p_down=0.35)
    query = DurabilityQuery.threshold(chain, chain.state_value, beta=12.0,
                                      horizon=60)
    tau = hitting_probability(chain.matrix, 0, [12], 60)
    partition = LevelPartition([4 / 12, 8 / 12])
    n_roots = 400

    def run():
        estimates = []
        for seed in range(30):
            est = SMLSSSampler(partition, ratio=3).run(
                query, max_roots=n_roots, seed=seed)
            estimates.append(est.probability)
        mean = sum(estimates) / len(estimates)
        empirical = sum((e - mean) ** 2
                        for e in estimates) / (len(estimates) - 1)
        return mean, empirical

    mean, empirical = benchmark.pedantic(run, rounds=1, iterations=1)
    predicted = balanced_growth_variance(tau, partition.num_levels, n_roots)
    lines = [f"exact tau        = {tau:.6f}",
             f"mean estimate    = {mean:.6f}",
             f"empirical var    = {empirical:.3e}",
             f"Eq. 13 predicted = {predicted:.3e}",
             f"ratio            = {empirical / predicted:.2f}"]
    write_report("ablation_eq13",
                 "Ablation — balanced-growth variance (Eq. 13) vs measured",
                 lines)
    # Same order of magnitude (the plan is only approximately balanced,
    # and Eq. 13 ignores within-level correlation).
    assert 0.1 < empirical / predicted < 10.0
