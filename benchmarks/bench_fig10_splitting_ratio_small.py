"""Figure 10: splitting ratio vs total simulation steps, Small queries.

Paper's shape: cost is U-shaped in the ratio; r = 1 reproduces SRS, the
optimum sits in a narrow band around r = 3, and large ratios blow up the
per-root tree size.
"""

import pytest

from bench_common import step_cap, write_report
from experiments import format_sweep, splitting_ratio_sweep

RATIOS = (1, 2, 3, 4, 5, 6, 7)


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("key", ["queue-small", "cpp-small"])
def test_fig10_splitting_ratio_tradeoff_small(benchmark, key):
    cap = step_cap(3_000_000)
    rows = benchmark.pedantic(
        lambda: splitting_ratio_sweep(key, RATIOS, cap=cap, num_levels=4),
        rounds=1, iterations=1)
    write_report(f"fig10_ratio_{key}",
                 f"Figure 10 — splitting ratio sweep, {key}",
                 format_sweep(rows, "ratio"))
    steps = {row["ratio"]: row["steps"] for row in rows}
    best = min(steps, key=steps.get)
    assert 2 <= best <= 5, f"optimal ratio {best} outside the paper's band"
    # Some moderate ratio must beat both extremes of the sweep.
    assert steps[best] < steps[1]
    assert steps[best] < steps[7]
