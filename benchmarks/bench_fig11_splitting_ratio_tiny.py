"""Figure 11: splitting ratio vs total steps, Tiny queries.

Paper's shape: same U-shaped trade-off as Figure 10, with the rarer
query tolerating (slightly) larger ratios.
"""

import pytest

from bench_common import step_cap, write_report
from experiments import format_sweep, splitting_ratio_sweep

RATIOS = (1, 2, 3, 4, 5, 6, 7)


@pytest.mark.benchmark(group="fig11")
@pytest.mark.parametrize("key", ["queue-tiny", "cpp-tiny"])
def test_fig11_splitting_ratio_tradeoff_tiny(benchmark, key):
    cap = step_cap(6_000_000)
    rows = benchmark.pedantic(
        lambda: splitting_ratio_sweep(key, RATIOS, cap=cap, num_levels=5),
        rounds=1, iterations=1)
    write_report(f"fig11_ratio_{key}",
                 f"Figure 11 — splitting ratio sweep, {key}",
                 format_sweep(rows, "ratio"))
    steps = {row["ratio"]: row["steps"] for row in rows}
    best = min(steps, key=steps.get)
    assert 2 <= best <= 6, f"optimal ratio {best} outside the paper's band"
    assert steps[best] < steps[1], "splitting must beat SRS (r = 1)"
