"""Figure 12: number of levels vs total steps (balanced plans, r = 3).

Paper's shape: a level-count trade-off with a query-dependent optimum —
Small queries prefer few levels, Tiny queries 5-6.
"""

import pytest

from bench_common import step_cap, write_report
from experiments import format_sweep, level_count_sweep


@pytest.mark.benchmark(group="fig12")
@pytest.mark.parametrize("key,levels,cap", [
    ("queue-small", (2, 3, 4, 5), 3_000_000),
    ("cpp-small", (2, 3, 4, 5), 3_000_000),
    ("queue-tiny", (2, 3, 4, 5, 6, 7, 8), 8_000_000),
    ("cpp-tiny", (2, 3, 4, 5, 6, 7, 8), 8_000_000),
])
def test_fig12_level_count_tradeoff(benchmark, key, levels, cap):
    rows = benchmark.pedantic(
        lambda: level_count_sweep(key, levels, cap=step_cap(cap)),
        rounds=1, iterations=1)
    write_report(f"fig12_levels_{key}",
                 f"Figure 12 — level-count sweep, {key}",
                 format_sweep(rows, "levels"))
    steps = {row["levels"]: row["steps"] for row in rows}
    best = min(steps, key=steps.get)
    if key.endswith("tiny"):
        assert best >= 3, f"tiny queries should want several levels: {best}"
        assert steps[best] < steps[2]
    else:
        assert steps[best] <= steps[levels[-1]], (
            "small queries should not need the deepest plan")
