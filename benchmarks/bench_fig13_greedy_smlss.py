"""Figure 13: greedy level partitions vs MLSS-BAL vs SRS (s-MLSS).

Paper's shape: the automated greedy search lands near the manually
tuned balanced plan (10-30 % search overhead) and both stay far below
SRS — up to an order of magnitude on Tiny/Rare.
"""

import pytest

from bench_common import RNN_CACHE_DIR, step_cap, write_report
from experiments import format_greedy_rows, greedy_comparison


@pytest.mark.benchmark(group="fig13")
def test_fig13_greedy_vs_balanced_queue_cpp(benchmark):
    cap = step_cap(5_000_000)
    rows = benchmark.pedantic(
        lambda: greedy_comparison(
            ("queue-small", "queue-tiny", "cpp-small", "cpp-tiny"),
            cap=cap, trial_steps=15_000),
        rounds=1, iterations=1)
    write_report("fig13_greedy_smlss",
                 "Figure 13 — greedy partitions vs MLSS-BAL vs SRS",
                 format_greedy_rows(rows))
    for row in rows:
        total_greedy = row["greedy_steps"] + row["search_steps"]
        assert total_greedy < row["srs_steps"], (
            f"{row['workload']}: greedy (incl. search) must beat SRS")
        # Greedy should land within a small factor of the tuned plan.
        assert row["greedy_steps"] < 6 * max(row["bal_steps"], 1)


@pytest.mark.benchmark(group="fig13")
def test_fig13_greedy_on_rnn(benchmark):
    cap = step_cap(250_000)
    rows = benchmark.pedantic(
        lambda: greedy_comparison(("rnn-small",), cap=cap,
                                  trial_steps=10_000,
                                  rnn_cache=RNN_CACHE_DIR),
        rounds=1, iterations=1)
    write_report("fig13_greedy_rnn",
                 "Figure 13 (RNN) — greedy partitions vs MLSS-BAL vs SRS",
                 format_greedy_rows(rows))
    row = rows[0]
    assert row["greedy_steps"] + row["search_steps"] < row["srs_steps"]
