"""Figure 14: greedy partitions with g-MLSS on volatile processes.

Paper's shape: the fully automated pipeline (greedy search + g-MLSS +
bootstrap stopping) still beats SRS on the volatile workloads — ~20 %
on Tiny up to ~80 % on Rare.
"""

import pytest

from bench_common import step_cap, write_report
from experiments import format_gmlss_rows, gmlss_efficiency

KEYS = ("volatile-cpp-tiny", "volatile-cpp-rare",
        "volatile-queue-tiny", "volatile-queue-rare")


@pytest.mark.benchmark(group="fig14")
def test_fig14_greedy_gmlss_on_volatile(benchmark):
    cap = step_cap(4_000_000)
    rows = benchmark.pedantic(
        lambda: gmlss_efficiency(KEYS, cap=cap, use_greedy=True,
                                 trial_steps=15_000),
        rounds=1, iterations=1)
    write_report("fig14_greedy_gmlss",
                 "Figure 14 — greedy + g-MLSS on volatile processes",
                 format_gmlss_rows(rows))
    wins = sum(1 for row in rows
               if row["gmlss_steps"] < row["srs_steps"])
    assert wins >= 3, f"automated g-MLSS must beat SRS on most: {rows}"
    # Rare workloads should show the bigger gains (the paper's ~80 %).
    rare = [r for r in rows if r["workload"].endswith("rare")]
    tiny = [r for r in rows if r["workload"].endswith("tiny")]
    rare_gain = sum(r["srs_steps"] / max(r["gmlss_steps"], 1)
                    for r in rare)
    tiny_gain = sum(r["srs_steps"] / max(r["gmlss_steps"], 1)
                    for r in tiny)
    assert rare_gain > tiny_gain
