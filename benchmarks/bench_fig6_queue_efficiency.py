"""Figure 6: steps and time to the quality target, Queue model.

Paper's shape: MLSS cuts 40-60 % off Medium/Small queries and reaches
~10x on Tiny/Rare, where SRS wastes most paths.
"""

import pytest

from bench_common import step_cap, write_report
from experiments import efficiency_figure, format_efficiency_rows


@pytest.mark.benchmark(group="fig6")
def test_fig6_queue_efficiency(benchmark):
    cap = step_cap(6_000_000)
    rows = benchmark.pedantic(
        lambda: efficiency_figure("queue", cap=cap), rounds=1, iterations=1)
    write_report("fig6_queue_efficiency",
                 "Figure 6 — Queue model: cost to reach the quality target",
                 format_efficiency_rows(rows))
    by_type = {row["type"]: row for row in rows}
    # The paper: MLSS helps least on Medium ("may result in unnecessary
    # overhead") and most on Tiny/Rare (~10x).
    for qtype in ("medium", "small"):
        assert by_type[qtype]["step_speedup"] > 0.8, by_type[qtype]
    for qtype in ("tiny", "rare"):
        assert by_type[qtype]["step_speedup"] > 2.0, by_type[qtype]
    assert by_type["rare"]["step_speedup"] > (
        1.5 * by_type["medium"]["step_speedup"])
