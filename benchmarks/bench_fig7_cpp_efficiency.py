"""Figure 7: steps and time to the quality target, CPP model."""

import pytest

from bench_common import step_cap, write_report
from experiments import efficiency_figure, format_efficiency_rows


@pytest.mark.benchmark(group="fig7")
def test_fig7_cpp_efficiency(benchmark):
    cap = step_cap(6_000_000)
    rows = benchmark.pedantic(
        lambda: efficiency_figure("cpp", cap=cap), rounds=1, iterations=1)
    write_report("fig7_cpp_efficiency",
                 "Figure 7 — CPP model: cost to reach the quality target",
                 format_efficiency_rows(rows))
    by_type = {row["type"]: row for row in rows}
    for qtype in ("medium", "small"):
        assert by_type[qtype]["step_speedup"] > 0.8, by_type[qtype]
    for qtype in ("tiny", "rare"):
        assert by_type[qtype]["step_speedup"] > 2.0, by_type[qtype]
    assert by_type["rare"]["step_speedup"] > (
        1.5 * by_type["medium"]["step_speedup"])
