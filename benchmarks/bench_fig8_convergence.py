"""Figure 8: estimate and quality-guarantee convergence over time.

Paper's shape: both samplers' estimates stay inside their shrinking
confidence bands, and MLSS's band shrinks much faster per simulation
step than SRS's.
"""

import pytest

from bench_common import RNN_CACHE_DIR, step_cap, write_report
from experiments import convergence_trace, format_trace
from repro.workloads import workload


def final_relative_error(trace):
    last = trace[-1]
    return (last.variance ** 0.5 / last.probability
            if last.probability > 0 else float("inf"))


@pytest.mark.benchmark(group="fig8")
def test_fig8a_queue_small_ci_convergence(benchmark):
    budget = step_cap(400_000)
    spec = workload("queue-small")

    def run():
        return (convergence_trace("queue-small", "srs", budget),
                convergence_trace("queue-small", "smlss", budget))

    srs_trace, mlss_trace = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = (["SRS:"] + format_trace(srs_trace, spec.expected_probability,
                                     every=max(len(srs_trace) // 8, 1))
             + ["", "MLSS:"]
             + format_trace(mlss_trace, spec.expected_probability,
                            every=max(len(mlss_trace) // 8, 1)))
    write_report("fig8a_queue_small", "Figure 8(1) — Queue Small, CI",
                 lines)
    assert final_relative_error(mlss_trace) < final_relative_error(
        srs_trace)
    # Quality must improve monotonically-ish: compare first vs last.
    assert mlss_trace[-1].variance < mlss_trace[0].variance


@pytest.mark.benchmark(group="fig8")
def test_fig8b_cpp_tiny_re_convergence(benchmark):
    budget = step_cap(700_000)
    spec = workload("cpp-tiny")

    def run():
        return (convergence_trace("cpp-tiny", "srs", budget),
                convergence_trace("cpp-tiny", "smlss", budget,
                                  num_levels=5))

    srs_trace, mlss_trace = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = (["SRS:"] + format_trace(srs_trace, spec.expected_probability,
                                     every=max(len(srs_trace) // 8, 1))
             + ["", "MLSS:"]
             + format_trace(mlss_trace, spec.expected_probability,
                            every=max(len(mlss_trace) // 8, 1)))
    write_report("fig8b_cpp_tiny", "Figure 8(2) — CPP Tiny, RE", lines)
    assert final_relative_error(mlss_trace) < final_relative_error(
        srs_trace)


@pytest.mark.benchmark(group="fig8")
def test_fig8c_rnn_tiny_re_convergence(benchmark):
    budget = step_cap(120_000)
    spec = workload("rnn-tiny")

    def run():
        return (convergence_trace("rnn-tiny", "srs", budget,
                                  rnn_cache=RNN_CACHE_DIR),
                convergence_trace("rnn-tiny", "smlss", budget,
                                  num_levels=5, rnn_cache=RNN_CACHE_DIR))

    srs_trace, mlss_trace = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = (["SRS:"] + format_trace(srs_trace, spec.expected_probability,
                                     every=max(len(srs_trace) // 6, 1))
             + ["", "MLSS:"]
             + format_trace(mlss_trace, spec.expected_probability,
                            every=max(len(mlss_trace) // 6, 1)))
    write_report("fig8c_rnn_tiny", "Figure 8(3) — RNN Tiny, RE", lines)
    # At this budget SRS has few hits on a ~0.6 % event; MLSS must be
    # strictly tighter.
    assert final_relative_error(mlss_trace) < final_relative_error(
        srs_trace)
