"""Figure 9: g-MLSS query time on volatile processes, with the
bootstrap-evaluation overhead broken out.

Paper's shape: g-MLSS beats SRS by a large margin (up to ~80 % on Rare)
even though bootstrap evaluation takes a visible share of its runtime.
"""

import pytest

from bench_common import step_cap, write_report
from experiments import format_gmlss_rows, gmlss_efficiency

KEYS = ("volatile-cpp-tiny", "volatile-cpp-rare",
        "volatile-queue-tiny", "volatile-queue-rare")


@pytest.mark.benchmark(group="fig9")
def test_fig9_gmlss_vs_srs_on_volatile(benchmark):
    cap = step_cap(4_000_000)
    rows = benchmark.pedantic(
        lambda: gmlss_efficiency(KEYS, cap=cap), rounds=1, iterations=1)
    write_report("fig9_gmlss_efficiency",
                 "Figure 9 — g-MLSS vs SRS on volatile processes",
                 format_gmlss_rows(rows))
    wins = sum(1 for row in rows if row["gmlss_steps"] < row["srs_steps"])
    assert wins >= 3, f"g-MLSS must beat SRS on most workloads: {rows}"
    for row in rows:
        assert row["bootstrap_seconds"] >= 0.0
