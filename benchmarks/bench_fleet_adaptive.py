"""Variance-directed fleets: adaptive vs uniform root allocation.

A heterogeneous fleet screened through the fused splitting forest
(:func:`repro.core.fleet.screen_fleet_mlss`) has members whose quality
targets cost wildly different root counts — yet uniform allocation
grows every member by the same batch each round until the *hardest*
member converges, so easy members burn roots long after their CI is
met.  Per-member adaptive allocation
(``screen_fleet_mlss(adaptive=True)``) sizes each round's cohort from
:meth:`~repro.core.quality.QualityTarget.projected_roots` fed the
member's measured bootstrap variance, and drops converged members from
the cohort entirely.

The benchmark screens one heterogeneous fleet to the *same* fixed
quality target both ways and gates on **total simulation steps** — a
hardware-independent count, so unlike the wall-clock pool gates this
one is failing (not informational) everywhere, including the 1-core
CI runner:

* **step gate** — adaptive total steps <= 0.7x uniform total steps;
* **quality gate** — both allocators actually reach the CI target for
  every member (adaptive may not buy its savings by under-serving);
* **agreement gate** — per-member adaptive and uniform estimates agree
  within joint 99.9% CIs;
* **determinism gate** — pooled adaptive answers are byte-identical
  across worker counts and pool modes (fixed member slices, task-index
  seeds; the inline run differs only in draw interleaving).

Run directly (``python benchmarks/bench_fleet_adaptive.py [--quick]``);
CI uses ``--quick``.  Results land in ``BENCH_fleet_adaptive.json``
and ``benchmarks/results/fleet_adaptive.txt``.
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np

from bench_common import write_report
from repro.core.fleet import screen_fleet_mlss
from repro.core.levels import uniform_partition
from repro.core.pool import WorkerPool
from repro.core.quality import ConfidenceIntervalTarget
from repro.core.stats import critical_value
from repro.processes import RandomWalkProcess, fuse_processes

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_JSON = REPO_ROOT / "BENCH_fleet_adaptive.json"

#: Hard acceptance target: adaptive total steps vs uniform.
STEP_RATIO_TARGET = 0.7
Z999 = critical_value(0.999)


def build_fleet(n_members, seed=0):
    """A heterogeneous random-walk fleet spanning easy to rare members.

    Drift and threshold vary member by member, so per-member hitting
    probabilities span roughly three orders of magnitude — exactly the
    spread where uniform allocation wastes the most effort.
    """
    rng = np.random.default_rng(seed)
    processes, betas = [], []
    for _ in range(n_members):
        processes.append(RandomWalkProcess(
            p_up=float(0.33 + 0.15 * rng.random()), p_down=0.48))
        betas.append(float(rng.integers(4, 9)))
    return processes, betas


def signature(estimates):
    """Byte-comparable fingerprint of a fleet screening result."""
    return tuple((e.probability, e.variance, e.n_roots, e.hits, e.steps)
                 for e in estimates)


def run_fleet(fused, betas, partition, horizon, quality, adaptive,
              seed, pool=None, members_per_task=64):
    started = time.perf_counter()
    estimates = screen_fleet_mlss(
        fused, RandomWalkProcess.position, betas, partition, horizon,
        ratio=3, quality=quality, max_roots=200_000, batch_roots=100,
        seed=seed, adaptive=adaptive, pool=pool,
        members_per_task=members_per_task)
    elapsed = time.perf_counter() - started
    return estimates, elapsed


def ci_agreement(adaptive, uniform):
    """Members whose adaptive/uniform estimates disagree beyond joint
    99.9% CIs (should be empty)."""
    disagreements = []
    for member, (a, u) in enumerate(zip(adaptive, uniform)):
        gap = abs(a.probability - u.probability)
        joint = Z999 * ((a.std_error ** 2 + u.std_error ** 2) ** 0.5)
        if gap > joint + 1e-12:
            disagreements.append({
                "member": member, "adaptive": a.probability,
                "uniform": u.probability, "gap": gap, "joint_ci": joint})
    return disagreements


def quality_misses(estimates, quality):
    """Members whose final estimate misses the CI target despite the
    root budget (should be empty for both allocators)."""
    return [member for member, e in enumerate(estimates)
            if not quality.is_met(e.probability, e.variance, e.hits,
                                  e.n_roots)
            and e.n_roots < 200_000]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized fleet (still 500 members)")
    args = parser.parse_args()

    n_members = 500
    horizon = 24
    half_width = 0.02 if args.quick else 0.012
    processes, betas = build_fleet(n_members, seed=0)
    fused = fuse_processes(processes)
    quality = ConfidenceIntervalTarget(half_width=half_width,
                                       confidence=0.95, relative=False)
    partition = uniform_partition(4)
    seed = 20210823

    runs = {}
    for label, adaptive in (("uniform", False), ("adaptive", True)):
        estimates, elapsed = run_fleet(fused, betas, partition, horizon,
                                       quality, adaptive, seed)
        runs[label] = {
            "estimates": estimates,
            "total_steps": int(sum(e.steps for e in estimates)),
            "total_roots": int(sum(e.n_roots for e in estimates)),
            "elapsed_seconds": round(elapsed, 3),
        }

    adaptive = runs["adaptive"]["estimates"]
    uniform = runs["uniform"]["estimates"]
    step_ratio = (runs["adaptive"]["total_steps"]
                  / runs["uniform"]["total_steps"])

    # Determinism: pooled adaptive answers must be byte-identical
    # across worker counts and pool modes (the fixed member slices and
    # task-index seeds make results worker-count invariant; only the
    # unsharded inline run interleaves draws differently).
    reference_sig = None
    determinism = {}
    for mode, n_workers in (("thread", 1), ("thread", 3), ("fork", 2)):
        with WorkerPool(n_workers=n_workers, pool=mode) as pool:
            pooled, _ = run_fleet(fused, betas, partition, horizon,
                                  quality, True, seed, pool=pool)
        pooled_sig = signature(pooled)
        if reference_sig is None:
            reference_sig = pooled_sig
        determinism[f"{mode}x{n_workers}"] = pooled_sig == reference_sig

    disagreements = ci_agreement(adaptive, uniform)
    misses = {label: quality_misses(runs[label]["estimates"], quality)
              for label in runs}

    gates = {
        "step_ratio_target": STEP_RATIO_TARGET,
        "step_ratio": round(step_ratio, 4),
        "step_gate_pass": step_ratio <= STEP_RATIO_TARGET,
        "quality_gate_pass": not misses["adaptive"]
                             and not misses["uniform"],
        "agreement_gate_pass": not disagreements,
        "determinism_gate_pass": all(determinism.values()),
    }
    payload = {
        "benchmark": "fleet_adaptive",
        "n_members": n_members,
        "horizon": horizon,
        "half_width": half_width,
        "quick": args.quick,
        "runs": {label: {k: v for k, v in run.items()
                         if k != "estimates"}
                 for label, run in runs.items()},
        "determinism": determinism,
        "ci_disagreements": disagreements,
        "quality_misses": misses,
        "gates": gates,
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True))

    lines = [
        "Variance-directed fleet allocation (adaptive vs uniform)",
        f"fleet: {n_members} members, horizon {horizon}, "
        f"CI half-width {half_width}",
        f"uniform : {runs['uniform']['total_steps']:>12,} steps "
        f"({runs['uniform']['total_roots']:,} roots, "
        f"{runs['uniform']['elapsed_seconds']}s)",
        f"adaptive: {runs['adaptive']['total_steps']:>12,} steps "
        f"({runs['adaptive']['total_roots']:,} roots, "
        f"{runs['adaptive']['elapsed_seconds']}s)",
        f"step ratio: {step_ratio:.3f} (target <= {STEP_RATIO_TARGET})",
        f"determinism: {determinism}",
        f"CI disagreements: {len(disagreements)}; "
        f"quality misses: { {k: len(v) for k, v in misses.items()} }",
        f"gates: {gates}",
    ]
    write_report("fleet_adaptive",
                 "Variance-directed fleet allocation", lines[1:])

    failures = [name for name in ("step_gate_pass", "quality_gate_pass",
                                  "agreement_gate_pass",
                                  "determinism_gate_pass")
                if not gates[name]]
    if failures:
        raise SystemExit(f"fleet_adaptive gates failed: {failures}")


if __name__ == "__main__":
    main()
