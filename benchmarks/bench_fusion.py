"""Fleet-scale fused simulation: cross-process fusion and substrate coverage.

Two claims are measured:

1. **Fleet screening** — a 500-entity fleet with per-entity GBM / AR /
   tandem-queue parameters, answered through
   ``DurabilityEngine.answer_batch``.  With fusion each family advances
   as one :class:`~repro.processes.base.FusedBatch` frontier (one
   ``step_batch`` per time step for the whole family); the baseline
   (``fuse=False``) is the pre-fusion behaviour — per-process cohorts,
   i.e. one vectorized run per entity.  Target: **>= 5x** steps/second.

2. **No scalar fallback** — the substrates that used to degrade to
   ``ScalarFallback`` under ``backend="auto"`` (compound Poisson, the
   volatile impulse wrappers, the LSTM-MDN stock model) now carry
   native batched implementations.  Each is measured vectorized vs
   scalar on the same workload.  Target: **>= 4x** each, and
   ``backend="auto"`` must resolve to ``"vectorized"`` for all of them.

Statistical agreement (fused vs independent answers within joint CIs)
is gated by the test suite (``tests/engine/test_service.py``,
``tests/core/test_fleet.py``); this benchmark records the throughput
trajectory in ``BENCH_fusion.json`` and
``benchmarks/results/fusion.txt``.

Run directly (``python benchmarks/bench_fusion.py [--quick]``); CI uses
``--quick`` to keep runner time bounded.
"""

import argparse
import json
import math
import time
from pathlib import Path

import numpy as np

from bench_common import write_report
from repro.core.srs import SRSSampler
from repro.core.stats import critical_value
from repro.core.value_functions import DurabilityQuery
from repro.engine import DurabilityEngine, ExecutionPolicy
from repro.processes import (ARProcess, CompoundPoissonProcess, GBMProcess,
                             TandemQueueProcess, resolve_backend,
                             supports_batch, volatile_cpp)
from repro.processes.rnn.model import LSTMMDNModel
from repro.processes.rnn.stock_model import StockRNNProcess

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_JSON = REPO_ROOT / "BENCH_fusion.json"


# ----------------------------------------------------------------------
# Scenario 1: mixed-parameter fleet screening
# ----------------------------------------------------------------------

def build_fleet(n_gbm, n_ar, n_queue, horizon, seed=0):
    """Per-entity parameterisations drawn around the paper's regimes."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(n_gbm):
        process = GBMProcess(start_price=100.0,
                             mu=0.0002 + 0.0006 * rng.random(),
                             sigma=0.008 + 0.010 * rng.random())
        queries.append(DurabilityQuery.threshold(
            process, GBMProcess.price, beta=104.0 + 6.0 * rng.random(),
            horizon=horizon, name="gbm"))
    for _ in range(n_ar):
        process = ARProcess([0.55 + 0.20 * rng.random(), 0.2],
                            sigma=0.8 + 0.4 * rng.random())
        queries.append(DurabilityQuery.threshold(
            process, ARProcess.current_value,
            beta=5.0 + 2.0 * rng.random(), horizon=horizon, name="ar"))
    for _ in range(n_queue):
        process = TandemQueueProcess(
            arrival_rate=0.35 + 0.20 * rng.random())
        queries.append(DurabilityQuery.threshold(
            process, TandemQueueProcess.queue2_length,
            beta=8.0 + 4.0 * rng.random(), horizon=horizon, name="queue"))
    return queries


def run_fleet_screening(quick):
    n_gbm, n_ar, n_queue = (80, 60, 60) if quick else (200, 150, 150)
    horizon = 64 if quick else 96
    max_roots = 100 if quick else 150
    queries = build_fleet(n_gbm, n_ar, n_queue, horizon)
    engine = DurabilityEngine(ExecutionPolicy(method="srs",
                                              max_roots=max_roots, seed=3))
    # Warm both paths (imports, allocator, plan-free SRS setup).
    engine.answer_batch(queries[:2])
    engine.answer_batch(queries[:2], fuse=False)

    started = time.perf_counter()
    fused = engine.answer_batch(queries)
    fused_seconds = time.perf_counter() - started

    started = time.perf_counter()
    baseline = engine.answer_batch(queries, fuse=False)
    baseline_seconds = time.perf_counter() - started

    fused_steps = sum(e.steps for e in fused)
    baseline_steps = sum(e.steps for e in baseline)
    fused_rate = fused_steps / fused_seconds
    baseline_rate = baseline_steps / baseline_seconds

    z999 = critical_value(0.999)
    disagreements = sum(
        1 for f, b in zip(fused, baseline)
        if abs(f.probability - b.probability)
        > max(z999 * math.sqrt(f.variance + b.variance), 2e-3))
    cohorts = sorted({(e.details.get("cohort_id"),
                       e.details.get("cohort_size")) for e in fused})
    return {
        "entities": len(queries),
        "families": {"gbm": n_gbm, "ar": n_ar, "tandem_queue": n_queue},
        "horizon": horizon,
        "max_roots_per_entity": max_roots,
        "fused": {
            "seconds": round(fused_seconds, 4),
            "steps": fused_steps,
            "steps_per_second": round(fused_rate, 1),
            "cohorts": [{"cohort_id": c, "size": s} for c, s in cohorts],
        },
        "per_process_cohorts": {
            "seconds": round(baseline_seconds, 4),
            "steps": baseline_steps,
            "steps_per_second": round(baseline_rate, 1),
        },
        "speedup": round(fused_rate / baseline_rate, 2),
        "members_outside_joint_ci999": disagreements,
    }


# ----------------------------------------------------------------------
# Scenario 2: substrates that used to fall back to scalar loops
# ----------------------------------------------------------------------

def fallback_workloads(quick):
    cpp = CompoundPoissonProcess()
    cpp_query = DurabilityQuery.threshold(
        cpp, CompoundPoissonProcess.surplus, beta=40.0, horizon=100,
        name="cpp-40-100")

    volatile = volatile_cpp(CompoundPoissonProcess(), horizon=100)
    volatile_query = DurabilityQuery.threshold(
        volatile, CompoundPoissonProcess.surplus, beta=40.0, horizon=100,
        name="volatile-cpp-40-100")

    # Throughput only needs the architecture, not a trained fit, so the
    # model is built directly at the paper's size (32x2 LSTM, 5-part
    # mixture) instead of spending benchmark time on training.
    model = LSTMMDNModel(hidden_size=32, n_layers=2, n_mixtures=5, seed=0)
    stock = StockRNNProcess(model, 0.0005, 0.015, [0.001] * 50, 520.0)
    stock_query = DurabilityQuery.threshold(
        stock, StockRNNProcess.price, beta=700.0, horizon=60,
        name="stock-rnn-700-60")

    roots = 1500 if quick else 4000
    stock_roots = 400 if quick else 1500
    return [("cpp", cpp_query, roots),
            ("volatile_cpp", volatile_query, roots),
            ("stock_rnn_mdn", stock_query, stock_roots)]


def measure_backend(query, backend, max_roots):
    sampler = SRSSampler(batch_roots=2048, backend=backend)
    started = time.perf_counter()
    estimate = sampler.run(query, max_roots=max_roots, seed=5)
    seconds = time.perf_counter() - started
    return {
        "steps": estimate.steps,
        "seconds": round(seconds, 4),
        "steps_per_second": round(estimate.steps / seconds, 1),
        "probability": estimate.probability,
        "n_roots": estimate.n_roots,
    }


def run_fallback_elimination(quick):
    results = []
    for name, query, max_roots in fallback_workloads(quick):
        assert supports_batch(query.process), name
        scalar = measure_backend(query, "scalar", max_roots)
        vectorized = measure_backend(query, "vectorized", max_roots)
        results.append({
            "workload": name,
            "query": query.name,
            "auto_backend": resolve_backend("auto", query.process),
            "scalar": scalar,
            "vectorized": vectorized,
            "speedup": round(vectorized["steps_per_second"]
                             / scalar["steps_per_second"], 2),
        })
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced budgets for CI runners")
    args = parser.parse_args(argv)

    fleet = run_fleet_screening(args.quick)
    substrates = run_fallback_elimination(args.quick)

    payload = {
        "benchmark": "fusion",
        "unit": "simulation steps per second",
        "quick": args.quick,
        "fleet_screening": fleet,
        "scalar_fallback_elimination": substrates,
        "targets": {
            "fleet_speedup_min": 5.0,
            "substrate_speedup_min": 4.0,
        },
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"fleet screening: {fleet['entities']} entities "
        f"(gbm/ar/queue {fleet['families']['gbm']}/"
        f"{fleet['families']['ar']}/{fleet['families']['tandem_queue']}), "
        f"horizon {fleet['horizon']}",
        f"  fused      {fleet['fused']['steps_per_second']:>14,.0f} steps/s"
        f"  ({fleet['fused']['seconds']:.3f}s)",
        f"  per-entity {fleet['per_process_cohorts']['steps_per_second']:>14,.0f}"
        f" steps/s  ({fleet['per_process_cohorts']['seconds']:.3f}s)",
        f"  speedup    {fleet['speedup']:.1f}x  (target >= 5x)",
        f"  members outside joint 99.9% CI: "
        f"{fleet['members_outside_joint_ci999']} / {fleet['entities']}",
        "",
        "scalar-fallback elimination (vectorized vs scalar, steps/s):",
    ]
    for row in substrates:
        lines.append(
            f"  {row['workload']:<15} {row['speedup']:>6.1f}x  "
            f"(auto -> {row['auto_backend']}; target >= 4x)")
    write_report("fusion", "Fleet-scale fused simulation", lines)

    ok = (fleet["speedup"] >= 5.0
          and all(row["speedup"] >= 4.0 for row in substrates)
          and all(row["auto_backend"] == "vectorized"
                  for row in substrates))
    print(f"targets {'met' if ok else 'MISSED'}; results in {RESULT_JSON}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
