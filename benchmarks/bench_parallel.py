"""Multicore x SIMD scaling: the persistent shared-memory worker pool.

Measures steps/second against the worker count for three workloads,
all running the full vectorized/fused substrate *inside every worker*:

1. **SRS** — one GBM query, paths sharded into fixed-size tasks
   (``SRSSampler(pool=...)``).
2. **Fused fleet** — a per-entity GBM fleet screened through fused
   frontiers, sharded into fixed member slices
   (:func:`repro.core.fleet.screen_fleet`).  This is the acceptance
   workload: target **>= 3x** steps/s at 4 workers over 1.
3. **Fleet curves** — the same fleet, every member answering an
   8-threshold grid through the running-maxima fused pass
   (:func:`repro.core.fleet.screen_fleet_curves`).

Besides throughput, two machine-independent contracts are *gated* (the
benchmark fails if they break, whatever the host):

* **determinism** — pooled results byte-identical across worker counts
  (fixed task decomposition, task-index-derived seeds);
* **agreement** — pooled estimates inside joint 99.9% CIs of
  single-process (unpooled) runs.

The speedup target is evaluated only when the host actually has >= 4
CPUs (``cpu_count`` is recorded in the payload); on smaller hosts the
scaling numbers are reported as informational, like every wall-clock
figure on shared CI runners.

Run directly (``python benchmarks/bench_parallel.py [--quick]``); CI
uses ``--quick``.  Results land in ``BENCH_parallel.json`` and
``benchmarks/results/parallel.txt``.
"""

import argparse
import json
import math
import os
import time
from pathlib import Path

import numpy as np

from bench_common import write_report
from repro.core.fleet import screen_fleet, screen_fleet_curves
from repro.core.pool import WorkerPool
from repro.core.srs import SRSSampler
from repro.core.stats import critical_value
from repro.core.value_functions import DurabilityQuery
from repro.processes import GBMProcess, fuse_processes

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_JSON = REPO_ROOT / "BENCH_parallel.json"

WORKER_GRID = (1, 2, 4)
SPEEDUP_TARGET = 3.0
Z999 = critical_value(0.999)


def build_fleet(n_entities, seed=0):
    """Per-entity GBM parameterisations around the paper's regime."""
    rng = np.random.default_rng(seed)
    members, betas = [], []
    for _ in range(n_entities):
        members.append(GBMProcess(start_price=100.0,
                                  mu=0.0002 + 0.0006 * rng.random(),
                                  sigma=0.008 + 0.010 * rng.random()))
        betas.append(104.0 + 6.0 * rng.random())
    return members, betas


def signature(estimates):
    """Byte-comparable result fingerprint across worker counts."""
    return tuple((e.probability, e.n_roots, e.hits, e.steps)
                 for e in estimates)


def curve_signature(curves):
    return tuple(tuple(e.probability for e in c.estimates) + (c.steps,)
                 for c in curves)


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def run_srs_workload(quick):
    process = GBMProcess(start_price=100.0, mu=0.0004, sigma=0.012)
    query = DurabilityQuery.threshold(
        process, GBMProcess.price, beta=106.0,
        horizon=64 if quick else 96, name="gbm-srs")
    max_roots = 150_000 if quick else 400_000

    sequential = SRSSampler(backend="vectorized").run(
        query, max_roots=max_roots, seed=5)
    rows, signatures = [], []
    for n_workers in WORKER_GRID:
        with WorkerPool(n_workers=n_workers) as pool:
            # Large tasks (~30ms of simulation each) so per-task IPC
            # stays negligible next to the work it ships.
            estimate, seconds = timed(lambda: SRSSampler(
                backend="vectorized", pool=pool,
                roots_per_task=4096).run(
                query, max_roots=max_roots, seed=5))
        rows.append({"n_workers": n_workers,
                     "seconds": round(seconds, 4),
                     "steps": estimate.steps,
                     "steps_per_second": round(estimate.steps / seconds, 1)})
        signatures.append(signature([estimate]))
        last = estimate
    joint = Z999 * math.sqrt(last.variance + sequential.variance)
    return {
        "workload": "srs",
        "query": query.name,
        "max_roots": max_roots,
        "by_workers": rows,
        "speedup_at_4": round(rows[-1]["steps_per_second"]
                              / rows[0]["steps_per_second"], 2),
        "deterministic_across_workers":
            all(s == signatures[0] for s in signatures),
        "comparisons": 1,
        "outside_joint_ci999_vs_sequential":
            int(abs(last.probability - sequential.probability)
                > joint + 1e-4),
    }


def run_fleet_workload(quick):
    n_entities = 64 if quick else 192
    horizon = 64 if quick else 96
    max_roots = 2_500 if quick else 4_000
    members, betas = build_fleet(n_entities)
    fused = fuse_processes(members)

    sequential = screen_fleet(fused, GBMProcess.price, betas, horizon,
                              max_roots=max_roots, seed=7)
    rows, signatures = [], []
    for n_workers in WORKER_GRID:
        with WorkerPool(n_workers=n_workers) as pool:
            estimates, seconds = timed(lambda: screen_fleet(
                fused, GBMProcess.price, betas, horizon,
                max_roots=max_roots, seed=7, pool=pool,
                members_per_task=8))
        total_steps = sum(e.steps for e in estimates)
        rows.append({"n_workers": n_workers,
                     "seconds": round(seconds, 4),
                     "steps": total_steps,
                     "steps_per_second": round(total_steps / seconds, 1)})
        signatures.append(signature(estimates))
        pooled = estimates
    disagreements = sum(
        1 for p, s in zip(pooled, sequential)
        if abs(p.probability - s.probability)
        > max(Z999 * math.sqrt(p.variance + s.variance), 2e-3))
    return {
        "workload": "fused_fleet",
        "entities": n_entities,
        "horizon": horizon,
        "max_roots_per_entity": max_roots,
        "by_workers": rows,
        "speedup_at_4": round(rows[-1]["steps_per_second"]
                              / rows[0]["steps_per_second"], 2),
        "deterministic_across_workers":
            all(s == signatures[0] for s in signatures),
        "comparisons": n_entities,
        "outside_joint_ci999_vs_sequential": disagreements,
    }


def run_curve_workload(quick):
    n_entities = 32 if quick else 96
    horizon = 64 if quick else 96
    max_roots = 1_500 if quick else 3_000
    members, betas = build_fleet(n_entities, seed=1)
    grids = [tuple(beta * scale
                   for scale in (0.97, 0.98, 0.99, 1.0,
                                 1.01, 1.02, 1.03, 1.04))
             for beta in betas]
    fused = fuse_processes(members)

    sequential = screen_fleet_curves(fused, GBMProcess.price, grids,
                                     horizon, max_roots=max_roots, seed=9)
    rows, signatures = [], []
    for n_workers in WORKER_GRID:
        with WorkerPool(n_workers=n_workers) as pool:
            curves, seconds = timed(lambda: screen_fleet_curves(
                fused, GBMProcess.price, grids, horizon,
                max_roots=max_roots, seed=9, pool=pool,
                members_per_task=4))
        total_steps = sum(c.steps for c in curves)
        rows.append({"n_workers": n_workers,
                     "seconds": round(seconds, 4),
                     "steps": total_steps,
                     "steps_per_second": round(total_steps / seconds, 1)})
        signatures.append(curve_signature(curves))
        pooled = curves
    disagreements = 0
    for pooled_curve, sequential_curve in zip(pooled, sequential):
        for p, s in zip(pooled_curve.estimates,
                        sequential_curve.estimates):
            if abs(p.probability - s.probability) > max(
                    Z999 * math.sqrt(p.variance + s.variance), 2e-3):
                disagreements += 1
    return {
        "workload": "fleet_curves",
        "entities": n_entities,
        "grid_levels": 8,
        "horizon": horizon,
        "max_roots_per_entity": max_roots,
        "by_workers": rows,
        "speedup_at_4": round(rows[-1]["steps_per_second"]
                              / rows[0]["steps_per_second"], 2),
        "deterministic_across_workers":
            all(s == signatures[0] for s in signatures),
        "comparisons": n_entities * 8,
        "outside_joint_ci999_vs_sequential": disagreements,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced budgets for CI runners")
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    workloads = [run_srs_workload(args.quick),
                 run_fleet_workload(args.quick),
                 run_curve_workload(args.quick)]

    target_evaluable = cpu_count >= max(WORKER_GRID)
    fleet = next(w for w in workloads if w["workload"] == "fused_fleet")
    speedup_met = fleet["speedup_at_4"] >= SPEEDUP_TARGET
    deterministic = all(w["deterministic_across_workers"]
                        for w in workloads)
    # A 99.9% joint interval over hundreds of comparisons is *expected*
    # to miss occasionally; allow the binomial false-positive budget.
    agreement = all(
        w["outside_joint_ci999_vs_sequential"]
        <= max(1, round(0.005 * w["comparisons"]))
        for w in workloads)

    payload = {
        "benchmark": "parallel",
        "unit": "simulation steps per second",
        "quick": args.quick,
        "cpu_count": cpu_count,
        "worker_grid": list(WORKER_GRID),
        "workloads": workloads,
        "targets": {
            "fused_fleet_speedup_at_4_min": SPEEDUP_TARGET,
            "speedup_target_evaluable": target_evaluable,
            "speedup_target_met": speedup_met,
            "deterministic_across_workers": deterministic,
            "agreement_with_sequential": agreement,
        },
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    evaluable_note = ("evaluable" if target_evaluable else
                      "NOT evaluable: fewer cores than the 4-worker "
                      "grid point")
    lines = [f"host cpus: {cpu_count} (speedup target {evaluable_note})"]
    for workload in workloads:
        lines.append(f"{workload['workload']}:")
        for row in workload["by_workers"]:
            lines.append(
                f"  {row['n_workers']} worker(s) "
                f"{row['steps_per_second']:>14,.0f} steps/s "
                f"({row['seconds']:.3f}s)")
        lines.append(
            f"  speedup@4 {workload['speedup_at_4']:.2f}x   "
            f"deterministic: {workload['deterministic_across_workers']}  "
            f"outside joint CI999: "
            f"{workload['outside_joint_ci999_vs_sequential']}")
    lines.append("")
    lines.append(
        f"fused-fleet speedup target (>= {SPEEDUP_TARGET:.0f}x at 4 "
        f"workers): "
        + ("met" if speedup_met else
           "missed" + ("" if target_evaluable
                       else " (host has too few cores to evaluate)")))
    write_report("parallel", "Multicore x SIMD worker-pool scaling",
                 lines)

    # Correctness contracts gate the exit code everywhere; the
    # wall-clock target only gates on hosts that can express it.
    ok = deterministic and agreement and (
        speedup_met or not target_evaluable)
    print(f"targets {'met' if ok else 'MISSED'}; results in {RESULT_JSON}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
