"""Multicore x SIMD scaling: the persistent shared-memory worker pool.

Measures steps/second against the worker count for three workloads,
all running the full vectorized/fused substrate *inside every worker*:

1. **SRS** — one GBM query, paths sharded into fixed-size tasks
   (``SRSSampler(pool=...)``).
2. **Fused fleet** — a per-entity GBM fleet screened through fused
   frontiers, sharded into fixed member slices
   (:func:`repro.core.fleet.screen_fleet`).  This is the acceptance
   workload: target **>= 3x** steps/s at 4 workers over 1.
3. **Fleet curves** — the same fleet, every member answering an
   8-threshold grid through the running-maxima fused pass
   (:func:`repro.core.fleet.screen_fleet_curves`).
4. **Plan search** — a cold greedy search plus a balanced-growth
   pilot, trials and pilot chunks sharded over the pool
   (``adaptive_greedy_partition(pool=...)``).

Every pooled point runs under **both process (fork) and thread
backends**; the per-workload speedup is the best 4-worker rate over
the 1-worker (inline) rate, and both modes feed the determinism check.

Besides throughput, the machine-independent contracts are *gated* (the
benchmark fails if they break, whatever the host):

* **determinism** — pooled results byte-identical across worker counts
  *and* pool modes (fixed task decomposition, task-index-derived
  seeds);
* **agreement** — pooled estimates inside joint 99.9% CIs of
  single-process (unpooled) runs;
* **plan identity** — pool-sharded plan search returns exactly the
  sequential search's partition and step accounting.

The speedup targets (>= 3x fused-fleet steps/s at 4 workers, pooled
plan search faster than the parent) are evaluated only when the host
actually has >= 4 CPUs (``cpu_count`` is recorded in the payload); on
smaller hosts the scaling numbers are reported as informational, like
every wall-clock figure on shared CI runners.

Run directly (``python benchmarks/bench_parallel.py [--quick]``); CI
uses ``--quick``.  Results land in ``BENCH_parallel.json`` and
``benchmarks/results/parallel.txt``.
"""

import argparse
import json
import math
import os
import time
from pathlib import Path

import numpy as np

from bench_common import write_report
from repro.core.balanced import balanced_growth_partition
from repro.core.fleet import screen_fleet, screen_fleet_curves
from repro.core.greedy import adaptive_greedy_partition
from repro.core.pool import WorkerPool
from repro.core.srs import SRSSampler
from repro.core.stats import critical_value
from repro.core.value_functions import DurabilityQuery
from repro.processes import GBMProcess, fuse_processes

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_JSON = REPO_ROOT / "BENCH_parallel.json"

WORKER_GRID = (1, 2, 4)
#: (mode, n_workers) measurement points: the inline baseline plus the
#: worker grid under both the process and thread backends.
POOL_GRID = (("inline", 1), ("fork", 2), ("fork", 4),
             ("thread", 2), ("thread", 4))
SPEEDUP_TARGET = 3.0
Z999 = critical_value(0.999)


def best_speedup(rows):
    """Best 4-worker steps/s (any mode) over the 1-worker baseline."""
    base = next(r for r in rows if r["n_workers"] == 1)
    peak = max(r["steps_per_second"] for r in rows
               if r["n_workers"] == max(WORKER_GRID))
    return round(peak / base["steps_per_second"], 2)


def speedup_by_mode(rows):
    base = next(r for r in rows if r["n_workers"] == 1)
    return {r["mode"]: round(r["steps_per_second"]
                             / base["steps_per_second"], 2)
            for r in rows if r["n_workers"] == max(WORKER_GRID)}


def build_fleet(n_entities, seed=0):
    """Per-entity GBM parameterisations around the paper's regime."""
    rng = np.random.default_rng(seed)
    members, betas = [], []
    for _ in range(n_entities):
        members.append(GBMProcess(start_price=100.0,
                                  mu=0.0002 + 0.0006 * rng.random(),
                                  sigma=0.008 + 0.010 * rng.random()))
        betas.append(104.0 + 6.0 * rng.random())
    return members, betas


def signature(estimates):
    """Byte-comparable result fingerprint across worker counts."""
    return tuple((e.probability, e.n_roots, e.hits, e.steps)
                 for e in estimates)


def curve_signature(curves):
    return tuple(tuple(e.probability for e in c.estimates) + (c.steps,)
                 for c in curves)


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def run_srs_workload(quick):
    process = GBMProcess(start_price=100.0, mu=0.0004, sigma=0.012)
    query = DurabilityQuery.threshold(
        process, GBMProcess.price, beta=106.0,
        horizon=64 if quick else 96, name="gbm-srs")
    max_roots = 150_000 if quick else 400_000

    sequential = SRSSampler(backend="vectorized").run(
        query, max_roots=max_roots, seed=5)
    rows, signatures = [], []
    for mode, n_workers in POOL_GRID:
        with WorkerPool(n_workers=n_workers, pool=mode) as pool:
            # Large tasks (~30ms of simulation each) so per-task IPC
            # stays negligible next to the work it ships.
            estimate, seconds = timed(lambda: SRSSampler(
                backend="vectorized", pool=pool,
                roots_per_task=4096).run(
                query, max_roots=max_roots, seed=5))
        rows.append({"mode": mode, "n_workers": n_workers,
                     "seconds": round(seconds, 4),
                     "steps": estimate.steps,
                     "steps_per_second": round(estimate.steps / seconds, 1)})
        signatures.append(signature([estimate]))
        last = estimate
    joint = Z999 * math.sqrt(last.variance + sequential.variance)
    return {
        "workload": "srs",
        "query": query.name,
        "max_roots": max_roots,
        "by_workers": rows,
        "speedup_at_4": best_speedup(rows),
        "speedup_at_4_by_mode": speedup_by_mode(rows),
        "deterministic_across_workers":
            all(s == signatures[0] for s in signatures),
        "comparisons": 1,
        "outside_joint_ci999_vs_sequential":
            int(abs(last.probability - sequential.probability)
                > joint + 1e-4),
    }


def run_fleet_workload(quick):
    n_entities = 64 if quick else 192
    horizon = 64 if quick else 96
    max_roots = 2_500 if quick else 4_000
    members, betas = build_fleet(n_entities)
    fused = fuse_processes(members)

    sequential = screen_fleet(fused, GBMProcess.price, betas, horizon,
                              max_roots=max_roots, seed=7)
    rows, signatures = [], []
    for mode, n_workers in POOL_GRID:
        with WorkerPool(n_workers=n_workers, pool=mode) as pool:
            estimates, seconds = timed(lambda: screen_fleet(
                fused, GBMProcess.price, betas, horizon,
                max_roots=max_roots, seed=7, pool=pool,
                members_per_task=8))
        total_steps = sum(e.steps for e in estimates)
        rows.append({"mode": mode, "n_workers": n_workers,
                     "seconds": round(seconds, 4),
                     "steps": total_steps,
                     "steps_per_second": round(total_steps / seconds, 1)})
        signatures.append(signature(estimates))
        pooled = estimates
    disagreements = sum(
        1 for p, s in zip(pooled, sequential)
        if abs(p.probability - s.probability)
        > max(Z999 * math.sqrt(p.variance + s.variance), 2e-3))
    return {
        "workload": "fused_fleet",
        "entities": n_entities,
        "horizon": horizon,
        "max_roots_per_entity": max_roots,
        "by_workers": rows,
        "speedup_at_4": best_speedup(rows),
        "speedup_at_4_by_mode": speedup_by_mode(rows),
        "deterministic_across_workers":
            all(s == signatures[0] for s in signatures),
        "comparisons": n_entities,
        "outside_joint_ci999_vs_sequential": disagreements,
    }


def run_curve_workload(quick):
    n_entities = 32 if quick else 96
    horizon = 64 if quick else 96
    max_roots = 1_500 if quick else 3_000
    members, betas = build_fleet(n_entities, seed=1)
    grids = [tuple(beta * scale
                   for scale in (0.97, 0.98, 0.99, 1.0,
                                 1.01, 1.02, 1.03, 1.04))
             for beta in betas]
    fused = fuse_processes(members)

    sequential = screen_fleet_curves(fused, GBMProcess.price, grids,
                                     horizon, max_roots=max_roots, seed=9)
    rows, signatures = [], []
    for mode, n_workers in POOL_GRID:
        with WorkerPool(n_workers=n_workers, pool=mode) as pool:
            curves, seconds = timed(lambda: screen_fleet_curves(
                fused, GBMProcess.price, grids, horizon,
                max_roots=max_roots, seed=9, pool=pool,
                members_per_task=4))
        total_steps = sum(c.steps for c in curves)
        rows.append({"mode": mode, "n_workers": n_workers,
                     "seconds": round(seconds, 4),
                     "steps": total_steps,
                     "steps_per_second": round(total_steps / seconds, 1)})
        signatures.append(curve_signature(curves))
        pooled = curves
    disagreements = 0
    for pooled_curve, sequential_curve in zip(pooled, sequential):
        for p, s in zip(pooled_curve.estimates,
                        sequential_curve.estimates):
            if abs(p.probability - s.probability) > max(
                    Z999 * math.sqrt(p.variance + s.variance), 2e-3):
                disagreements += 1
    return {
        "workload": "fleet_curves",
        "entities": n_entities,
        "grid_levels": 8,
        "horizon": horizon,
        "max_roots_per_entity": max_roots,
        "by_workers": rows,
        "speedup_at_4": best_speedup(rows),
        "speedup_at_4_by_mode": speedup_by_mode(rows),
        "deterministic_across_workers":
            all(s == signatures[0] for s in signatures),
        "comparisons": n_entities * 8,
        "outside_joint_ci999_vs_sequential": disagreements,
    }


def run_plan_search_workload(quick):
    """Cold-query plan search: parent vs pool-sharded, identical plans.

    The latency that parallel plan search attacks is the *cold* path —
    the first query of a family pays a greedy search (dozens of
    sequential trials) before any estimate.  Trials within a round are
    independent, so sharding them is pure win once trials dominate the
    per-task overhead.
    """
    # A genuinely rare threshold (~2.6 sigma of 64-step max drift):
    # common events plateau the pilot's tail at 1.0 (nothing to fit)
    # and give the greedy search nothing to split.
    process = GBMProcess(start_price=100.0, mu=0.0004, sigma=0.012)
    query = DurabilityQuery.threshold(
        process, GBMProcess.price, beta=125.0,
        horizon=64 if quick else 96, name="gbm-plan")
    trial_steps = 25_000 if quick else 80_000
    pilot_paths = 2_000 if quick else 6_000

    parent, parent_seconds = timed(lambda: adaptive_greedy_partition(
        query, ratio=3, trial_steps=trial_steps, seed=17,
        backend="vectorized"))
    parent_pilot, parent_pilot_seconds = timed(
        lambda: balanced_growth_partition(
            query, 4, pilot_paths=pilot_paths, seed=19,
            backend="vectorized"))

    rows = [{"mode": "parent", "n_workers": 1,
             "seconds": round(parent_seconds, 4),
             "pilot_seconds": round(parent_pilot_seconds, 4),
             "search_steps": parent.search_steps}]
    identical = True
    for mode in ("fork", "thread"):
        with WorkerPool(n_workers=max(WORKER_GRID), pool=mode) as pool:
            pooled, seconds = timed(lambda: adaptive_greedy_partition(
                query, ratio=3, trial_steps=trial_steps, seed=17,
                backend="vectorized", pool=pool))
            pooled_pilot, pilot_seconds = timed(
                lambda: balanced_growth_partition(
                    query, 4, pilot_paths=pilot_paths, seed=19,
                    backend="vectorized", pool=pool))
        rows.append({"mode": mode, "n_workers": max(WORKER_GRID),
                     "seconds": round(seconds, 4),
                     "pilot_seconds": round(pilot_seconds, 4),
                     "search_steps": pooled.search_steps})
        identical = (identical
                     and pooled.partition == parent.partition
                     and pooled.search_steps == parent.search_steps
                     and pooled_pilot == parent_pilot)
    best_pooled = min(r["seconds"] + r["pilot_seconds"]
                      for r in rows[1:])
    parent_total = parent_seconds + parent_pilot_seconds
    return {
        "workload": "plan_search",
        "query": query.name,
        "trial_steps": trial_steps,
        "pilot_paths": pilot_paths,
        "greedy_partition": list(parent.partition.boundaries),
        "by_workers": rows,
        "speedup_at_4": round(parent_total / best_pooled, 2),
        "plan_identical_to_parent": identical,
        "pooled_faster_than_parent": best_pooled < parent_total,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced budgets for CI runners")
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    sampling = [run_srs_workload(args.quick),
                run_fleet_workload(args.quick),
                run_curve_workload(args.quick)]
    plan_search = run_plan_search_workload(args.quick)
    workloads = sampling + [plan_search]

    target_evaluable = cpu_count >= max(WORKER_GRID)
    fleet = next(w for w in sampling if w["workload"] == "fused_fleet")
    speedup_met = fleet["speedup_at_4"] >= SPEEDUP_TARGET
    plan_speedup_met = plan_search["pooled_faster_than_parent"]
    deterministic = all(w["deterministic_across_workers"]
                        for w in sampling)
    plan_identical = plan_search["plan_identical_to_parent"]
    # A 99.9% joint interval over hundreds of comparisons is *expected*
    # to miss occasionally; allow the binomial false-positive budget.
    agreement = all(
        w["outside_joint_ci999_vs_sequential"]
        <= max(1, round(0.005 * w["comparisons"]))
        for w in sampling)

    payload = {
        "benchmark": "parallel",
        "unit": "simulation steps per second",
        "quick": args.quick,
        "cpu_count": cpu_count,
        "worker_grid": list(WORKER_GRID),
        "pool_grid": [list(point) for point in POOL_GRID],
        "workloads": workloads,
        "targets": {
            "fused_fleet_speedup_at_4_min": SPEEDUP_TARGET,
            "speedup_target_evaluable": target_evaluable,
            "speedup_target_met": speedup_met,
            "plan_search_pooled_faster": plan_speedup_met,
            "deterministic_across_workers": deterministic,
            "plan_identical_to_parent": plan_identical,
            "agreement_with_sequential": agreement,
        },
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    evaluable_note = ("evaluable" if target_evaluable else
                      "NOT evaluable: fewer cores than the 4-worker "
                      "grid point")
    lines = [f"host cpus: {cpu_count} (speedup targets {evaluable_note})"]
    for workload in sampling:
        lines.append(f"{workload['workload']}:")
        for row in workload["by_workers"]:
            lines.append(
                f"  {row['mode']:>7}/{row['n_workers']} worker(s) "
                f"{row['steps_per_second']:>14,.0f} steps/s "
                f"({row['seconds']:.3f}s)")
        lines.append(
            f"  speedup@4 {workload['speedup_at_4']:.2f}x "
            f"{workload['speedup_at_4_by_mode']}   "
            f"deterministic: {workload['deterministic_across_workers']}  "
            f"outside joint CI999: "
            f"{workload['outside_joint_ci999_vs_sequential']}")
    lines.append("plan_search:")
    for row in plan_search["by_workers"]:
        lines.append(
            f"  {row['mode']:>7}/{row['n_workers']} worker(s) "
            f"greedy {row['seconds']:.3f}s + pilot "
            f"{row['pilot_seconds']:.3f}s")
    lines.append(
        f"  speedup@4 {plan_search['speedup_at_4']:.2f}x   "
        f"plan identical to parent: {plan_identical}")
    lines.append("")
    lines.append(
        f"fused-fleet speedup target (>= {SPEEDUP_TARGET:.0f}x at 4 "
        f"workers): "
        + ("met" if speedup_met else
           "missed" + ("" if target_evaluable
                       else " (host has too few cores to evaluate)")))
    lines.append(
        "plan-search pooled-faster-than-parent target: "
        + ("met" if plan_speedup_met else
           "missed" + ("" if target_evaluable
                       else " (host has too few cores to evaluate)")))
    write_report("parallel", "Multicore x SIMD worker-pool scaling",
                 lines)

    # Correctness contracts gate the exit code everywhere; the
    # wall-clock targets only gate on hosts that can express them.
    ok = deterministic and agreement and plan_identical and (
        (speedup_met and plan_speedup_met) or not target_evaluable)
    print(f"targets {'met' if ok else 'MISSED'}; results in {RESULT_JSON}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
