"""Fault-tolerance benchmark: determinism and completion under faults.

Three phases, each driven by a deterministic
:class:`repro.faults.FaultPlan` (scheduled call indices, not
probabilities — every injected run is reproducible):

1. **Recovery determinism** — a pooled engine (fork workers,
   supervision enabled) answers a point query, a fused batch and a
   durability curve while the plan SIGKILLs workers at two dispatch
   points mid-run.  The supervisor must respawn the dead workers,
   re-run only their in-flight tasks, and produce canonical answer
   bytes **identical** to an undisturbed run — task seeds are
   structural (derived from the task index), so a retried task is
   byte-identical by construction.
2. **Budget-zero abort** — the same kill with ``max_worker_restarts=0``
   must reproduce the historical behavior exactly: a ``RuntimeError``
   naming the dead worker (never a hang) with every shared-memory
   counter block unlinked (no ``/dev/shm`` leak).
3. **Serving under faults** — a live :class:`ServerThread` absorbs a
   request burst while the plan injects transient faults (structured
   503 ``transient`` replies with ``Retry-After``) into the request
   path; retrying clients (``retries=5``, honoring ``Retry-After``)
   must land **every** request with a 200 byte-identical to the
   in-process reference — zero protocol errors.  A hot-reloaded
   per-request deadline must then turn an oversized request into a
   well-formed 504 ``deadline_exceeded`` (counted in ``/metrics``),
   and the server must keep answering after the deadline is lifted.

Every gate is machine-independent (byte identity, completion,
well-formedness — no wall-clock targets), so the benchmark *fails* on
any host where a contract breaks, including 1-core CI runners.

Run directly (``python benchmarks/bench_resilience.py [--quick]``); CI
uses ``--quick``.  Results land in ``BENCH_resilience.json`` and
``benchmarks/results/resilience.txt``.
"""

import argparse
import asyncio
import json
import os
from pathlib import Path

from bench_common import write_report
from repro.engine import DurabilityEngine, ExecutionPolicy
from repro.engine.policy import ParallelPolicy
from repro.faults import FaultPlan, inject
from repro.serve import ServeClient, ServeConfig, ServeError, ServerThread
from repro.serve.protocol import (dumps_canonical, encode_curve,
                                  encode_estimate, parse_query)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_JSON = REPO_ROOT / "BENCH_resilience.json"
SHM_DIR = Path("/dev/shm")

CURVE_GRID = [3.0, 5.0, 7.0]

#: Serving-phase faults: at most ``retries`` scheduled faults total, so
#: even the worst case — one request's sends absorbing every fault —
#: still succeeds within its retry budget.  Deterministic guarantee,
#: not a probabilistic one.
SERVE_FAULT_SCHEDULE = (3, 11, 19, 27)
CLIENT_RETRIES = 5


def walk_doc(p_up: float, beta: float, horizon: int = 80) -> dict:
    return {"process": {"family": "random_walk",
                        "params": {"p_up": p_up, "p_down": 0.4}},
            "beta": beta, "horizon": horizon}


def gauss_doc(drift: float, beta: float, horizon: int = 100) -> dict:
    return {"process": {"family": "gaussian_walk",
                        "params": {"drift": drift, "sigma": 1.0}},
            "beta": beta, "horizon": horizon}


def shm_entries() -> set:
    """Names currently in /dev/shm (empty set where it doesn't exist)."""
    try:
        return {entry.name for entry in SHM_DIR.iterdir()}
    except OSError:
        return set()


# ---------------------------------------------------------------------
# Phase 1: recovery determinism
# ---------------------------------------------------------------------

def pooled_policy(max_roots: int, restarts: int) -> ExecutionPolicy:
    """A fork-pooled policy with small tasks (many dispatch points)."""
    return ExecutionPolicy(
        method="srs", max_roots=max_roots, seed=29,
        parallel=ParallelPolicy(n_workers=2, roots_per_task=64,
                                pool="fork",
                                max_worker_restarts=restarts,
                                task_retry_limit=4))


def engine_answers(policy: ExecutionPolicy) -> dict:
    """Canonical bytes for the three engine entry points."""
    point = parse_query(walk_doc(0.55, 6.0))
    batch = [parse_query(gauss_doc(0.02 * k + 0.01, 6.0))
             for k in range(4)]
    curve = parse_query(walk_doc(0.55, 4.0))
    with DurabilityEngine(policy) as engine:
        answers = {
            "answer": dumps_canonical(
                encode_estimate(engine.answer(point))),
            "answer_batch": dumps_canonical(
                [encode_estimate(e)
                 for e in engine.answer_batch(batch)]),
            "durability_curve": dumps_canonical(
                encode_curve(engine.durability_curve(curve,
                                                     CURVE_GRID))),
        }
        answers["resilience"] = engine.resilience_stats()
    return answers


def recovery_phase(max_roots: int) -> dict:
    policy = pooled_policy(max_roots, restarts=8)
    baseline = engine_answers(policy)
    plan = FaultPlan(worker_kills=(2, 7))
    with inject(plan):
        disturbed = engine_answers(policy)
    calls = ("answer", "answer_batch", "durability_curve")
    return {
        "kills_injected": plan.fired["pool.dispatch"],
        "worker_restarts": disturbed["resilience"]["worker_restarts"],
        "tasks_recovered": disturbed["resilience"]["tasks_recovered"],
        "baseline_restarts": baseline["resilience"]["worker_restarts"],
        "identical": {call: baseline[call] == disturbed[call]
                      for call in calls},
    }


# ---------------------------------------------------------------------
# Phase 2: budget-zero abort with cleanup
# ---------------------------------------------------------------------

def abort_phase(max_roots: int) -> dict:
    before = shm_entries()
    policy = pooled_policy(max_roots, restarts=0)
    plan = FaultPlan(worker_kills=(1,))
    outcome = {"raised": False, "message": "", "kills_injected": 0}
    with inject(plan):
        with DurabilityEngine(policy) as engine:
            try:
                engine.answer(parse_query(walk_doc(0.55, 6.0)))
            except RuntimeError as exc:
                outcome["raised"] = True
                outcome["message"] = str(exc)
    outcome["kills_injected"] = plan.fired["pool.dispatch"]
    outcome["message_names_worker"] = "exited" in outcome["message"]
    outcome["shm_leaked"] = sorted(shm_entries() - before)
    return outcome


# ---------------------------------------------------------------------
# Phase 3: serving through injected faults and deadlines
# ---------------------------------------------------------------------

async def serve_burst(port: int, docs: list, expected: list,
                      requests: int, concurrency: int) -> dict:
    tally = {"requests": requests, "served": 0, "protocol_errors": 0,
             "identity_mismatches": 0, "retries_used": 0,
             "details": []}
    queue: asyncio.Queue = asyncio.Queue()
    for index in range(requests):
        queue.put_nowait(index % len(docs))

    async def worker():
        async with ServeClient("127.0.0.1", port,
                               retries=CLIENT_RETRIES) as client:
            while True:
                try:
                    shape = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                try:
                    reply = await client.answer(docs[shape])
                except Exception as exc:
                    tally["protocol_errors"] += 1
                    if len(tally["details"]) < 5:
                        tally["details"].append(
                            f"{type(exc).__name__}: {exc}")
                    continue
                if reply.raw != expected[shape]:
                    tally["identity_mismatches"] += 1
                else:
                    tally["served"] += 1
            tally["retries_used"] += client.retries_used

    await asyncio.gather(*(worker() for _ in range(concurrency)))
    return tally


async def deadline_check(port: int) -> dict:
    outcome = {"got_504": False, "kind": "", "recovered": False}
    async with ServeClient("127.0.0.1", port) as client:
        await client.apply_config({"request_deadline_seconds": 0.02})
        try:
            try:
                await client.answer(gauss_doc(0.03, 9.0, horizon=300),
                                    policy={"max_roots": 60_000})
            except ServeError as exc:
                outcome["got_504"] = exc.status == 504
                outcome["kind"] = exc.kind
        finally:
            await client.apply_config({"request_deadline_seconds": 0.0})
        reply = await client.answer(walk_doc(0.55, 4.0))
        outcome["recovered"] = reply.status == 200
    return outcome


async def scrape_metrics(port: int) -> dict:
    async with ServeClient("127.0.0.1", port) as client:
        return await client.metrics()


def serving_phase(requests: int, concurrency: int) -> dict:
    policy = ExecutionPolicy(method="srs", max_roots=250, seed=17)
    docs = [walk_doc(p_up, beta)
            for p_up in (0.52, 0.55) for beta in (4.0, 6.0, 8.0)]
    with DurabilityEngine(policy) as engine:
        expected = [dumps_canonical(
            {"ok": True,
             "result": encode_estimate(engine.answer(parse_query(doc))),
             "cost_class": "cache_hit"}) for doc in docs]

    config = ServeConfig(engine_workers=2, watchdog_interval_seconds=0.25)
    plan = FaultPlan(serve_errors=SERVE_FAULT_SCHEDULE)
    with ServerThread(policy=policy, config=config) as handle:
        port = handle.port
        with inject(plan):
            burst = asyncio.run(serve_burst(port, docs, expected,
                                            requests, concurrency))
        deadline = asyncio.run(deadline_check(port))
        metrics = asyncio.run(scrape_metrics(port))

    counters = metrics.get("counters", {})
    burst["faults_injected"] = plan.fired["serve.request"]
    return {
        "burst": burst,
        "deadline": deadline,
        "metrics": {
            "faults_injected": counters.get("faults_injected", 0),
            "client_retries": counters.get("client_retries", 0),
            "deadline_kills": counters.get("deadline_kills", 0),
            "resilience": metrics.get("gauges", {}).get("resilience"),
        },
    }


# ---------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (identical gates)")
    args = parser.parse_args()

    if args.quick:
        max_roots, requests, concurrency = 1600, 36, 6
    else:
        max_roots, requests, concurrency = 4000, 120, 12

    recovery = recovery_phase(max_roots)
    abort = abort_phase(max_roots)
    serving = serving_phase(requests, concurrency)

    gates = {
        # >= 2 workers actually SIGKILLed mid-run, recovered, and every
        # entry point's bytes identical to the undisturbed run.
        "kills_injected": recovery["kills_injected"] >= 2,
        "workers_recovered": recovery["worker_restarts"] >= 2
        and recovery["tasks_recovered"] >= 1
        and recovery["baseline_restarts"] == 0,
        "recovery_byte_identity": all(recovery["identical"].values()),
        # Budget 0 restores the historical abort exactly: RuntimeError
        # naming the exited worker, no shared memory left behind.
        "abort_raised": abort["raised"]
        and abort["message_names_worker"]
        and abort["kills_injected"] >= 1,
        "abort_no_shm_leak": not abort["shm_leaked"],
        # Every bursted request succeeded byte-identically despite the
        # injected 503s, which clients absorbed by retrying.
        "serving_all_served": serving["burst"]["served"]
        == serving["burst"]["requests"],
        "serving_zero_protocol_errors":
        serving["burst"]["protocol_errors"] == 0
        and serving["burst"]["identity_mismatches"] == 0,
        "serving_faults_fired": serving["burst"]["faults_injected"] >= 1
        and serving["metrics"]["faults_injected"] >= 1
        and serving["burst"]["retries_used"] >= 1,
        # The deadline produced a structured 504 and the server kept
        # serving once it was lifted.
        "deadline_enforced": serving["deadline"]["got_504"]
        and serving["deadline"]["kind"] == "deadline_exceeded"
        and serving["metrics"]["deadline_kills"] >= 1
        and serving["deadline"]["recovered"],
    }
    ok = all(gates.values())

    payload = {
        "benchmark": "resilience",
        "quick": bool(args.quick),
        "cpu_count": os.cpu_count() or 1,
        "recovery": recovery,
        "abort": abort,
        "serving": serving,
        "gates": gates,
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"recovery: {recovery['kills_injected']} kills injected, "
        f"{recovery['worker_restarts']} workers respawned, "
        f"{recovery['tasks_recovered']} tasks re-run",
        "  byte identity vs undisturbed run: "
        + ", ".join(f"{call}={'OK' if same else 'BROKEN'}"
                    for call, same in recovery["identical"].items()),
        f"budget-0 abort: raised={abort['raised']} "
        f"(message names worker: {abort['message_names_worker']}), "
        f"shm leaked: {abort['shm_leaked'] or 'none'}",
        f"serving: {serving['burst']['served']}/"
        f"{serving['burst']['requests']} served through "
        f"{serving['burst']['faults_injected']} injected faults "
        f"({serving['burst']['retries_used']} client retries, "
        f"{serving['burst']['protocol_errors']} protocol errors, "
        f"{serving['burst']['identity_mismatches']} identity "
        f"mismatches)",
        f"deadline: 504={serving['deadline']['got_504']} "
        f"kind={serving['deadline']['kind']!r} "
        f"kills={serving['metrics']['deadline_kills']} "
        f"recovered={serving['deadline']['recovered']}",
        "",
        "gates: " + ", ".join(
            f"{name}={'pass' if passed else 'FAIL'}"
            for name, passed in gates.items()),
    ]
    write_report("resilience", "Fault-tolerant execution", lines)
    print(f"gates {'met' if ok else 'MISSED'}; results in {RESULT_JSON}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
