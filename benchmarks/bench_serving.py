"""Serving-tier load benchmark: concurrent replay against a live server.

Boots a :class:`repro.serve.ServerThread` and replays a mixed query
corpus — point answers, fused batches, unary curves, streamed curves
and session-pinned answers — from many concurrent asyncio clients,
then exercises the two load-control paths on purpose:

1. **Main load** — >= 1000 concurrent mixed requests (quick mode; more
   in full mode).  Every response must be HTTP 200 *and* byte-identical
   to the in-process reference: the same query + policy + seed answered
   by a fresh :class:`DurabilityEngine` and encoded with
   :func:`repro.serve.protocol.dumps_canonical`.  Streamed curves are
   additionally checked event-by-event (``start`` / ascending ``point``
   / ``end``, each point byte-identical to the unary estimate).
2. **Overload burst** — the admission queue is hot-reloaded down to
   zero depth and a burst of expensive requests is fired concurrently;
   the server must shed with well-formed 503 ``{"kind": "shed"}``
   envelopes (never a protocol error) and keep serving afterwards.
3. **Rate-limited tenant** — a per-tenant token bucket is installed via
   ``POST /config`` and must produce 429 ``rate_limited`` envelopes
   with ``retry_after`` hints for the offending tenant only.

Machine-independent contracts are *gated* (the benchmark fails when
they break, whatever the host): **zero protocol errors**, **zero
byte-identity mismatches**, **sheds observed and well-formed** under
the forced overload, and **the tenant rate limit enforced**.  The
wall-clock targets (p95 latency, qps) are evaluated only on hosts with
>= 4 CPUs; elsewhere they are reported as informational, like every
latency figure on shared CI runners.

Run directly (``python benchmarks/bench_serving.py [--quick]``); CI
uses ``--quick``.  Results land in ``BENCH_serving.json`` and
``benchmarks/results/serving.txt``.
"""

import argparse
import asyncio
import json
import os
import time
from pathlib import Path

from bench_common import write_report
from repro.engine import DurabilityEngine, ExecutionPolicy
from repro.serve import ServeClient, ServeConfig, ServeError, ServerThread
from repro.serve.protocol import (dumps_canonical, encode_curve,
                                  encode_estimate, parse_query)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_JSON = REPO_ROOT / "BENCH_serving.json"

#: The server's default policy; every main-load request resolves to it
#: (or to a session policy derived from it), which is what makes the
#: in-process reference bytes computable up front.
DEFAULT_POLICY = ExecutionPolicy(method="srs", max_roots=250, seed=17)

#: Informational latency target (see the module docstring).
P95_TARGET_MS = 250.0

CURVE_GRID = [3.0, 5.0, 7.0]


def walk_doc(p_up: float, beta: float, horizon: int = 80) -> dict:
    return {"process": {"family": "random_walk",
                        "params": {"p_up": p_up, "p_down": 0.4}},
            "beta": beta, "horizon": horizon}


def gauss_doc(drift: float, beta: float, horizon: int = 100) -> dict:
    return {"process": {"family": "gaussian_walk",
                        "params": {"drift": drift, "sigma": 1.0}},
            "beta": beta, "horizon": horizon}


def build_corpus() -> dict:
    """The distinct request shapes (references are computed per shape)."""
    points = [walk_doc(p_up, beta)
              for p_up in (0.52, 0.55, 0.58)
              for beta in (4.0, 6.0, 8.0, 10.0)]
    points += [gauss_doc(drift, beta)
               for drift in (0.05, 0.12) for beta in (5.0, 8.0)]
    batches = [[gauss_doc(0.02 * k + 0.01 * j, 6.0) for j in range(5)]
               for k in range(2)]
    curves = [walk_doc(0.55, 4.0), gauss_doc(0.08, 5.0)]
    return {"points": points, "batches": batches, "curves": curves}


def compute_references(corpus: dict, session_policy=None) -> dict:
    """Expected canonical bytes for every shape, from a fresh engine.

    This is the identity oracle: the serving tier must reproduce these
    bytes exactly.  ``session_policy`` (the policy echoed by ``POST
    /session``, seed included) adds per-shape references for
    session-pinned answers.
    """
    expected = {"point": [], "batch": [], "curve": [], "stream": [],
                "session": []}
    with DurabilityEngine(DEFAULT_POLICY) as engine:
        for doc in corpus["points"]:
            estimate = engine.answer(parse_query(doc))
            expected["point"].append(dumps_canonical(
                {"ok": True, "result": encode_estimate(estimate),
                 "cost_class": "cache_hit"}))
        for docs in corpus["batches"]:
            estimates = engine.answer_batch(
                [parse_query(doc) for doc in docs])
            expected["batch"].append(dumps_canonical(
                {"ok": True,
                 "results": [encode_estimate(e) for e in estimates],
                 "cost_class": "fleet"}))
        for doc in corpus["curves"]:
            curve = engine.durability_curve(parse_query(doc), CURVE_GRID)
            expected["curve"].append(dumps_canonical(
                {"ok": True, "result": encode_curve(curve),
                 "cost_class": "curve"}))
            expected["stream"].append([
                dumps_canonical(encode_estimate(e))
                for e in curve.estimates])
        if session_policy is not None:
            pinned = ExecutionPolicy.from_dict(session_policy)
            for doc in corpus["points"][:4]:
                estimate = engine.answer(parse_query(doc), policy=pinned)
                expected["session"].append(dumps_canonical(
                    {"ok": True, "result": encode_estimate(estimate),
                     "cost_class": "cache_hit"}))
    return expected


def build_schedule(corpus: dict, expected: dict, session_id: str,
                   counts: dict) -> list:
    """The replay schedule: one spec per request, deterministically
    interleaved across kinds (no RNG — replays are reproducible)."""
    specs = []
    for index in range(counts["point"]):
        shape = index % len(corpus["points"])
        specs.append({"kind": "point", "query": corpus["points"][shape],
                      "expected": expected["point"][shape]})
    for index in range(counts["session"]):
        shape = index % len(expected["session"])
        specs.append({"kind": "session",
                      "query": corpus["points"][shape],
                      "session": session_id,
                      "expected": expected["session"][shape]})
    for index in range(counts["batch"]):
        shape = index % len(corpus["batches"])
        specs.append({"kind": "batch", "queries": corpus["batches"][shape],
                      "expected": expected["batch"][shape]})
    for index in range(counts["curve"]):
        shape = index % len(corpus["curves"])
        specs.append({"kind": "curve", "query": corpus["curves"][shape],
                      "expected": expected["curve"][shape]})
    for index in range(counts["stream"]):
        shape = index % len(corpus["curves"])
        specs.append({"kind": "stream", "query": corpus["curves"][shape],
                      "expected_points": expected["stream"][shape]})
    # Deterministic interleave: sort by a fixed stride so consecutive
    # requests alternate kinds instead of arriving in blocks.
    specs = [spec for _, spec in sorted(
        ((index * 2654435761) % len(specs), spec)
        for index, spec in enumerate(specs))]
    return specs


class Recorder:
    """Per-phase tally: latencies by kind, failures with details."""

    def __init__(self):
        self.latencies = {}
        self.protocol_errors = 0
        self.identity_mismatches = 0
        self.details = []

    def ok(self, kind: str, seconds: float):
        self.latencies.setdefault(kind, []).append(seconds)

    def fail(self, bucket: str, detail: str):
        if bucket == "identity":
            self.identity_mismatches += 1
        else:
            self.protocol_errors += 1
        if len(self.details) < 10:
            self.details.append(detail)

    def percentiles(self, kind=None) -> dict:
        if kind is None:
            values = sorted(v for vs in self.latencies.values()
                            for v in vs)
        else:
            values = sorted(self.latencies.get(kind, []))
        if not values:
            return {"count": 0}

        def at(q):
            index = min(len(values) - 1, int(q * len(values)))
            return round(values[index] * 1000.0, 3)

        return {"count": len(values), "p50_ms": at(0.50),
                "p95_ms": at(0.95), "p99_ms": at(0.99),
                "max_ms": round(values[-1] * 1000.0, 3)}


async def run_spec(client: ServeClient, spec: dict, recorder: Recorder):
    kind = spec["kind"]
    started = time.perf_counter()
    try:
        if kind in ("point", "session"):
            reply = await client.answer(spec["query"],
                                        session=spec.get("session"))
            if reply.raw != spec["expected"]:
                recorder.fail("identity", f"{kind}: bytes differ from "
                              f"in-process reference")
                return
        elif kind == "batch":
            reply = await client.answer_batch(spec["queries"])
            if reply.raw != spec["expected"]:
                recorder.fail("identity", "batch: bytes differ from "
                              "in-process reference")
                return
        elif kind == "curve":
            reply = await client.curve(spec["query"], CURVE_GRID)
            if reply.raw != spec["expected"]:
                recorder.fail("identity", "curve: bytes differ from "
                              "in-process reference")
                return
        elif kind == "stream":
            events = [event async for event in
                      client.curve_stream(spec["query"], CURVE_GRID)]
            names = [event.get("event") for event in events]
            if names != (["start"] + ["point"] * len(CURVE_GRID)
                         + ["end"]):
                recorder.fail("protocol",
                              f"stream: bad event order {names}")
                return
            thresholds = [event["threshold"] for event in events[1:-1]]
            if thresholds != sorted(thresholds):
                recorder.fail("protocol", "stream: thresholds not "
                              "ascending")
                return
            for event, want in zip(events[1:-1],
                                   spec["expected_points"]):
                if dumps_canonical(event["estimate"]) != want:
                    recorder.fail("identity", "stream: point bytes "
                                  "differ from unary reference")
                    return
        else:  # pragma: no cover - schedule builder bug
            raise AssertionError(kind)
    except ServeError as exc:
        recorder.fail("protocol", f"{kind}: unexpected HTTP "
                      f"{exc.status} ({exc.kind})")
        return
    except Exception as exc:
        recorder.fail("protocol", f"{kind}: {type(exc).__name__}: {exc}")
        return
    recorder.ok(kind, time.perf_counter() - started)


async def drive(port: int, specs: list, concurrency: int,
                recorder: Recorder, runner=run_spec, tenant=None):
    """Replay ``specs`` through ``concurrency`` keep-alive clients."""
    queue: asyncio.Queue = asyncio.Queue()
    for spec in specs:
        queue.put_nowait(spec)

    async def worker():
        async with ServeClient("127.0.0.1", port, tenant=tenant) as c:
            while True:
                try:
                    spec = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                await runner(c, spec, recorder)

    await asyncio.gather(*(worker()
                           for _ in range(min(concurrency, len(specs)))))


async def overload_burst(port: int, burst: int, restore: dict) -> dict:
    """Shrink the queue to zero depth, fire a concurrent burst of
    expensive requests, and tally served-vs-shed; restore afterwards."""
    doc = gauss_doc(0.03, 9.0, horizon=300)
    slow_policy = {"max_roots": 30_000}
    tally = {"requests": burst, "served": 0, "shed": 0,
             "malformed": 0, "details": []}

    async def one(client):
        try:
            await client.answer(doc, policy=slow_policy)
            tally["served"] += 1
        except ServeError as exc:
            if exc.status == 503 and exc.kind == "shed" \
                    and isinstance(exc.payload, dict) \
                    and exc.payload.get("ok") is False:
                tally["shed"] += 1
            else:
                tally["malformed"] += 1
                if len(tally["details"]) < 5:
                    tally["details"].append(
                        f"HTTP {exc.status} ({exc.kind})")
        except Exception as exc:
            tally["malformed"] += 1
            if len(tally["details"]) < 5:
                tally["details"].append(f"{type(exc).__name__}: {exc}")

    async with ServeClient("127.0.0.1", port) as admin:
        await admin.apply_config({"max_inflight_units": 1,
                                  "max_queue": 0})
        try:
            clients = [ServeClient("127.0.0.1", port)
                       for _ in range(burst)]
            try:
                await asyncio.gather(*(one(c) for c in clients))
            finally:
                await asyncio.gather(*(c.close() for c in clients))
        finally:
            await admin.apply_config(restore)
        # The server must keep answering normally after the burst.
        reply = await admin.answer(walk_doc(0.55, 4.0))
        tally["recovered"] = reply.status == 200
    return tally


async def rate_limit_phase(port: int, restore: dict) -> dict:
    """Install a per-tenant bucket and confirm 429s for that tenant."""
    tally = {"requests": 6, "served": 0, "limited_429": 0,
             "retry_after_present": False, "other": 0}
    async with ServeClient("127.0.0.1", port) as admin:
        await admin.apply_config({"rate_tenants": {
            "bench-limited": {"rps": 0.05, "burst": 1.0}}})
        try:
            async with ServeClient("127.0.0.1", port,
                                   tenant="bench-limited") as limited:
                for _ in range(tally["requests"]):
                    try:
                        await limited.answer(walk_doc(0.55, 4.0))
                        tally["served"] += 1
                    except ServeError as exc:
                        if exc.status == 429 \
                                and exc.kind == "rate_limited":
                            tally["limited_429"] += 1
                            if exc.retry_after is not None:
                                tally["retry_after_present"] = True
                        else:
                            tally["other"] += 1
            # Other tenants must be untouched by the bucket.
            async with ServeClient("127.0.0.1", port) as free:
                reply = await free.answer(walk_doc(0.55, 4.0))
                tally["default_tenant_unaffected"] = reply.status == 200
        finally:
            await admin.apply_config(restore)
    return tally


async def open_session(port: int) -> dict:
    async with ServeClient("127.0.0.1", port) as client:
        return await client.open_session(
            policy={"method": "srs", "max_roots": 180},
            labels={"suite": "bench_serving"})


async def scrape(port: int) -> tuple:
    async with ServeClient("127.0.0.1", port) as client:
        return await client.metrics(), await client.stats()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized load (still >= 1000 requests)")
    args = parser.parse_args()

    cpu_count = os.cpu_count() or 1
    target_evaluable = cpu_count >= 4
    if args.quick:
        counts = {"point": 600, "session": 120, "batch": 120,
                  "curve": 100, "stream": 100}
        concurrency, burst = 24, 24
    else:
        counts = {"point": 2000, "session": 300, "batch": 300,
                  "curve": 200, "stream": 200}
        concurrency, burst = 48, 48

    config = ServeConfig(engine_workers=min(4, cpu_count),
                         max_inflight_units=8, max_queue=128,
                         queue_timeout_seconds=60.0,
                         watchdog_interval_seconds=0.25)
    restore = {"max_inflight_units": config.max_inflight_units,
               "max_queue": config.max_queue, "rate_tenants": {}}
    corpus = build_corpus()

    with ServerThread(policy=DEFAULT_POLICY, config=config) as handle:
        port = handle.port
        session = asyncio.run(open_session(port))
        expected = compute_references(corpus,
                                      session_policy=session["policy"])
        schedule = build_schedule(corpus, expected, session["session"],
                                  counts)

        # Warmup (primes connections and code paths; unrecorded).
        asyncio.run(drive(port, schedule[:24], 8, Recorder()))

        recorder = Recorder()
        started = time.perf_counter()
        asyncio.run(drive(port, schedule, concurrency, recorder))
        load_seconds = time.perf_counter() - started

        overload = asyncio.run(overload_burst(port, burst, restore))
        rate = asyncio.run(rate_limit_phase(port, restore))
        server_metrics, server_stats = asyncio.run(scrape(port))
    # Exiting the context manager drains and stops the server; reaching
    # this point at all is the graceful-shutdown smoke check.

    overall = recorder.percentiles()
    total = len(schedule)
    served = overall.get("count", 0)
    protocol_errors = recorder.protocol_errors + overload["malformed"] \
        + rate["other"]
    error_rate = (total - served) / total if total else 1.0
    qps = served / load_seconds if load_seconds else 0.0

    zero_protocol_errors = protocol_errors == 0
    byte_identity = recorder.identity_mismatches == 0
    sheds_observed = overload["shed"] > 0 and overload["recovered"]
    rate_limit_enforced = rate["limited_429"] > 0 \
        and rate["retry_after_present"] \
        and rate.get("default_tenant_unaffected", False)
    latency_met = overall.get("p95_ms", float("inf")) <= P95_TARGET_MS

    payload = {
        "benchmark": "serving",
        "quick": bool(args.quick),
        "cpu_count": cpu_count,
        "load": {
            "requests": total,
            "concurrency": concurrency,
            "seconds": round(load_seconds, 3),
            "qps": round(qps, 1),
            "error_rate": round(error_rate, 6),
            "protocol_errors": recorder.protocol_errors,
            "identity_mismatches": recorder.identity_mismatches,
            "overall": overall,
            "by_kind": {kind: recorder.percentiles(kind)
                        for kind in sorted(recorder.latencies)},
            "failure_details": recorder.details,
        },
        "overload": overload,
        "rate_limit": rate,
        "server": {
            "requests_total": server_metrics.get("counters", {}).get(
                "requests_total"),
            "admission": server_stats.get("admission"),
            "plan_cache": server_stats.get("plan_cache")
            or server_stats.get("engine", {}).get("plan_cache"),
        },
        "targets": {
            "zero_protocol_errors": zero_protocol_errors,
            "byte_identity": byte_identity,
            "sheds_observed_and_recovered": sheds_observed,
            "rate_limit_enforced": rate_limit_enforced,
            "latency_target_evaluable": target_evaluable,
            "latency_p95_target_ms": P95_TARGET_MS,
            "latency_target_met": latency_met,
        },
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    evaluable_note = ("evaluable" if target_evaluable
                      else "NOT evaluable: < 4 cores")
    lines = [f"host cpus: {cpu_count} (latency target {evaluable_note})",
             f"main load: {total} requests @ {concurrency} clients "
             f"in {load_seconds:.2f}s ({qps:,.0f} qps)"]
    for kind in sorted(recorder.latencies):
        stats = recorder.percentiles(kind)
        lines.append(
            f"  {kind:>8}: n={stats['count']:>5}  "
            f"p50 {stats['p50_ms']:>8.1f}ms  "
            f"p95 {stats['p95_ms']:>8.1f}ms  "
            f"p99 {stats['p99_ms']:>8.1f}ms")
    lines.append(
        f"  overall: p50 {overall.get('p50_ms', 0):.1f}ms  "
        f"p95 {overall.get('p95_ms', 0):.1f}ms  "
        f"p99 {overall.get('p99_ms', 0):.1f}ms")
    lines.append(
        f"protocol errors: {protocol_errors}   identity mismatches: "
        f"{recorder.identity_mismatches}   error rate: {error_rate:.4%}")
    lines.append(
        f"overload: {overload['served']} served / {overload['shed']} "
        f"shed / {overload['malformed']} malformed of "
        f"{overload['requests']}; recovered: {overload['recovered']}")
    lines.append(
        f"rate limit: {rate['limited_429']}x 429 (retry_after: "
        f"{rate['retry_after_present']}), default tenant unaffected: "
        f"{rate.get('default_tenant_unaffected')}")
    lines.append("")
    lines.append("byte identity (served == in-process): "
                 + ("intact" if byte_identity else "BROKEN"))
    lines.append(
        f"latency p95 <= {P95_TARGET_MS:.0f}ms: "
        + ("met" if latency_met else
           "missed" + ("" if target_evaluable
                       else " (host too small to evaluate)")))
    write_report("serving", "Durability serving tier under load", lines)

    # Correctness contracts gate the exit code everywhere; the latency
    # target only gates on hosts that can express it.
    ok = zero_protocol_errors and byte_identity and sheds_observed \
        and rate_limit_enforced and (latency_met or not target_evaluable)
    print(f"targets {'met' if ok else 'MISSED'}; results in "
          f"{RESULT_JSON}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
