"""Table 3: SRS vs MLSS answer agreement on the Queue model.

Paper's claim: over repeated fixed-budget runs, MLSS and SRS return the
same answers (within one standard deviation) on all four query types —
MLSS is unbiased.
"""

import pytest

from bench_common import repetitions, step_cap, write_report
from experiments import answers_table, format_answers_rows


@pytest.mark.benchmark(group="table3")
def test_table3_queue_answer_agreement(benchmark):
    n_runs = repetitions(8)
    budget = step_cap(120_000)
    rows = benchmark.pedantic(
        lambda: answers_table("queue", n_runs=n_runs, budget=budget),
        rounds=1, iterations=1)
    write_report("table3_queue_answers",
                 "Table 3 — Queue model: SRS vs MLSS answers",
                 format_answers_rows(rows))
    for row in rows:
        spread = row["srs_std"] + row["mlss_std"] + 1e-4
        assert abs(row["srs_mean"] - row["mlss_mean"]) <= 3 * spread, (
            f"{row['type']}: SRS {row['srs_mean']} vs "
            f"MLSS {row['mlss_mean']}")
    # Medium/small answers should be solid even at laptop budgets.
    for row in rows[:2]:
        assert row["mlss_mean"] == pytest.approx(row["expected"],
                                                 rel=0.5)
