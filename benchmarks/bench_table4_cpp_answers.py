"""Table 4: SRS vs MLSS answer agreement on the CPP model."""

import pytest

from bench_common import repetitions, step_cap, write_report
from experiments import answers_table, format_answers_rows


@pytest.mark.benchmark(group="table4")
def test_table4_cpp_answer_agreement(benchmark):
    n_runs = repetitions(8)
    budget = step_cap(120_000)
    rows = benchmark.pedantic(
        lambda: answers_table("cpp", n_runs=n_runs, budget=budget),
        rounds=1, iterations=1)
    write_report("table4_cpp_answers",
                 "Table 4 — CPP model: SRS vs MLSS answers",
                 format_answers_rows(rows))
    for row in rows:
        spread = row["srs_std"] + row["mlss_std"] + 1e-4
        assert abs(row["srs_mean"] - row["mlss_mean"]) <= 3 * spread
    for row in rows[:2]:
        assert row["mlss_mean"] == pytest.approx(row["expected"], rel=0.5)
