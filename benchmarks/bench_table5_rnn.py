"""Table 5: query performance on the black-box RNN model (single runs).

Paper's claim: on the LSTM-MDN stock model, MLSS reaches the quality
target with ~5-9x fewer simulation steps than SRS, with matching
answers.
"""

import pytest

from bench_common import FULL, step_cap, write_report
from experiments import rnn_table5


@pytest.mark.benchmark(group="table5")
def test_table5_rnn_single_run_performance(benchmark):
    cap = step_cap(250_000)
    rows = benchmark.pedantic(lambda: rnn_table5(cap=cap),
                              rounds=1, iterations=1)
    lines = [f"{'workload':10s} {'method':7s} {'estimate':>9s} "
             f"{'steps-to-target':>16s} {'seconds':>8s}"]
    for row in rows:
        mark = "*" if row["capped"] else " "
        lines.append(
            f"{row['workload']:10s} {row['method']:7s} "
            f"{row['probability']:>9.4f} "
            f"{row['steps_to_target']:>15d}{mark} "
            f"{row['seconds']:>8.1f}")
    lines.append("(* = capped; projected by the 1/n law)")
    write_report("table5_rnn", "Table 5 — RNN model: SRS vs MLSS", lines)

    by = {(r["workload"], r["method"]): r for r in rows}
    for key in ("rnn-small", "rnn-tiny"):
        srs = by[(key, "srs")]
        mlss = by[(key, "smlss")]
        assert mlss["steps_to_target"] < srs["steps_to_target"], (
            f"{key}: MLSS must need fewer steps")
        # Answers agree within a loose band (single runs).
        if srs["probability"] > 0 and mlss["probability"] > 0:
            ratio = srs["probability"] / mlss["probability"]
            assert 0.2 < ratio < 5.0
