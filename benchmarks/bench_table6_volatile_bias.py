"""Table 6: s-MLSS vs g-MLSS under level skipping (fixed 50k budget).

Paper's claim: with volatile value jumps, blindly applied s-MLSS gives
wrong (low) estimates while g-MLSS remains unbiased and more precise
than SRS under the same budget.
"""

import pytest

from bench_common import repetitions, write_report
from experiments import format_volatile_rows, volatile_bias_table


@pytest.mark.benchmark(group="table6")
def test_table6_volatile_estimation_bias(benchmark):
    n_runs = repetitions(10)
    rows = benchmark.pedantic(
        lambda: volatile_bias_table(n_runs=n_runs, budget=50_000),
        rounds=1, iterations=1)
    write_report("table6_volatile_bias",
                 "Table 6 — volatile processes: estimation under skipping",
                 format_volatile_rows(rows))
    for row in rows:
        assert row["skip_events"] > 0, (
            f"{row['workload']}: no skipping occurred; Table 6 setup broken")
        truth = row["expected"]
        # s-MLSS must sit clearly below the truth...
        assert row["smlss_mean"] < truth, row
        # ...while g-MLSS stays within sampling noise of it.
        tolerance = 3 * row["gmlss_std"] + 0.35 * truth
        assert abs(row["gmlss_mean"] - truth) <= tolerance, row
    # Aggregate bias gap: g-MLSS closer to the truth than s-MLSS overall.
    gmlss_gap = sum(abs(r["gmlss_mean"] - r["expected"])
                    / r["expected"] for r in rows)
    smlss_gap = sum(abs(r["smlss_mean"] - r["expected"])
                    / r["expected"] for r in rows)
    assert gmlss_gap < smlss_gap
