"""Table 7: the whole pipeline running inside the DBMS.

Paper's claim: moving models + samplers into the database (PostgreSQL
there, sqlite3 here) preserves MLSS's advantage — Rare queries drop
from fractions of an hour to minutes.
"""

import pytest

from bench_common import step_cap, write_report
from experiments import dbms_table7, format_dbms_rows


@pytest.mark.benchmark(group="table7")
@pytest.mark.parametrize("model", ["queue", "cpp"])
def test_table7_in_dbms_running_times(benchmark, model):
    cap = step_cap(4_000_000)
    rows = benchmark.pedantic(lambda: dbms_table7(model, cap=cap),
                              rounds=1, iterations=1)
    write_report(f"table7_dbms_{model}",
                 f"Table 7 — in-DBMS running times, {model} model",
                 format_dbms_rows(rows))
    by_type = {row["type"]: row for row in rows}
    # MLSS must win on the hard queries inside the DBMS too.
    for qtype in ("tiny", "rare"):
        row = by_type[qtype]
        assert row["mlss_seconds"] < row["srs_seconds"], row
