"""Scalar vs. vectorized backend: steps/second and estimate agreement.

Measures the throughput (simulation steps per wall-clock second) of the
SRS sampler on two workloads spanning the cost spectrum:

* random walk — the cheapest possible ``g``, so per-step Python
  dispatch dominates: the pure upside of batching;
* tandem queue — an expensive ``g`` (an embedded Gillespie loop per
  step), the conservative case.

It also re-checks the statistical contract on the analytic-reference
query (a birth-death chain with an exact DP answer): vectorized g-MLSS
must agree with the scalar estimate within the joint 95 % CI and with
the exact answer within its own CI.

Results land in ``BENCH_vectorized.json`` at the repo root (the perf
trajectory file) and ``benchmarks/results/vectorized_backend.txt``.
"""

import json
import math
import time
from pathlib import Path

from bench_common import write_report
from repro.core.analytic import hitting_probability
from repro.core.gmlss import GMLSSSampler
from repro.core.levels import LevelPartition
from repro.core.srs import SRSSampler
from repro.core.stats import critical_value
from repro.core.value_functions import DurabilityQuery
from repro.processes.markov_chain import birth_death_chain
from repro.processes.queueing import TandemQueueProcess
from repro.processes.random_walk import RandomWalkProcess

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_JSON = REPO_ROOT / "BENCH_vectorized.json"

#: Cohort size of the vectorized SRS runs (scalar SRS is insensitive to
#: batch_roots; for the batched backend bigger cohorts amortize better).
COHORT = 4096


def random_walk_workload():
    walk = RandomWalkProcess(p_up=0.5)
    return DurabilityQuery.threshold(walk, RandomWalkProcess.position,
                                     beta=25.0, horizon=250,
                                     name="walk-25-250")


def tandem_queue_workload():
    queue = TandemQueueProcess()
    return DurabilityQuery.threshold(queue,
                                     TandemQueueProcess.queue2_length,
                                     beta=10.0, horizon=100,
                                     name="queue-10-100")


def measure_steps_per_second(query, backend, max_roots, seed=7):
    sampler = SRSSampler(batch_roots=COHORT, backend=backend)
    started = time.perf_counter()
    estimate = sampler.run(query, max_roots=max_roots, seed=seed)
    elapsed = time.perf_counter() - started
    return {
        "steps": estimate.steps,
        "seconds": round(elapsed, 4),
        "steps_per_second": round(estimate.steps / elapsed, 1),
        "probability": estimate.probability,
        "n_roots": estimate.n_roots,
    }


def bench_workload(name, query, max_roots):
    scalar = measure_steps_per_second(query, "scalar", max_roots)
    vectorized = measure_steps_per_second(query, "vectorized", max_roots)
    return {
        "workload": name,
        "query": query.name,
        "scalar": scalar,
        "vectorized": vectorized,
        "speedup": round(vectorized["steps_per_second"]
                         / scalar["steps_per_second"], 2),
    }


def gmlss_agreement_check():
    """Vectorized g-MLSS vs. scalar g-MLSS vs. the exact DP answer."""
    chain = birth_death_chain(n=13, p_up=0.25, p_down=0.35, start=0)
    exact = hitting_probability(chain.matrix, 0, [12], 60)
    query = DurabilityQuery.threshold(chain, chain.state_value, beta=12.0,
                                      horizon=60, name="chain-12-60")
    partition = LevelPartition([4 / 12, 8 / 12])
    scalar = GMLSSSampler(partition, ratio=3).run(
        query, max_roots=4000, seed=11)
    vectorized = GMLSSSampler(partition, ratio=3, backend="vectorized").run(
        query, max_roots=4000, seed=12)
    z95 = critical_value(0.95)
    joint_half_width = z95 * math.sqrt(scalar.variance
                                       + vectorized.variance)
    return {
        "exact": exact,
        "scalar_estimate": scalar.probability,
        "vectorized_estimate": vectorized.probability,
        "difference": abs(scalar.probability - vectorized.probability),
        "joint_ci95_half_width": joint_half_width,
        "agree_within_ci": bool(
            abs(scalar.probability - vectorized.probability)
            <= joint_half_width),
        "vectorized_within_own_ci_of_exact": bool(
            abs(vectorized.probability - exact)
            <= z95 * math.sqrt(vectorized.variance)),
    }


def run_benchmark():
    results = {
        "benchmark": "vectorized_backend",
        "unit": "simulation steps per second (SRS sampler)",
        "cohort": COHORT,
        "workloads": [
            bench_workload("random_walk", random_walk_workload(),
                           max_roots=4096),
            bench_workload("tandem_queue", tandem_queue_workload(),
                           max_roots=4096),
        ],
        "gmlss_agreement": gmlss_agreement_check(),
    }
    RESULT_JSON.write_text(json.dumps(results, indent=2) + "\n")

    lines = [f"{'workload':<14} {'scalar steps/s':>16} "
             f"{'vectorized steps/s':>20} {'speedup':>9}"]
    for row in results["workloads"]:
        lines.append(
            f"{row['workload']:<14} "
            f"{row['scalar']['steps_per_second']:>16,.0f} "
            f"{row['vectorized']['steps_per_second']:>20,.0f} "
            f"{row['speedup']:>8.1f}x")
    agreement = results["gmlss_agreement"]
    lines += [
        "",
        f"g-MLSS agreement on chain-12-60 (exact = "
        f"{agreement['exact']:.6f}):",
        f"  scalar     {agreement['scalar_estimate']:.6f}",
        f"  vectorized {agreement['vectorized_estimate']:.6f}",
        f"  |diff| {agreement['difference']:.2e} <= joint 95% CI "
        f"half-width {agreement['joint_ci95_half_width']:.2e}: "
        f"{agreement['agree_within_ci']}",
        "",
        f"JSON: {RESULT_JSON}",
    ]
    write_report("vectorized_backend",
                 "Vectorized backend — steps/second vs. the scalar loop",
                 lines)
    return results


def test_vectorized_backend():
    results = run_benchmark()
    by_name = {row["workload"]: row for row in results["workloads"]}
    # Acceptance: >= 5x steps/second on the random-walk workload.
    assert by_name["random_walk"]["speedup"] >= 5.0, by_name["random_walk"]
    # The queue's Gillespie step is real work even in NumPy; just
    # require the batched backend not to regress.
    assert by_name["tandem_queue"]["speedup"] >= 1.0, by_name["tandem_queue"]
    agreement = results["gmlss_agreement"]
    assert agreement["agree_within_ci"], agreement
    assert agreement["vectorized_within_own_ci_of_exact"], agreement


if __name__ == "__main__":
    run_benchmark()
