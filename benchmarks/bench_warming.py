"""Workload forecasting + plan warming: day-2 queries skip the search.

Two-phase replay over one synthetic workload of query shapes:

* **Phase 1 (day 1)** — a fresh engine answers every shape cold,
  paying the full greedy plan search on the hot path; its workload log
  records each shape's arrival and measured search cost.
* **Warm window (the restart)** — a brand-new engine boots with an
  empty cache backed by a persistent plan store.  A
  :class:`~repro.forecast.PlanWarmer` fed the day-1 log forecasts
  which shapes return, ranks them by ``predicted arrivals x measured
  search cost``, and pre-computes their plans in idle cycles (write-
  through persists them).
* **Phase 2 (day 2)** — the same shapes replay against the warmed
  engine.

Every gate is hardware-independent (step counts and byte comparisons,
never wall-clock), so the benchmark is failing — not informational —
everywhere, including the 1-core CI runner:

* **coverage gate** — the warmed phase serves >= 80% of the
  cold-searchable shapes from the cache/store with *zero* on-path plan
  search steps;
* **identity gate** — every phase-2 answer is byte-identical to the
  unwarmed control (the phase-1 cold answer), modulo plan provenance;
* **persistence gate** — a third engine hydrating the store serves
  every shape with ``plan_source == "store"`` and zero search steps,
  byte-identically.

Run directly (``python benchmarks/bench_warming.py [--quick]``); CI
uses ``--quick``.  Results land in ``BENCH_warming.json`` and
``benchmarks/results/warming.txt``.
"""

import argparse
import json
from pathlib import Path

from bench_common import write_report
from repro.core.value_functions import DurabilityQuery
from repro.db import PlanStore
from repro.engine import DurabilityEngine, ExecutionPolicy, PlanCache
from repro.forecast import (MovingAverageForecaster, PlanWarmer,
                            WorkloadLog)
from repro.processes import RandomWalkProcess
from repro.serve.protocol import (dumps_canonical, encode_estimate,
                                  strip_plan_provenance)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_JSON = REPO_ROOT / "BENCH_warming.json"

#: Hard acceptance target: warmed-phase coverage of cold-searchable
#: shapes (served from cache/store, zero on-path search steps).
COVERAGE_TARGET = 0.8

POLICY = ExecutionPolicy(max_steps=60_000, seed=2, trial_steps=5_000)

#: The workload: one recurring query shape per threshold (> half an
#: octave apart, so every shape occupies its own cache bucket).
QUICK_BETAS = (5.0, 7.0, 10.0, 14.0)
FULL_BETAS = QUICK_BETAS + (20.0, 28.0)


def build_query(beta: float) -> DurabilityQuery:
    process = RandomWalkProcess(p_up=0.35, p_down=0.45)
    return DurabilityQuery.threshold(
        process, RandomWalkProcess.position, beta=beta, horizon=40)


def answer_bytes(estimate) -> bytes:
    return dumps_canonical(
        strip_plan_provenance(encode_estimate(estimate)))


def search_steps(estimate) -> int:
    return int(estimate.details.get("plan_search", {})
               .get("search_steps", 0))


def replay(engine, betas) -> dict:
    """Answer every shape once; returns per-beta observations."""
    observations = {}
    for beta in betas:
        estimate = engine.answer(build_query(beta))
        observations[beta] = {
            "bytes": answer_bytes(estimate),
            "plan_source": estimate.details.get("plan_source"),
            "plan_origin": estimate.details.get("plan_origin"),
            "search_steps": search_steps(estimate),
        }
    return observations


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload (4 shapes)")
    args = parser.parse_args()

    betas = QUICK_BETAS if args.quick else FULL_BETAS
    store_path = REPO_ROOT / "BENCH_warming_plans.db"
    if store_path.exists():
        store_path.unlink()

    # Phase 1: day-1 traffic on a fresh engine — every shape pays the
    # plan search; the log records arrivals and measured costs.  These
    # cold answers are also the unwarmed control for byte identity.
    day1_log = WorkloadLog(window_seconds=3600.0)
    with DurabilityEngine(POLICY, workload_log=day1_log) as engine:
        phase1 = replay(engine, betas)
    cold_searchable = [beta for beta in betas
                       if phase1[beta]["search_steps"] > 0]
    phase1_steps = sum(o["search_steps"] for o in phase1.values())

    # The restart: a new engine, empty cache, persistent store.  The
    # warmer (fed yesterday's log) pre-computes tomorrow's plans in
    # idle cycles; write-through persists them.
    store = PlanStore(str(store_path))
    with DurabilityEngine(
            POLICY, plan_cache=PlanCache(store=store),
            workload_log=WorkloadLog(window_seconds=3600.0)) as engine:
        warmer = PlanWarmer(engine, day1_log,
                            forecaster=MovingAverageForecaster(),
                            top_k=len(betas),
                            step_budget=len(betas) * 600_000)
        sweep = warmer.sweep()
        warmer_stats = warmer.stats()

        # Phase 2: day-2 traffic replays the same shapes.
        phase2 = replay(engine, betas)
    store.close()

    covered = [beta for beta in cold_searchable
               if phase2[beta]["plan_source"] in ("cache", "store")
               and phase2[beta]["search_steps"] == 0]
    coverage = (len(covered) / len(cold_searchable)
                if cold_searchable else 0.0)
    identity = {beta: phase2[beta]["bytes"] == phase1[beta]["bytes"]
                for beta in betas}
    phase2_steps = sum(o["search_steps"] for o in phase2.values())

    # Persistence: one more restart, plans hydrated from the store —
    # zero search anywhere, provenance says so.
    store = PlanStore(str(store_path))
    with DurabilityEngine(
            POLICY, plan_cache=PlanCache(store=store)) as engine:
        phase3 = replay(engine, betas)
    store.close()
    store_served = [beta for beta in cold_searchable
                    if phase3[beta]["plan_source"] == "store"
                    and phase3[beta]["search_steps"] == 0
                    and phase3[beta]["bytes"] == phase1[beta]["bytes"]]

    gates = {
        "coverage_target": COVERAGE_TARGET,
        "coverage": round(coverage, 4),
        "coverage_gate_pass": coverage >= COVERAGE_TARGET,
        "identity_gate_pass": all(identity.values()),
        "persistence_gate_pass":
            len(store_served) == len(cold_searchable),
    }
    payload = {
        "benchmark": "warming",
        "quick": args.quick,
        "shapes": list(betas),
        "cold_searchable_shapes": cold_searchable,
        "phase1_search_steps": phase1_steps,
        "warm_sweep": sweep,
        "warmer": {key: warmer_stats[key]
                   for key in ("plans_warmed", "sweep_steps", "sweeps",
                               "forecaster")},
        "phase2_search_steps": phase2_steps,
        "covered_shapes": covered,
        "store_served_shapes": store_served,
        "plan_sources": {
            "phase2": {beta: phase2[beta]["plan_source"]
                       for beta in betas},
            "restart": {beta: phase3[beta]["plan_source"]
                        for beta in betas},
        },
        "gates": gates,
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2,
                                      sort_keys=True, default=str))
    if store_path.exists():
        store_path.unlink()

    lines = [
        f"workload: {len(betas)} recurring shapes "
        f"({len(cold_searchable)} cold-searchable)",
        f"phase 1 (cold): {phase1_steps:,} on-path plan search steps",
        f"warm sweep: warmed {sweep.get('warmed', 0)} plans in "
        f"{sweep.get('steps', 0):,} off-path steps",
        f"phase 2 (warmed): {phase2_steps:,} on-path search steps, "
        f"coverage {coverage:.0%} (target >= {COVERAGE_TARGET:.0%})",
        f"restart from store: {len(store_served)}/"
        f"{len(cold_searchable)} shapes served plan_source=store",
        f"byte identity vs unwarmed control: "
        f"{sum(identity.values())}/{len(identity)}",
        f"gates: {gates}",
    ]
    write_report("warming", "Workload forecasting + plan warming",
                 lines)

    failures = [name for name in ("coverage_gate_pass",
                                  "identity_gate_pass",
                                  "persistence_gate_pass")
                if not gates[name]]
    if failures:
        raise SystemExit(f"warming gates failed: {failures}")


if __name__ == "__main__":
    main()
