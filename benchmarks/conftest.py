"""Benchmark-suite configuration."""

import sys
from pathlib import Path

# Make `bench_common` importable regardless of pytest's rootdir.
sys.path.insert(0, str(Path(__file__).resolve().parent))
