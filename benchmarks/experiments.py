"""Implementations of the paper's Section 6 experiments.

Each function regenerates the data behind one table or figure and
returns printable rows; the ``bench_*`` files wrap them with
pytest-benchmark timing, shape assertions and report files.  All
experiments work through the workload registry (``repro.workloads``),
so the thresholds and quality rules are the calibrated Table 2 ones.
"""

from __future__ import annotations

import time

from repro.core.gmlss import GMLSSSampler
from repro.core.greedy import adaptive_greedy_partition
from repro.core.smlss import SMLSSSampler
from repro.core.srs import SRSSampler
from repro.workloads import workload

from bench_common import (RNN_CACHE_DIR, mean_std, quality_for,
                          run_to_quality, step_cap)

#: Balanced-plan level counts per query type (Section 6.3's findings:
#: Small queries prefer few levels, Tiny/Rare want 5-6).
LEVELS_FOR_TYPE = {"medium": 2, "small": 3, "tiny": 5, "rare": 6}


def trial_budget(spec, base: int) -> int:
    """Plan-search trial budget: rarer targets need longer trials to
    observe any hits at all (Section 5.1's t_0)."""
    factor = {"medium": 1, "small": 1, "tiny": 4, "rare": 6}
    return base * factor[spec.query_type]


def make_sampler(method, spec, num_levels=None, ratio=3):
    """Build a sampler for a workload with its balanced plan."""
    if method == "srs":
        return SRSSampler(batch_roots=500)
    levels = num_levels or LEVELS_FOR_TYPE[spec.query_type]
    partition = spec.balanced_partition(levels)
    if method == "smlss":
        return SMLSSSampler(partition, ratio=ratio, batch_roots=100)
    if method == "gmlss":
        return GMLSSSampler(partition, ratio=ratio, batch_roots=100)
    raise ValueError(f"unknown method {method!r}")


# ----------------------------------------------------------------------
# Tables 3 and 4: answer agreement under a fixed budget
# ----------------------------------------------------------------------

def answers_table(model: str, n_runs: int, budget: int,
                  mlss_method: str = "smlss") -> list:
    """SRS vs MLSS answers (mean +/- std over repeated runs)."""
    rows = []
    for spec in _model_specs(model):
        query = spec.make_query()
        srs_values, mlss_values = [], []
        for run in range(n_runs):
            seed = 1000 * run + hash(spec.key) % 997
            srs_values.append(SRSSampler().run(
                query, max_steps=budget, seed=seed).probability)
            mlss_values.append(make_sampler(mlss_method, spec).run(
                query, max_steps=budget, seed=seed + 1).probability)
        srs_mean, srs_std = mean_std(srs_values)
        mlss_mean, mlss_std = mean_std(mlss_values)
        rows.append({
            "type": spec.query_type, "beta": spec.beta,
            "expected": spec.expected_probability,
            "paper": spec.paper_probability,
            "srs_mean": srs_mean, "srs_std": srs_std,
            "mlss_mean": mlss_mean, "mlss_std": mlss_std,
        })
    return rows


def _model_specs(model: str) -> list:
    from repro.workloads import workloads_for

    return workloads_for(model)


def format_answers_rows(rows) -> list:
    lines = [f"{'type':8s} {'paper':>8s} {'calibrated':>10s} "
             f"{'SRS':>20s} {'MLSS':>20s}"]
    for row in rows:
        lines.append(
            f"{row['type']:8s} {row['paper']:8.4f} {row['expected']:10.4f} "
            f"{row['srs_mean']:10.5f}±{row['srs_std']:<9.5f}"
            f"{row['mlss_mean']:10.5f}±{row['mlss_std']:<9.5f}")
    return lines


# ----------------------------------------------------------------------
# Table 5: the RNN model (single runs, like the paper)
# ----------------------------------------------------------------------

def rnn_table5(cap: int) -> list:
    rows = []
    for key in ("rnn-small", "rnn-tiny"):
        spec = workload(key)
        query = spec.make_query(rnn_cache_dir=RNN_CACHE_DIR)
        quality = quality_for(spec)
        for method in ("srs", "smlss"):
            sampler = make_sampler(method, spec)
            started = time.perf_counter()
            estimate, steps_needed, capped = run_to_quality(
                sampler, query, quality, cap=cap, seed=42)
            rows.append({
                "workload": key, "method": method,
                "probability": estimate.probability,
                "steps": estimate.steps, "steps_to_target": steps_needed,
                "capped": capped,
                "seconds": time.perf_counter() - started,
                "paper": spec.paper_probability,
            })
    return rows


# ----------------------------------------------------------------------
# Figures 6 and 7: steps and time to reach the quality target
# ----------------------------------------------------------------------

def efficiency_figure(model: str, cap: int,
                      mlss_method: str = "smlss") -> list:
    rows = []
    for spec in _model_specs(model):
        query = spec.make_query()
        quality = quality_for(spec)
        row = {"type": spec.query_type, "target": quality.describe()}
        for method in ("srs", mlss_method):
            sampler = make_sampler(method, spec)
            started = time.perf_counter()
            estimate, steps_needed, capped = run_to_quality(
                sampler, query, quality, cap=cap, seed=7)
            label = "srs" if method == "srs" else "mlss"
            row[f"{label}_steps"] = steps_needed
            row[f"{label}_capped"] = capped
            row[f"{label}_seconds"] = time.perf_counter() - started
            row[f"{label}_estimate"] = estimate.probability
        row["step_speedup"] = row["srs_steps"] / max(row["mlss_steps"], 1)
        rows.append(row)
    return rows


def format_efficiency_rows(rows) -> list:
    lines = [f"{'type':8s} {'SRS steps':>12s} {'MLSS steps':>12s} "
             f"{'speedup':>8s} {'SRS s':>8s} {'MLSS s':>8s}"]
    for row in rows:
        srs_mark = "*" if row["srs_capped"] else " "
        mlss_mark = "*" if row["mlss_capped"] else " "
        lines.append(
            f"{row['type']:8s} {row['srs_steps']:>11d}{srs_mark} "
            f"{row['mlss_steps']:>11d}{mlss_mark} "
            f"{row['step_speedup']:>8.1f} {row['srs_seconds']:>8.2f} "
            f"{row['mlss_seconds']:>8.2f}")
    lines.append("(* = budget-capped; steps projected by the 1/n law)")
    return lines


# ----------------------------------------------------------------------
# Figure 8: convergence of the estimate and its quality over time
# ----------------------------------------------------------------------

def convergence_trace(key: str, method: str, budget: int,
                      num_levels: int = 4, seed: int = 3,
                      rnn_cache=None) -> list:
    spec = workload(key)
    query = spec.make_query(rnn_cache_dir=rnn_cache)
    if method == "srs":
        sampler = SRSSampler(batch_roots=200, record_trace=True)
    else:
        partition = spec.balanced_partition(num_levels)
        sampler = SMLSSSampler(partition, ratio=3, batch_roots=50,
                               record_trace=True)
    estimate = sampler.run(query, max_steps=budget, seed=seed)
    return estimate.details["trace"]


def format_trace(trace, expected: float, every: int = 1) -> list:
    lines = [f"{'steps':>10s} {'estimate':>10s} {'RE':>8s} "
             f"{'CI half':>9s}"]
    for point in trace[::every]:
        re = (point.variance ** 0.5 / point.probability
              if point.probability > 0 else float("inf"))
        half = 1.96 * point.variance ** 0.5
        lines.append(f"{point.steps:>10d} {point.probability:>10.5f} "
                     f"{re:>8.3f} {half:>9.5f}")
    lines.append(f"(calibrated truth ~ {expected:.5f})")
    return lines


# ----------------------------------------------------------------------
# Table 6: estimation under level skipping (fixed 50k-step budget)
# ----------------------------------------------------------------------

def volatile_bias_table(n_runs: int, budget: int = 50_000) -> list:
    rows = []
    for key in ("volatile-cpp-tiny", "volatile-cpp-rare",
                "volatile-queue-tiny", "volatile-queue-rare"):
        spec = workload(key)
        query = spec.make_query()
        partition = spec.balanced_partition(LEVELS_FOR_TYPE[spec.query_type])
        values = {"srs": [], "smlss": [], "gmlss": []}
        skip_events = 0
        for run in range(n_runs):
            seed = 10_000 + 31 * run
            values["srs"].append(SRSSampler().run(
                query, max_steps=budget, seed=seed).probability)
            smlss = SMLSSSampler(partition, ratio=3).run(
                query, max_steps=budget, seed=seed + 1)
            values["smlss"].append(smlss.probability)
            skip_events += sum(smlss.details["skips"])
            values["gmlss"].append(GMLSSSampler(partition, ratio=3).run(
                query, max_steps=budget, seed=seed + 1).probability)
        row = {"workload": key, "expected": spec.expected_probability,
               "skip_events": skip_events}
        for method, series in values.items():
            mean, std = mean_std(series)
            row[f"{method}_mean"] = mean
            row[f"{method}_std"] = std
        rows.append(row)
    return rows


def format_volatile_rows(rows) -> list:
    lines = [f"{'workload':22s} {'truth~':>8s} {'SRS':>18s} "
             f"{'s-MLSS':>18s} {'g-MLSS':>18s}"]
    for row in rows:
        lines.append(
            f"{row['workload']:22s} {row['expected']:8.4f} "
            f"{row['srs_mean']:9.4f}±{row['srs_std']:<7.4f} "
            f"{row['smlss_mean']:9.4f}±{row['smlss_std']:<7.4f} "
            f"{row['gmlss_mean']:9.4f}±{row['gmlss_std']:<7.4f}")
    return lines


# ----------------------------------------------------------------------
# Figure 9 / 14 support: g-MLSS efficiency with bootstrap breakdown
# ----------------------------------------------------------------------

def gmlss_efficiency(keys, cap: int, use_greedy: bool = False,
                     trial_steps: int = 20_000) -> list:
    rows = []
    for key in keys:
        spec = workload(key)
        query = spec.make_query()
        quality = quality_for(spec)
        row = {"workload": key}

        started = time.perf_counter()
        estimate, steps_needed, capped = run_to_quality(
            SRSSampler(batch_roots=500), query, quality, cap=cap, seed=5)
        row["srs_seconds"] = time.perf_counter() - started
        row["srs_steps"] = steps_needed
        row["srs_capped"] = capped

        search_seconds = 0.0
        if use_greedy:
            started = time.perf_counter()
            search = adaptive_greedy_partition(
                query, ratio=3, trial_steps=trial_budget(spec, trial_steps),
                seed=11)
            search_seconds = time.perf_counter() - started
            partition = search.partition
        else:
            partition = spec.balanced_partition(
                LEVELS_FOR_TYPE[spec.query_type])
        sampler = GMLSSSampler(partition, ratio=3, batch_roots=100)
        started = time.perf_counter()
        estimate, steps_needed, capped = run_to_quality(
            sampler, query, quality, cap=cap, seed=6)
        total = time.perf_counter() - started
        row["gmlss_seconds"] = total
        row["gmlss_steps"] = steps_needed
        row["gmlss_capped"] = capped
        row["bootstrap_seconds"] = estimate.details["bootstrap_seconds"]
        row["search_seconds"] = search_seconds
        row["speedup"] = row["srs_seconds"] / max(
            total + search_seconds, 1e-9)
        rows.append(row)
    return rows


def format_gmlss_rows(rows) -> list:
    lines = [f"{'workload':22s} {'SRS s':>8s} {'gMLSS s':>8s} "
             f"{'boot s':>7s} {'search s':>8s} {'speedup':>8s}"]
    for row in rows:
        lines.append(
            f"{row['workload']:22s} {row['srs_seconds']:>8.2f} "
            f"{row['gmlss_seconds']:>8.2f} "
            f"{row['bootstrap_seconds']:>7.2f} "
            f"{row['search_seconds']:>8.2f} {row['speedup']:>8.1f}")
    return lines


# ----------------------------------------------------------------------
# Figures 10-12: splitting ratio and level-count trade-offs
# ----------------------------------------------------------------------

def splitting_ratio_sweep(key: str, ratios, cap: int,
                          num_levels: int = 4) -> list:
    spec = workload(key)
    query = spec.make_query()
    quality = quality_for(spec)
    partition = spec.balanced_partition(num_levels)
    rows = []
    for ratio in ratios:
        if ratio == 1:
            sampler = SMLSSSampler(partition, ratio=1, batch_roots=500)
        else:
            sampler = SMLSSSampler(partition, ratio=ratio, batch_roots=100)
        estimate, steps_needed, capped = run_to_quality(
            sampler, query, quality, cap=cap, seed=13 + ratio)
        rows.append({"ratio": ratio, "steps": steps_needed,
                     "capped": capped,
                     "estimate": estimate.probability})
    return rows


def level_count_sweep(key: str, level_counts, cap: int,
                      ratio: int = 3) -> list:
    spec = workload(key)
    query = spec.make_query()
    quality = quality_for(spec)
    rows = []
    for levels in level_counts:
        partition = spec.balanced_partition(levels)
        sampler = SMLSSSampler(partition, ratio=ratio, batch_roots=100)
        estimate, steps_needed, capped = run_to_quality(
            sampler, query, quality, cap=cap, seed=17 + levels)
        rows.append({"levels": levels,
                     "actual_levels": partition.num_levels,
                     "steps": steps_needed, "capped": capped,
                     "estimate": estimate.probability})
    return rows


def format_sweep(rows, x_name: str) -> list:
    lines = [f"{x_name:>8s} {'steps':>12s} {'estimate':>10s}"]
    for row in rows:
        mark = "*" if row["capped"] else " "
        lines.append(f"{row[x_name]:>8} {row['steps']:>11d}{mark} "
                     f"{row['estimate']:>10.5f}")
    return lines


# ----------------------------------------------------------------------
# Figure 13: greedy search vs manually balanced plans vs SRS
# ----------------------------------------------------------------------

def greedy_comparison(keys, cap: int, trial_steps: int = 15_000,
                      method: str = "smlss", rnn_cache=None) -> list:
    rows = []
    for key in keys:
        spec = workload(key)
        query = spec.make_query(rnn_cache_dir=rnn_cache)
        quality = quality_for(spec)
        sampler_cls = SMLSSSampler if method == "smlss" else GMLSSSampler
        row = {"workload": key}

        started = time.perf_counter()
        _, steps, capped = run_to_quality(SRSSampler(batch_roots=500),
                                          query, quality, cap, seed=3)
        row["srs_seconds"] = time.perf_counter() - started
        row["srs_steps"] = steps

        balanced = spec.balanced_partition(LEVELS_FOR_TYPE[spec.query_type])
        started = time.perf_counter()
        _, steps, capped = run_to_quality(
            sampler_cls(balanced, ratio=3), query, quality, cap, seed=4)
        row["bal_seconds"] = time.perf_counter() - started
        row["bal_steps"] = steps

        started = time.perf_counter()
        search = adaptive_greedy_partition(
            query, ratio=3, trial_steps=trial_budget(spec, trial_steps),
            seed=5)
        row["search_seconds"] = time.perf_counter() - started
        row["search_steps"] = search.search_steps
        started = time.perf_counter()
        _, steps, capped = run_to_quality(
            sampler_cls(search.partition, ratio=3), query, quality, cap,
            seed=6)
        row["greedy_seconds"] = time.perf_counter() - started
        row["greedy_steps"] = steps
        row["greedy_plan"] = search.partition
        rows.append(row)
    return rows


def format_greedy_rows(rows) -> list:
    lines = [f"{'workload':18s} {'SRS':>11s} {'MLSS-BAL':>11s} "
             f"{'MLSS-G':>11s} {'G-search':>11s}   (steps)"]
    for row in rows:
        lines.append(
            f"{row['workload']:18s} {row['srs_steps']:>11d} "
            f"{row['bal_steps']:>11d} {row['greedy_steps']:>11d} "
            f"{row['search_steps']:>11d}")
        lines.append(
            f"{'':18s} {row['srs_seconds']:>10.2f}s "
            f"{row['bal_seconds']:>10.2f}s {row['greedy_seconds']:>10.2f}s "
            f"{row['search_seconds']:>10.2f}s  (time)")
    return lines


# ----------------------------------------------------------------------
# Table 7: the pipeline inside the DBMS
# ----------------------------------------------------------------------

def dbms_table7(model: str, cap: int) -> list:
    from repro.db import DurabilityDB

    rows = []
    with DurabilityDB() as db:
        model_id = db.register_model(model, model, {})
        for spec in _model_specs(model):
            query_id = db.register_query(spec.key, model_id,
                                         horizon=spec.horizon,
                                         threshold=spec.beta)
            partition = spec.balanced_partition(
                LEVELS_FOR_TYPE[spec.query_type])
            plan_id = db.register_plan(query_id, partition.boundaries,
                                       ratio=3, source="balanced")
            quality = quality_for(spec)
            row = {"type": spec.query_type}
            for method, plan in (("srs", None), ("gmlss", plan_id)):
                started = time.perf_counter()
                estimate = db.answer_query(
                    query_id, method=method, plan_id=plan,
                    quality=quality, max_steps=cap, seed=21)
                label = "srs" if method == "srs" else "mlss"
                row[f"{label}_seconds"] = time.perf_counter() - started
                row[f"{label}_estimate"] = estimate.probability
            rows.append(row)
    return rows


def format_dbms_rows(rows) -> list:
    lines = [f"{'type':8s} {'SRS s':>8s} {'MLSS s':>8s} {'ratio':>7s}"]
    for row in rows:
        ratio = row["srs_seconds"] / max(row["mlss_seconds"], 1e-9)
        lines.append(f"{row['type']:8s} {row['srs_seconds']:>8.2f} "
                     f"{row['mlss_seconds']:>8.2f} {ratio:>7.1f}")
    return lines
