"""Insurance risk analytics on a compound Poisson surplus process.

The motivating financial question from the paper's introduction: an
insurance product starts with surplus 15, earns premium 4.5 per period
and pays compound-Poisson claims.  The analyst asks durability
prediction queries like *"how likely is the surplus to reach a windfall
level of 88 within 500 periods?"* — a sub-1 % event where plain Monte
Carlo burns most of its budget on useless paths.

This example runs the paper's pipeline end to end: adaptive greedy
level design, then g-MLSS to a 10 % relative-error guarantee, with the
SRS cost for contrast.

Run:  python examples/insurance_risk.py
"""

from repro import (DurabilityQuery, GMLSSSampler, RelativeErrorTarget,
                   SRSSampler, adaptive_greedy_partition)
from repro.processes import CompoundPoissonProcess


def main() -> None:
    product = CompoundPoissonProcess(initial_surplus=15.0,
                                     premium_rate=4.5, jump_rate=0.8,
                                     jump_low=5.0, jump_high=10.0)
    print(f"Surplus drift: {product.mean_drift():+.2f} per period "
          f"(upward excursions are rare events)\n")

    query = DurabilityQuery.threshold(
        product, CompoundPoissonProcess.surplus, beta=88.0, horizon=500,
        name="windfall-88-within-500")
    target = RelativeErrorTarget(target=0.10)

    print("Searching for a level plan (Algorithm 1)...")
    search = adaptive_greedy_partition(query, ratio=3, trial_steps=20_000,
                                       seed=7)
    print(f"  plan: {search.partition}")
    print(f"  search cost: {search.search_steps} steps, pooled estimate "
          f"{search.pooled_estimate:.5f}\n")

    print("g-MLSS to a 10% relative-error guarantee...")
    estimate = GMLSSSampler(search.partition, ratio=3).run(
        query, quality=target, max_steps=5_000_000, seed=8)
    lo, hi = estimate.ci()
    print(f"  P(windfall) = {estimate.probability:.5f} "
          f"(95% CI [{max(lo, 0):.5f}, {hi:.5f}])")
    print(f"  cost: {estimate.steps} steps in "
          f"{estimate.elapsed_seconds:.1f}s "
          f"(bootstrap {estimate.details['bootstrap_seconds']:.1f}s)\n")

    print("SRS with the same guarantee (capped at 5M steps)...")
    srs = SRSSampler().run(query, quality=target, max_steps=5_000_000,
                           seed=9)
    reached = srs.relative_error() <= 0.10 + 1e-9
    print(f"  P(windfall) = {srs.probability:.5f}, RE "
          f"{srs.relative_error():.2f} "
          f"({'target met' if reached else 'budget exhausted first'}) "
          f"after {srs.steps} steps in {srs.elapsed_seconds:.1f}s")
    print(f"\nMLSS used {srs.steps / max(estimate.steps, 1):.1f}x fewer "
          f"steps than SRS spent.")


if __name__ == "__main__":
    main()
