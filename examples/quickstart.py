"""Quickstart: answer a durability prediction query three ways.

A lazy random walk models some noisy metric; the query asks: *what is
the probability the metric reaches 12 within 60 steps?*  We answer with
the SRS baseline, with g-MLSS on a hand-picked level plan, and with the
fully automatic engine (greedy plan search + g-MLSS) — and compare all
three against the exact answer, which this toy model happens to admit.

Run:  python examples/quickstart.py
"""

from repro import (DurabilityQuery, GMLSSSampler, LevelPartition,
                   SRSSampler, answer_durability_query)
from repro.core import random_walk_hitting_probability
from repro.processes import RandomWalkProcess


def main() -> None:
    process = RandomWalkProcess(p_up=0.35, p_down=0.45)
    threshold, horizon = 12, 60
    query = DurabilityQuery.threshold(
        process, RandomWalkProcess.position, beta=threshold,
        horizon=horizon, name="walk-hits-12")

    exact = random_walk_hitting_probability(
        process.p_up, threshold, horizon, p_down=process.p_down)
    print(f"Exact answer (DP oracle): {exact:.6f}\n")

    budget = 400_000  # simulation-step budget shared by all methods

    srs = SRSSampler().run(query, max_steps=budget, seed=1)
    print("1. SRS baseline")
    print("  ", srs.summary(), "\n")

    partition = LevelPartition([4 / 12, 8 / 12])
    mlss = GMLSSSampler(partition, ratio=3).run(query, max_steps=budget,
                                                seed=2)
    print("2. g-MLSS with a manual 3-level plan", partition)
    print("  ", mlss.summary(), "\n")

    auto = answer_durability_query(query, method="auto", max_steps=budget,
                                   seed=3, trial_steps=15_000)
    plan = auto.details["plan_search"]["partition"]
    print(f"3. Automatic (greedy search found {plan})")
    print("  ", auto.summary(), "\n")

    print(f"At the same budget, MLSS cut the standard error from "
          f"{srs.std_error:.2e} (SRS) to {mlss.std_error:.2e} — "
          f"a {srs.variance / mlss.variance:.1f}x variance reduction.")


if __name__ == "__main__":
    main()
