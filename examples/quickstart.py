"""Quickstart: answer a durability prediction query with the engine.

A lazy random walk models some noisy metric; the query asks: *what is
the probability the metric reaches 12 within 60 steps?*  We hold one
:class:`repro.DurabilityEngine` with a default execution policy and
answer the query three ways — the SRS baseline, g-MLSS on a hand-picked
level plan, and the fully automatic pipeline (greedy plan search +
g-MLSS) — then ask again to show the plan cache kicking in, and compare
everything against the exact answer this toy model happens to admit.

Run:  python examples/quickstart.py
"""

from repro import (DurabilityEngine, DurabilityQuery, ExecutionPolicy,
                   LevelPartition)
from repro.core import random_walk_hitting_probability
from repro.processes import RandomWalkProcess


def main() -> None:
    process = RandomWalkProcess(p_up=0.35, p_down=0.45)
    threshold, horizon = 12, 60
    query = DurabilityQuery.threshold(
        process, RandomWalkProcess.position, beta=threshold,
        horizon=horizon, name="walk-hits-12")

    exact = random_walk_hitting_probability(
        process.p_up, threshold, horizon, p_down=process.p_down)
    print(f"Exact answer (DP oracle): {exact:.6f}\n")

    # One policy ("how to run") shared by every call; per-call keyword
    # overrides tweak it without rebuilding anything.
    budget = 400_000  # simulation-step budget shared by all methods
    engine = DurabilityEngine(
        ExecutionPolicy(max_steps=budget, trial_steps=15_000))

    srs = engine.answer(query, method="srs", seed=1)
    print("1. SRS baseline")
    print("  ", srs.summary(), "\n")

    partition = LevelPartition([4 / 12, 8 / 12])
    mlss = engine.answer(query, method="gmlss", partition=partition, seed=2)
    print("2. g-MLSS with a manual 3-level plan", partition)
    print("  ", mlss.summary(), "\n")

    auto = engine.answer(query, seed=3)  # method="auto" is the default
    plan = auto.details["plan_search"]["partition"]
    print(f"3. Automatic (greedy search found {plan})")
    print("  ", auto.summary(), "\n")

    again = engine.answer(query, seed=4)
    search = again.details["plan_search"]
    print(f"4. Asked again: plan cache {again.details['plan_cache']} "
          f"(search steps {search['search_steps']}, "
          f"plan {search['partition']})")
    print("  ", again.summary(), "\n")

    print(f"At the same budget, MLSS cut the standard error from "
          f"{srs.std_error:.2e} (SRS) to {mlss.std_error:.2e} — "
          f"a {srs.variance / mlss.variance:.1f}x variance reduction; "
          f"the repeat answer skipped the plan search entirely "
          f"(cache stats: {engine.cache_stats()}).")


if __name__ == "__main__":
    main()
