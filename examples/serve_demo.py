"""Serve demo: durability prediction as a service, end to end.

Boots the asyncio serving tier in a background thread
(:class:`repro.serve.ServerThread`), then drives it over real HTTP with
the bundled :class:`repro.serve.ServeClient`:

1. a point query (``POST /answer``) — and the same query again, byte
   identical, because answers are pure functions of query + policy +
   seed;
2. a pinned session (``POST /session``) whose derived seed makes
   repeated calls reproducible without choosing a seed by hand;
3. a fused batch (``POST /answer_batch``) over a small fleet;
4. a streamed durability curve (``POST /curve``) consumed
   event-by-event as chunks arrive;
5. the observability surface (``GET /metrics`` and ``GET /stats``).

Everything is stdlib + NumPy; no HTTP dependency is involved on either
side of the socket.

Run:  python examples/serve_demo.py
"""

import asyncio

from repro.engine import ExecutionPolicy
from repro.serve import ServeClient, ServeConfig, ServerThread

WALK = {"process": {"family": "random_walk",
                    "params": {"p_up": 0.55, "p_down": 0.4}},
        "beta": 8.0, "horizon": 100}

FLEET = [{"process": {"family": "gaussian_walk",
                      "params": {"drift": 0.02 * k, "sigma": 1.0}},
          "beta": 6.0, "horizon": 120, "name": f"member-{k}"}
         for k in range(5)]


async def demo(port: int) -> None:
    async with ServeClient("127.0.0.1", port) as client:
        print(f"server up: {await client.healthz()}\n")

        first = await client.answer(WALK)
        again = await client.answer(WALK)
        result = first.body["result"]
        print("1. POST /answer")
        print(f"   P(walk reaches 8 within 100) = "
              f"{result['probability']:.4f} "
              f"({result['n_roots']} roots, {result['method']}, "
              f"{first.elapsed_ms:.1f}ms)")
        print(f"   repeat is byte-identical: {first.raw == again.raw}\n")

        session = await client.open_session(
            policy={"method": "srs", "max_roots": 150})
        sid = session["session"]
        one = await client.answer(WALK, session=sid)
        two = await client.answer(WALK, session=sid)
        print("2. POST /session")
        print(f"   session {sid[:8]}... pinned seed "
              f"{session['policy']['seed']}; repeated answers "
              f"byte-identical: {one.raw == two.raw}")
        await client.close_session(sid)
        print()

        batch = await client.answer_batch(FLEET)
        print("3. POST /answer_batch (fused fleet)")
        for doc, member in zip(FLEET, batch.body["results"]):
            print(f"   {doc['name']}: {member['probability']:.4f}")
        print(f"   admission cost class: {batch.body['cost_class']}\n")

        print("4. POST /curve (streamed, one event per chunk)")
        async for event in client.curve_stream(WALK, [4.0, 8.0, 12.0]):
            if event["event"] == "point":
                print(f"   beta={event['threshold']:>5.1f}  "
                      f"P={event['estimate']['probability']:.4f}")
            elif event["event"] == "end":
                print(f"   (one shared pass: {event['n_roots']} roots, "
                      f"{event['steps']} steps)\n")

        metrics = await client.metrics()
        stats = await client.stats()
        print("5. GET /metrics and /stats")
        print(f"   requests_total: "
              f"{metrics['counters']['requests_total']}")
        total = metrics["latency_seconds"].get("total", {})
        print(f"   latency p50/p95: {total.get('p50', 0) * 1000:.1f}ms "
              f"/ {total.get('p95', 0) * 1000:.1f}ms")
        print(f"   admission: {stats['admission']['in_flight_units']} "
              f"units in flight, "
              f"{stats['admission']['queued']} queued")


def main() -> None:
    policy = ExecutionPolicy(method="srs", max_roots=400, seed=7)
    config = ServeConfig(watchdog_interval_seconds=0.25)
    with ServerThread(policy=policy, config=config) as handle:
        asyncio.run(demo(handle.port))
    print("server drained and stopped cleanly.")


if __name__ == "__main__":
    main()
