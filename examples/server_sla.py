"""Server-cluster SLA risk with the tandem queue model.

The paper's reliability example: *"what is the chance for our proposed
server cluster to fail the required service-level agreement before its
term ends?"*  Requests pass through an ingress stage (Queue 1) into a
worker stage (Queue 2); the SLA is breached if the worker backlog ever
reaches 48 requests during a 500-minute window.

The example compares the s-MLSS and g-MLSS answers at several backlog
thresholds, runs everything inside the embedded DBMS pipeline, and
materialises sample paths so the "possible worlds" can be inspected
with SQL — the paper's Section 6.4 workflow.

Run:  python examples/server_sla.py
"""

from repro import RelativeErrorTarget
from repro.db import DurabilityDB, hitting_fraction, value_quantiles
from repro.workloads import workload


def main() -> None:
    with DurabilityDB() as db:
        model_id = db.register_model(
            "cluster", "queue",
            {"arrival_rate": 0.5, "mean_service1": 2.0,
             "mean_service2": 2.0})
        print("Registered the cluster model inside the DBMS.\n")

        print(f"{'backlog':>8s} {'P(SLA breach)':>14s} "
              f"{'RE':>6s} {'steps':>10s}")
        run_id = None
        for threshold in (36, 48, 57):
            spec = workload("queue-tiny")  # reuse its balanced plan shape
            query_id = db.register_query(f"sla-{threshold}", model_id,
                                         horizon=500, threshold=threshold)
            plan = spec.survival_curve().balanced_partition(
                threshold, num_levels=5)
            plan_id = db.register_plan(query_id, plan.boundaries, ratio=3,
                                       source="balanced")
            estimate = db.answer_query(
                query_id, method="gmlss", plan_id=plan_id,
                quality=RelativeErrorTarget(target=0.15),
                max_steps=2_000_000, seed=threshold,
                materialize=20 if threshold == 48 else 0)
            print(f"{threshold:>8d} {estimate.probability:>14.5f} "
                  f"{estimate.relative_error():>6.2f} "
                  f"{estimate.steps:>10d}")
            if threshold == 48:
                run_id = estimate.details["run_id"]

        print("\nInspecting the materialised possible worlds (SQL):")
        q10, q50, q90 = value_quantiles(db.connection, run_id, t=500,
                                        quantiles=(0.1, 0.5, 0.9))
        print(f"  backlog at t=500: 10/50/90% quantiles = "
              f"{q10:.0f}/{q50:.0f}/{q90:.0f}")
        for level in (10, 20, 30):
            frac = hitting_fraction(db.connection, run_id, level)
            print(f"  fraction of worlds ever above {level:>2d}: {frac:.2f}")
        print("\n(Materialised paths live in the sample_paths table for "
              "any further analysis.)")


if __name__ == "__main__":
    main()
