"""Server-fleet SLA screening with the engine's batch API.

The paper's reliability example: *"what is the chance for our proposed
server cluster to fail the required service-level agreement before its
term ends?"*  Requests pass through an ingress stage (Queue 1) into a
worker stage (Queue 2); the SLA is breached if the worker backlog ever
reaches a threshold during a 500-minute window.

A capacity planner never asks this once: they screen *several candidate
configurations* against *several backlog thresholds*.  That is exactly
the shape :meth:`repro.DurabilityEngine.answer_batch` is built for —
per configuration, the three threshold queries form a cohort answered
by **one** shared simulation pass (running path maxima over the
vectorized backend) instead of one run each, and the execution policy
that drives the whole screen is a single serializable object.

Run:  python examples/server_sla.py
"""

import json

from repro import DurabilityEngine, DurabilityQuery, ExecutionPolicy
from repro.processes import TandemQueueProcess

#: Candidate worker provisioning: mean service time of the worker stage
#: (minutes per request).  2.0 is critical load; lower is more capacity.
CONFIGS = {"baseline (2.0 min)": 2.0,
           "faster workers (1.9 min)": 1.9,
           "overloaded (2.1 min)": 2.1}

#: SLA backlog thresholds to screen against.
THRESHOLDS = (36, 48, 57)

HORIZON = 500  # minutes in the SLA term


def main() -> None:
    policy = ExecutionPolicy(method="srs", max_roots=3_000, seed=7)
    engine = DurabilityEngine(policy)
    print("Execution policy (serializable, reusable across the screen):")
    print(" ", json.dumps(policy.to_dict()), "\n")

    queries = []
    labels = []
    for name, mean_service2 in CONFIGS.items():
        cluster = TandemQueueProcess(arrival_rate=0.5, mean_service1=2.0,
                                     mean_service2=mean_service2)
        for threshold in THRESHOLDS:
            queries.append(DurabilityQuery.threshold(
                cluster, TandemQueueProcess.queue2_length,
                beta=threshold, horizon=HORIZON,
                name=f"{name} @ backlog {threshold}"))
            labels.append((name, threshold))

    estimates = engine.answer_batch(queries)

    print(f"{'configuration':<26s} {'backlog':>8s} {'P(SLA breach)':>14s} "
          f"{'95% CI half':>12s} {'cohort':>7s}")
    for (name, threshold), estimate in zip(labels, estimates):
        print(f"{name:<26s} {threshold:>8d} "
              f"{estimate.probability:>14.5f} "
              f"{estimate.ci_half_width():>12.5f} "
              f"{estimate.details.get('cohort_size', 1):>7d}")

    # Cohort members report the *shared* cost of their single pass, so
    # one representative per configuration counts each pass once.
    total_steps = sum(estimate.steps
                      for (_, threshold), estimate in zip(labels, estimates)
                      if threshold == THRESHOLDS[0])
    print(f"\n{len(queries)} queries answered with {len(CONFIGS)} "
          f"simulation passes ({total_steps:,} steps total): each "
          f"configuration's thresholds share one pass through the "
          f"vectorized backend.")

    worst = max(zip(labels, estimates), key=lambda it: it[1].probability)
    safest = min(zip(labels, estimates), key=lambda it: it[1].probability)
    print(f"Highest risk: {worst[0][0]} at backlog {worst[0][1]} "
          f"(P = {worst[1].probability:.3f}); safest: {safest[0][0]} at "
          f"backlog {safest[0][1]} (P = {safest[1].probability:.4f}).")


if __name__ == "__main__":
    main()
