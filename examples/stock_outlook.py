"""Durability queries over a black-box neural sequence model.

The paper's headline generality claim: MLSS needs nothing from the
model beyond step-by-step simulation, so it works unchanged on an
LSTM-MDN stock model.  This example trains a small model on the
synthetic "Google 2015-2020" daily series (a GBM stand-in; see
DESIGN.md), then asks: *what is the probability the stock reaches a
target price within the next 120 trading days?*

Training a fresh model takes a couple of minutes at the default size;
this example uses a compact configuration so it finishes quickly.

Run:  python examples/stock_outlook.py
"""

import time

from repro import (DurabilityQuery, GMLSSSampler, SRSSampler,
                   balanced_growth_partition)
from repro.processes.gbm import synthetic_stock_series
from repro.processes.rnn import StockRNNProcess, build_stock_process


def main() -> None:
    print("Training the LSTM-MDN stock model (compact config)...")
    started = time.perf_counter()
    prices = synthetic_stock_series()
    model, result = build_stock_process(
        prices, hidden_size=16, n_layers=2, n_mixtures=5, seq_len=30,
        epochs=4, context_len=30, seed=0)
    print(f"  trained in {time.perf_counter() - started:.0f}s, "
          f"final NLL {result.final_loss:.3f}")
    print(f"  last close: ${model.start_price:.0f}\n")

    horizon = 120
    target_price = round(model.start_price * 1.55)
    query = DurabilityQuery.threshold(
        model, StockRNNProcess.price, beta=target_price, horizon=horizon,
        name=f"hits-{target_price}")
    print(f"Query: P(price reaches ${target_price} within {horizon} "
          f"trading days)?\n")

    budget = 120_000
    print("Tuning a balanced 4-level plan from a pilot...")
    partition = balanced_growth_partition(query, num_levels=4,
                                          pilot_paths=250, seed=1)
    print(f"  plan: {partition}\n")

    mlss = GMLSSSampler(partition, ratio=3).run(query, max_steps=budget,
                                                seed=2)
    srs = SRSSampler().run(query, max_steps=budget, seed=3)

    print(f"{'method':8s} {'estimate':>10s} {'hits':>6s} {'RE':>7s}")
    for estimate in (srs, mlss):
        print(f"{estimate.method:8s} {estimate.probability:>10.5f} "
              f"{estimate.hits:>6d} {estimate.relative_error():>7.2f}")
    print(f"\nSame budget ({budget} model invocations); MLSS collected "
          f"{mlss.hits / max(srs.hits, 1):.0f}x the target hits "
          f"({mlss.hits} vs {srs.hits}).")


if __name__ == "__main__":
    main()
