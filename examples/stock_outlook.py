"""Durability curves and top-k ranking over stock models.

Two of the paper's headline finance scenarios, driven end to end
through the :class:`repro.DurabilityEngine` service API:

1. **Outlook curve over a black-box neural model.**  MLSS needs nothing
   from the model beyond step-by-step simulation, so it works unchanged
   on an LSTM-MDN stock model.  We train a compact model on the
   synthetic "Google 2015-2020" daily series and chart
   ``Pr[price reaches target within 120 trading days]`` over a whole
   grid of targets — from **one** simulation pass
   (:meth:`DurabilityEngine.durability_curve`), not one run per target.

2. **Top-k durable stocks.**  A screening desk ranks many tickers by
   the probability of hitting a common return target.  Each ticker is a
   GBM model with its own drift/volatility; ``answer_batch`` answers
   the whole screen and we rank by estimated durability.

Training the model takes a minute or two at the default compact size.

Run:  python examples/stock_outlook.py
"""

import time

from repro import DurabilityEngine, DurabilityQuery, ExecutionPolicy
from repro.processes.gbm import GBMProcess, synthetic_stock_series
from repro.processes.rnn import StockRNNProcess, build_stock_process


def outlook_curve(engine: DurabilityEngine) -> None:
    print("Training the LSTM-MDN stock model (compact config)...")
    started = time.perf_counter()
    prices = synthetic_stock_series()
    model, result = build_stock_process(
        prices, hidden_size=16, n_layers=2, n_mixtures=5, seq_len=30,
        epochs=4, context_len=30, seed=0)
    print(f"  trained in {time.perf_counter() - started:.0f}s, "
          f"final NLL {result.final_loss:.3f}")
    print(f"  last close: ${model.start_price:.0f}\n")

    horizon = 120
    targets = [round(model.start_price * factor)
               for factor in (1.10, 1.25, 1.40, 1.55)]
    query = DurabilityQuery.threshold(
        model, StockRNNProcess.price, beta=targets[-1], horizon=horizon,
        name="stock-outlook")

    print(f"Outlook curve: P(price reaches target within {horizon} "
          f"trading days), all targets from ONE simulation pass:")
    curve = engine.durability_curve(query, targets, max_roots=400, seed=2)
    for target, estimate in curve:
        lo, hi = estimate.ci()
        print(f"  ${target:>4.0f}: {estimate.probability:>7.4f} "
              f"(95% CI [{max(lo, 0.0):.4f}, {hi:.4f}])")
    print(f"  shared cost: {curve.steps:,} model invocations for "
          f"{len(curve)} targets ({curve.elapsed_seconds:.1f}s)\n")


def top_k_stocks(engine: DurabilityEngine, k: int = 3) -> None:
    # A small synthetic "universe": per-ticker daily drift/volatility.
    universe = {
        "steady-climber": (0.0009, 0.010),
        "high-flyer": (0.0014, 0.028),
        "choppy-sideways": (0.0001, 0.022),
        "slow-decliner": (-0.0004, 0.014),
        "volatile-bet": (0.0006, 0.035),
        "blue-chip": (0.0005, 0.009),
    }
    horizon = 120
    target_return = 1.20  # +20% within the horizon

    queries = [
        DurabilityQuery.threshold(
            GBMProcess(start_price=100.0, mu=mu, sigma=sigma),
            GBMProcess.price, beta=100.0 * target_return, horizon=horizon,
            name=ticker)
        for ticker, (mu, sigma) in universe.items()
    ]
    print(f"Top-{k} screen: P(+{target_return - 1:.0%} within {horizon} "
          f"trading days) across {len(universe)} tickers "
          f"(one answer_batch call):")
    estimates = engine.answer_batch(queries, max_roots=20_000, seed=3)
    ranked = sorted(zip(universe, estimates),
                    key=lambda pair: pair[1].probability, reverse=True)
    for rank, (ticker, estimate) in enumerate(ranked, start=1):
        marker = "  <- top-k" if rank <= k else ""
        print(f"  {rank}. {ticker:<16s} {estimate.probability:>7.4f} "
              f"+/- {estimate.ci_half_width():.4f}{marker}")


def main() -> None:
    engine = DurabilityEngine(ExecutionPolicy(method="srs"))
    outlook_curve(engine)
    top_k_stocks(engine)


if __name__ == "__main__":
    main()
