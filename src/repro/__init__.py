"""repro — Multi-Level Splitting Sampling for durability prediction queries.

A from-scratch reproduction of Gao, Xu, Agarwal and Yang, "Efficiently
Answering Durability Prediction Queries" (SIGMOD 2021): the MLSS
samplers (simple and general), level-plan optimization, the baseline
samplers (SRS, importance sampling), the paper's experimental substrates
(tandem queues, compound Poisson processes, an LSTM-MDN sequence model),
and a DBMS-embedded query pipeline.

Quick start::

    from repro import DurabilityQuery, answer_durability_query
    from repro.processes import TandemQueueProcess

    queue = TandemQueueProcess()
    query = DurabilityQuery.threshold(
        queue, TandemQueueProcess.queue2_length, beta=20, horizon=500)
    estimate = answer_durability_query(query, method="auto",
                                       max_steps=500_000, seed=42)
    print(estimate.summary())
"""

from .core import (ConfidenceIntervalTarget, DurabilityEstimate,
                   DurabilityQuery, GMLSSSampler, ISSampler, LevelPartition,
                   NeverTarget, RelativeErrorTarget, SMLSSSampler,
                   SRSSampler, ThresholdValueFunction,
                   adaptive_greedy_partition, answer_durability_query,
                   balanced_growth_partition, cross_entropy_tilt,
                   run_parallel_mlss)

__version__ = "1.0.0"

__all__ = [
    "ConfidenceIntervalTarget", "DurabilityEstimate", "DurabilityQuery",
    "GMLSSSampler", "ISSampler", "LevelPartition", "NeverTarget",
    "RelativeErrorTarget", "SMLSSSampler", "SRSSampler",
    "ThresholdValueFunction", "adaptive_greedy_partition",
    "answer_durability_query", "balanced_growth_partition",
    "cross_entropy_tilt", "run_parallel_mlss", "__version__",
]
