"""repro — Multi-Level Splitting Sampling for durability prediction queries.

A from-scratch reproduction of Gao, Xu, Agarwal and Yang, "Efficiently
Answering Durability Prediction Queries" (SIGMOD 2021): the MLSS
samplers (simple and general), level-plan optimization, the baseline
samplers (SRS, importance sampling), the paper's experimental substrates
(tandem queues, compound Poisson processes, an LSTM-MDN sequence model),
and a DBMS-embedded query pipeline.

Quick start::

    from repro import DurabilityQuery, answer_durability_query
    from repro.processes import TandemQueueProcess

    queue = TandemQueueProcess()
    query = DurabilityQuery.threshold(
        queue, TandemQueueProcess.queue2_length, beta=20, horizon=500)
    estimate = answer_durability_query(query, method="auto",
                                       max_steps=500_000, seed=42)
    print(estimate.summary())

The engine service
------------------

``answer_durability_query`` re-runs plan search and simulation from
scratch on every call.  Multi-query workloads — ranking durable
objects, screening fleets against SLA thresholds, charting durability
against a threshold grid — should hold a stateful
:class:`repro.engine.DurabilityEngine` instead::

    from repro import DurabilityEngine, ExecutionPolicy

    engine = DurabilityEngine(ExecutionPolicy(max_steps=500_000, seed=42))
    estimate = engine.answer(query)                 # plans are cached
    curve = engine.durability_curve(query, thresholds=range(10, 26))
    answers = engine.answer_batch(queries)          # shared cohorts

"What to ask" (:class:`DurabilityQuery`) is separated from "how to run
it" (:class:`repro.engine.ExecutionPolicy` — method, backend, ratio,
budgets, quality target, seed policy; serializable via
``to_dict``/``from_dict``).  The engine memoizes level plans in a
:class:`repro.engine.PlanCache` keyed by (process family, horizon,
initial value, threshold bucket), so repeated query shapes skip the
greedy plan search.  ``durability_curve`` answers an entire threshold
grid from **one** simulation pass — running path maxima under SRS,
per-level root records under MLSS — instead of one run per threshold,
and ``answer_batch`` groups compatible queries into cohorts that share
a pass the same way (see ``benchmarks/bench_engine_api.py`` for the
measured speedups).

Simulation backends
-------------------

``answer_durability_query`` (and each sampler) takes a ``backend``
option selecting how paths are simulated:

* ``"auto"`` (engine default) — the NumPy batch backend when the
  process implements the batched contract, the scalar loop otherwise;
* ``"vectorized"`` — force batching (scalar-only processes are wrapped
  in a ``ScalarFallback``);
* ``"scalar"`` — the original one-path-at-a-time loop.

Both backends draw the same distributions — batching only reorders
independent draws — so estimates are exchangeable; the vectorized
backend is ~5-12x more steps/second on the bundled workloads (see
``benchmarks/bench_vectorized_backend.py``).

A process opts into batching by implementing
:class:`repro.processes.base.VectorizedProcess`: ``initial_states(n)``
returns a NumPy state array (one row per path), ``step_batch(states,
t, rng)`` advances every row with a ``numpy.random.Generator``, and
``replicate(states, indices, counts)`` clones entrance states for the
splitting samplers.  The bundled random-walk, Gaussian-walk, GBM, AR,
Markov-chain and tandem-queue processes are vectorized natively;
``register_batch_z`` vectorizes the state evaluations value functions
are built from.
"""

from .core import (ConfidenceIntervalTarget, DurabilityCurve,
                   DurabilityEstimate,
                   DurabilityQuery, GMLSSSampler, ISSampler, LevelPartition,
                   NeverTarget, RelativeErrorTarget, SMLSSSampler,
                   SRSSampler, ThresholdValueFunction,
                   adaptive_greedy_partition, answer_durability_query,
                   balanced_growth_partition, cross_entropy_tilt,
                   run_parallel_mlss)
from .engine import DurabilityEngine, ExecutionPolicy, PlanCache

__version__ = "1.2.0"

__all__ = [
    "ConfidenceIntervalTarget", "DurabilityCurve", "DurabilityEngine",
    "DurabilityEstimate", "DurabilityQuery",
    "ExecutionPolicy",
    "GMLSSSampler", "ISSampler", "LevelPartition", "NeverTarget",
    "PlanCache",
    "RelativeErrorTarget", "SMLSSSampler", "SRSSampler",
    "ThresholdValueFunction", "adaptive_greedy_partition",
    "answer_durability_query", "balanced_growth_partition",
    "cross_entropy_tilt", "run_parallel_mlss", "__version__",
]
