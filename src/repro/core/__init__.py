"""Core MLSS library: queries, samplers, estimators, plan optimization."""

from .analytic import (hitting_probability, hitting_time_distribution,
                       random_walk_hitting_probability, srs_relative_error,
                       srs_required_paths)
from .balanced import balanced_growth_partition, pilot_max_values
from .bootstrap import BootstrapResult, bootstrap_variance
from .engine import answer_durability_query
from .estimates import DurabilityEstimate, TracePoint
from .forest import (ForestRunner, LevelPlanError, VectorizedForestRunner,
                     validate_plan)
from .gmlss import (GMLSSSampler, gmlss_estimate_from_totals,
                    gmlss_pi_hats, gmlss_point_estimate)
from .greedy import GreedyResult, adaptive_greedy_partition
from .importance import ISSampler, cross_entropy_tilt
from .levels import LevelPartition, normalize_ratios, uniform_partition
from .optimizer import PlanTrial, evaluate_partition, pool_trials
from .parallel import run_parallel_mlss
from .quality import (ConfidenceIntervalTarget, NeverTarget, QualityTarget,
                      RelativeErrorTarget)
from .records import ForestAggregate, RootRecord
from .smlss import (SMLSSSampler, make_forest_runner, smlss_point_estimate,
                    smlss_variance)
from .srs import SRSSampler, srs_variance
from .value_functions import (TARGET_VALUE, DurabilityQuery,
                              ThresholdValueFunction, batch_values)
from .variance import (balanced_advancement_probability,
                       balanced_growth_variance, optimal_num_levels,
                       srs_variance_formula, suggest_ratios,
                       two_level_skip_variance, variance_reduction_factor)

__all__ = [
    "BootstrapResult", "ConfidenceIntervalTarget", "DurabilityEstimate",
    "DurabilityQuery", "ForestAggregate", "ForestRunner", "GMLSSSampler",
    "GreedyResult", "ISSampler", "LevelPartition", "LevelPlanError",
    "NeverTarget", "PlanTrial", "QualityTarget", "RelativeErrorTarget",
    "RootRecord", "SMLSSSampler", "SRSSampler", "TARGET_VALUE",
    "ThresholdValueFunction", "TracePoint", "VectorizedForestRunner",
    "adaptive_greedy_partition", "answer_durability_query",
    "balanced_advancement_probability", "balanced_growth_partition",
    "balanced_growth_variance", "batch_values",
    "bootstrap_variance", "cross_entropy_tilt", "evaluate_partition",
    "gmlss_estimate_from_totals", "gmlss_pi_hats", "gmlss_point_estimate",
    "hitting_probability", "hitting_time_distribution",
    "make_forest_runner", "normalize_ratios",
    "optimal_num_levels", "pilot_max_values", "pool_trials",
    "validate_plan",
    "random_walk_hitting_probability", "run_parallel_mlss",
    "smlss_point_estimate", "smlss_variance", "srs_relative_error",
    "srs_required_paths", "srs_variance", "srs_variance_formula",
    "suggest_ratios", "two_level_skip_variance", "uniform_partition",
    "variance_reduction_factor",
]
