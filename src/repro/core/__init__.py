"""Core MLSS library: queries, samplers, estimators, plan optimization."""

from .analytic import (hitting_probability, hitting_probability_grid,
                       hitting_time_distribution,
                       random_walk_hitting_curve,
                       random_walk_hitting_probability, srs_relative_error,
                       srs_required_paths)
from .balanced import balanced_growth_partition, pilot_max_values
from .bootstrap import (BootstrapResult, bootstrap_curve_variances,
                        bootstrap_variance)
from .engine import answer_durability_query, resolve_partition
from .estimates import DurabilityCurve, DurabilityEstimate, TracePoint
from .fleet import (FleetThresholdValue, screen_fleet,
                    screen_fleet_curves, screen_fleet_mlss)
from .forest import (ForestRunner, LevelPlanError, VectorizedForestRunner,
                     validate_plan)
from .gmlss import (GMLSSSampler, gmlss_estimate_from_totals,
                    gmlss_estimates_from_total_rows, gmlss_pi_hats,
                    gmlss_point_estimate, gmlss_prefix_estimates,
                    gmlss_prefix_estimates_from_total_rows)
from .greedy import GreedyResult, adaptive_greedy_partition
from .importance import ISSampler, cross_entropy_tilt
from .levels import LevelPartition, normalize_ratios, uniform_partition
from .optimizer import PlanTrial, evaluate_partition, pool_trials
from .parallel import run_parallel_mlss
from .pool import PooledForestRunner, WorkerPool, derive_task_seed
from .quality import (ConfidenceIntervalTarget, NeverTarget, QualityTarget,
                      RelativeErrorTarget)
from .records import ForestAggregate, RootRecord
from .smlss import (SMLSSSampler, make_forest_runner, smlss_point_estimate,
                    smlss_prefix_estimates, smlss_variance)
from .srs import (SRSSampler, prepare_curve_grid, srs_variance,
                  validate_curve_levels)
from .value_functions import (TARGET_VALUE, DurabilityQuery,
                              ThresholdValueFunction, batch_values,
                              threshold_grid)
from .variance import (balanced_advancement_probability,
                       balanced_growth_variance, optimal_num_levels,
                       srs_variance_formula, suggest_ratios,
                       two_level_skip_variance, variance_reduction_factor)

__all__ = [
    "BootstrapResult", "ConfidenceIntervalTarget", "DurabilityCurve",
    "DurabilityEstimate",
    "DurabilityQuery", "FleetThresholdValue", "ForestAggregate",
    "ForestRunner", "GMLSSSampler",
    "GreedyResult", "ISSampler", "LevelPartition", "LevelPlanError",
    "NeverTarget", "PlanTrial", "PooledForestRunner", "QualityTarget",
    "RelativeErrorTarget",
    "RootRecord", "SMLSSSampler", "SRSSampler", "TARGET_VALUE",
    "WorkerPool",
    "ThresholdValueFunction", "TracePoint", "VectorizedForestRunner",
    "adaptive_greedy_partition", "answer_durability_query",
    "balanced_advancement_probability", "balanced_growth_partition",
    "balanced_growth_variance", "batch_values",
    "bootstrap_curve_variances",
    "bootstrap_variance", "cross_entropy_tilt", "derive_task_seed",
    "evaluate_partition",
    "gmlss_estimate_from_totals", "gmlss_estimates_from_total_rows",
    "gmlss_pi_hats", "gmlss_point_estimate",
    "gmlss_prefix_estimates", "gmlss_prefix_estimates_from_total_rows",
    "hitting_probability", "hitting_probability_grid",
    "hitting_time_distribution",
    "make_forest_runner", "normalize_ratios",
    "optimal_num_levels", "pilot_max_values", "pool_trials",
    "prepare_curve_grid", "resolve_partition", "validate_plan",
    "random_walk_hitting_curve",
    "random_walk_hitting_probability", "run_parallel_mlss",
    "screen_fleet", "screen_fleet_curves", "screen_fleet_mlss",
    "smlss_point_estimate", "smlss_prefix_estimates", "smlss_variance",
    "srs_relative_error",
    "srs_required_paths", "srs_variance", "srs_variance_formula",
    "suggest_ratios", "threshold_grid", "two_level_skip_variance",
    "uniform_partition", "validate_curve_levels",
    "variance_reduction_factor",
]
