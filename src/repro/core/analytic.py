"""Exact hitting probabilities for simple models (Section 2.2).

The paper notes that analytical solutions exist for simple processes
(random walks, finite Markov chains) but not in general.  We implement
the tractable cases by dynamic programming; they serve two purposes:

* *validation* — every sampler is tested against exact ground truth;
* *workload design* — exact answers let tests pin probabilities without
  expensive reference simulations.

The durability query counts hits at times ``t = 1 .. s`` (the initial
state does not count even if it satisfies the condition).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def hitting_probability(transition_matrix: Sequence[Sequence[float]],
                        start: int, target_states: Sequence[int],
                        horizon: int) -> float:
    """Exact ``Pr[T <= horizon]`` for a finite Markov chain.

    Computed as ``1 - Pr[avoid target for horizon steps]`` by repeated
    multiplication with the transition matrix restricted to non-target
    states (absorbing-chain dynamic programming).
    """
    P = np.asarray(transition_matrix, dtype=np.float64)
    n = P.shape[0]
    if P.shape != (n, n):
        raise ValueError(f"transition matrix must be square, got {P.shape}")
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    if not 0 <= start < n:
        raise ValueError(f"start state {start} out of range [0, {n})")
    target = np.zeros(n, dtype=bool)
    for s in target_states:
        if not 0 <= s < n:
            raise ValueError(f"target state {s} out of range [0, {n})")
        target[s] = True

    # survive[x] = Pr[path starting now at x avoids the target for the
    # remaining steps].  Work backwards from the horizon; occupancy of
    # the *current* state never counts (hits start at t = 1).
    survive = np.ones(n, dtype=np.float64)
    Q = P.copy()
    Q[:, target] = 0.0  # transitions into the target end survival
    for _ in range(horizon):
        survive = Q @ survive
    return float(1.0 - survive[start])


def hitting_time_distribution(transition_matrix, start: int,
                              target_states, horizon: int) -> np.ndarray:
    """``Pr[T <= t]`` for ``t = 0 .. horizon`` (cumulative distribution)."""
    P = np.asarray(transition_matrix, dtype=np.float64)
    n = P.shape[0]
    target = np.zeros(n, dtype=bool)
    for s in target_states:
        target[s] = True
    Q = P.copy()
    Q[:, target] = 0.0
    cdf = np.empty(horizon + 1, dtype=np.float64)
    cdf[0] = 0.0
    # alive[x] = Pr[at x at current time and never hit target so far]
    alive = np.zeros(n, dtype=np.float64)
    alive[start] = 1.0
    for t in range(1, horizon + 1):
        alive = alive @ Q
        cdf[t] = 1.0 - alive.sum()
    return cdf


def random_walk_hitting_probability(p_up: float, threshold: int,
                                    horizon: int, start: int = 0,
                                    p_down: float | None = None) -> float:
    """Exact hitting probability for a lazy random walk.

    The walk starts at ``start``; the query asks whether it reaches
    ``threshold`` within ``horizon`` steps.  Since the walk moves at
    most one unit per step, truncating the state space at
    ``start - horizon`` is exact, and the chain is banded, so the DP is
    linear in ``horizon * (threshold - start + horizon)``.
    """
    if p_down is None:
        p_down = 1.0 - p_up
    if p_up < 0 or p_down < 0 or p_up + p_down > 1.0 + 1e-12:
        raise ValueError(
            f"invalid move probabilities p_up={p_up}, p_down={p_down}"
        )
    if threshold <= start:
        return 1.0 if horizon >= 0 and threshold <= start else 0.0
    floor = start - horizon  # unreachable below this in `horizon` steps
    size = threshold - floor + 1
    p_stay = 1.0 - p_up - p_down

    # survive[i] = Pr[avoid threshold for remaining steps | at floor+i].
    survive = np.ones(size, dtype=np.float64)
    survive[-1] = 0.0  # standing on the threshold means already hit
    new = np.empty_like(survive)
    for _ in range(horizon):
        # Interior update: up moves toward the threshold (absorbing).
        new[1:-1] = (p_up * survive[2:] + p_stay * survive[1:-1]
                     + p_down * survive[:-2])
        new[0] = p_up * survive[1] + (p_stay + p_down) * survive[0]
        new[-1] = 0.0
        survive, new = new, survive
    return float(1.0 - survive[start - floor])


def srs_required_paths(tau: float, relative_error: float) -> float:
    """Paths SRS needs for a given relative error: ``(1-tau)/(tau re^2)``.

    This is the cost blow-up the paper highlights: as ``tau -> 0`` the
    requirement diverges like ``1 / tau``.
    """
    if not 0.0 < tau < 1.0:
        raise ValueError(f"tau must be in (0, 1), got {tau}")
    if relative_error <= 0:
        raise ValueError(
            f"relative_error must be > 0, got {relative_error}"
        )
    return (1.0 - tau) / (tau * relative_error * relative_error)


def srs_relative_error(tau: float, n_paths: int) -> float:
    """Relative error of SRS with ``n_paths`` samples."""
    if not 0.0 < tau < 1.0:
        raise ValueError(f"tau must be in (0, 1), got {tau}")
    if n_paths < 1:
        raise ValueError(f"n_paths must be >= 1, got {n_paths}")
    return math.sqrt((1.0 - tau) / (tau * n_paths))
