"""Exact hitting probabilities for simple models (Section 2.2).

The paper notes that analytical solutions exist for simple processes
(random walks, finite Markov chains) but not in general.  We implement
the tractable cases by dynamic programming; they serve two purposes:

* *validation* — every sampler is tested against exact ground truth;
* *workload design* — exact answers let tests pin probabilities without
  expensive reference simulations.

The durability query counts hits at times ``t = 1 .. s`` (the initial
state does not count even if it satisfies the condition).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def hitting_probability(transition_matrix: Sequence[Sequence[float]],
                        start: int, target_states: Sequence[int],
                        horizon: int) -> float:
    """Exact ``Pr[T <= horizon]`` for a finite Markov chain.

    Computed as ``1 - Pr[avoid target for horizon steps]`` by repeated
    multiplication with the transition matrix restricted to non-target
    states (absorbing-chain dynamic programming).
    """
    P = np.asarray(transition_matrix, dtype=np.float64)
    n = P.shape[0]
    if P.shape != (n, n):
        raise ValueError(f"transition matrix must be square, got {P.shape}")
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    if not 0 <= start < n:
        raise ValueError(f"start state {start} out of range [0, {n})")
    target = np.zeros(n, dtype=bool)
    for s in target_states:
        if not 0 <= s < n:
            raise ValueError(f"target state {s} out of range [0, {n})")
        target[s] = True

    # survive[x] = Pr[path starting now at x avoids the target for the
    # remaining steps].  Work backwards from the horizon; occupancy of
    # the *current* state never counts (hits start at t = 1).
    survive = np.ones(n, dtype=np.float64)
    Q = P.copy()
    Q[:, target] = 0.0  # transitions into the target end survival
    for _ in range(horizon):
        survive = Q @ survive
    return float(1.0 - survive[start])


def hitting_time_distribution(transition_matrix, start: int,
                              target_states, horizon: int) -> np.ndarray:
    """``Pr[T <= t]`` for ``t = 0 .. horizon`` (cumulative distribution)."""
    P = np.asarray(transition_matrix, dtype=np.float64)
    n = P.shape[0]
    target = np.zeros(n, dtype=bool)
    for s in target_states:
        target[s] = True
    Q = P.copy()
    Q[:, target] = 0.0
    cdf = np.empty(horizon + 1, dtype=np.float64)
    cdf[0] = 0.0
    # alive[x] = Pr[at x at current time and never hit target so far]
    alive = np.zeros(n, dtype=np.float64)
    alive[start] = 1.0
    for t in range(1, horizon + 1):
        alive = alive @ Q
        cdf[t] = 1.0 - alive.sum()
    return cdf


def hitting_probability_grid(transition_matrix, start: int,
                             target_state_grids, horizon: int) -> np.ndarray:
    """Exact ``Pr[T <= horizon]`` for many target sets at once.

    The batched oracle for chain durability curves: grid level ``g``
    has its own absorbing target set ``target_state_grids[g]`` (e.g.
    "value >= beta_g"), and the value-grid recurrence advances all
    levels' survival vectors together — one matrix contraction per time
    step over a ``(grid, states)`` array instead of one full DP per
    level.  Returns one probability per grid level.
    """
    P = np.asarray(transition_matrix, dtype=np.float64)
    n = P.shape[0]
    if P.shape != (n, n):
        raise ValueError(f"transition matrix must be square, got {P.shape}")
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    if not 0 <= start < n:
        raise ValueError(f"start state {start} out of range [0, {n})")
    grids = list(target_state_grids)
    targets = np.zeros((len(grids), n), dtype=bool)
    for g, states in enumerate(grids):
        for s in states:
            if not 0 <= s < n:
                raise ValueError(f"target state {s} out of range [0, {n})")
            targets[g, s] = True

    # Q[g] is P with transitions into level g's targets removed; the
    # survival recurrence survive <- Q @ survive runs for every level
    # in one einsum contraction.
    Q = np.where(targets[:, None, :], 0.0, P[None, :, :])
    survive = np.ones((len(grids), n), dtype=np.float64)
    for _ in range(horizon):
        survive = np.einsum("gij,gj->gi", Q, survive)
    return 1.0 - survive[:, start]


def random_walk_hitting_curve(p_up: float, thresholds, horizon: int,
                              start: int = 0,
                              p_down: float | None = None) -> np.ndarray:
    """Exact hitting probabilities for a whole grid of thresholds.

    The batched oracle behind durability *curves*: one dynamic program
    answers ``Pr[reach b within horizon]`` for every threshold ``b`` in
    the grid simultaneously.  The value-grid recurrence runs over a 2-D
    array — grid rows times walk positions — so the only Python loop is
    the unavoidable one over time; per-threshold re-runs (the old
    per-call pattern in acceptance tests and benchmarks) pay the whole
    DP once per grid point instead.

    Thresholds at or below ``start`` are hit immediately (probability
    1), matching the scalar convention.  Returns one probability per
    threshold, in input order.
    """
    if p_down is None:
        p_down = 1.0 - p_up
    if p_up < 0 or p_down < 0 or p_up + p_down > 1.0 + 1e-12:
        raise ValueError(
            f"invalid move probabilities p_up={p_up}, p_down={p_down}"
        )
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    grid = np.asarray([int(b) for b in thresholds], dtype=np.int64)
    if grid.size == 0:
        return np.zeros(0, dtype=np.float64)
    p_stay = 1.0 - p_up - p_down

    floor = start - horizon  # unreachable below this in `horizon` steps
    top = max(int(grid.max()), start + 1)
    size = top - floor + 1
    positions = np.arange(floor, top + 1)
    # absorbed[g, i]: standing at position floor+i already hits grid
    # level g; those cells stay at survival probability 0 throughout.
    absorbed = positions[None, :] >= grid[:, None]

    # survive[g, i] = Pr[avoid threshold g for the remaining steps |
    # currently at floor + i].
    survive = np.ones((grid.size, size), dtype=np.float64)
    survive[absorbed] = 0.0
    new = np.empty_like(survive)
    for _ in range(horizon):
        # Interior update: up moves toward the thresholds (absorbing).
        new[:, 1:-1] = (p_up * survive[:, 2:] + p_stay * survive[:, 1:-1]
                        + p_down * survive[:, :-2])
        new[:, 0] = p_up * survive[:, 1] + (p_stay + p_down) * survive[:, 0]
        new[:, -1] = p_stay * survive[:, -1] + p_down * survive[:, -2]
        new[absorbed] = 0.0
        survive, new = new, survive
    return 1.0 - survive[:, start - floor]


def random_walk_hitting_probability(p_up: float, threshold: int,
                                    horizon: int, start: int = 0,
                                    p_down: float | None = None) -> float:
    """Exact hitting probability for a lazy random walk.

    The walk starts at ``start``; the query asks whether it reaches
    ``threshold`` within ``horizon`` steps.  A single-point grid of
    :func:`random_walk_hitting_curve` — since the walk moves at most
    one unit per step, truncating the state space at
    ``start - horizon`` is exact, and the chain is banded, so the DP is
    linear in ``horizon * (threshold - start + horizon)``.
    """
    return float(random_walk_hitting_curve(
        p_up, [threshold], horizon, start=start, p_down=p_down)[0])


def srs_required_paths(tau: float, relative_error: float) -> float:
    """Paths SRS needs for a given relative error: ``(1-tau)/(tau re^2)``.

    This is the cost blow-up the paper highlights: as ``tau -> 0`` the
    requirement diverges like ``1 / tau``.
    """
    if not 0.0 < tau < 1.0:
        raise ValueError(f"tau must be in (0, 1), got {tau}")
    if relative_error <= 0:
        raise ValueError(
            f"relative_error must be > 0, got {relative_error}"
        )
    return (1.0 - tau) / (tau * relative_error * relative_error)


def srs_relative_error(tau: float, n_paths: int) -> float:
    """Relative error of SRS with ``n_paths`` samples."""
    if not 0.0 < tau < 1.0:
        raise ValueError(f"tau must be in (0, 1), got {tau}")
    if n_paths < 1:
        raise ValueError(f"n_paths must be >= 1, got {n_paths}")
    return math.sqrt((1.0 - tau) / (tau * n_paths))
