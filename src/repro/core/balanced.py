"""Balanced-growth partition tuning (Section 5.1).

The theoretical optimum for fixed-ratio MLSS makes all level
advancement probabilities equal ("balanced growth", Eq. 12).  The paper
obtained such plans by manual tuning; this module automates the recipe
so the benchmarks can build MLSS-BAL plans reproducibly:

1. run a pilot of plain SRS paths and record the *maximum* value-function
   score each path attains (its survival curve is exactly
   ``Pr[max_t f(X_t) >= v]``, the quantity level boundaries quantize);
2. where the empirical curve runs out of resolution (tiny target
   probabilities), extrapolate its upper tail with an exponential fit —
   the customary light-tail assumption behind importance splitting;
3. place boundaries so consecutive survival values form a geometric
   ladder from 1 down to the (estimated) target probability.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Callable, Optional, Sequence

import numpy as np

from ..processes.base import as_vectorized, resolve_backend
from .levels import LevelPartition
from .pool import PlanSearchWork, derive_task_seed
from .value_functions import TARGET_VALUE, DurabilityQuery, batch_values
from .variance import (balanced_boundaries_from_survival,
                       curve_refined_boundaries)

#: Pilot paths per chunk.  The pilot is *always* cut into chunks of
#: this size with chunk-index-derived seeds — sequentially in the
#: parent or sharded over a worker pool — so pooled and parent-only
#: pilots draw identical randomness and build identical plans.
DEFAULT_PILOT_PATHS_PER_TASK = 512


def pilot_max_values(query: DurabilityQuery, n_paths: int = 2000,
                     seed: Optional[int] = None,
                     backend: str = "scalar", pool=None,
                     paths_per_task: Optional[int] = None) -> list:
    """Max value-function score per SRS pilot path (sorted ascending).

    Paths stop early once they hit the target (their max is 1).  The
    pilot runs as fixed-size chunks whose seeds derive from the chunk
    index (:func:`~repro.core.pool.derive_task_seed`); with a
    :class:`~repro.core.pool.WorkerPool` the chunks run concurrently
    via :class:`~repro.core.pool.PlanSearchWork`, and because the
    decomposition never depends on the worker count, pooled pilots
    return exactly what the sequential pilot would.
    """
    if n_paths < 1:
        raise ValueError(f"n_paths must be >= 1, got {n_paths}")
    paths_per_task = paths_per_task or DEFAULT_PILOT_PATHS_PER_TASK
    if paths_per_task < 1:
        raise ValueError(
            f"paths_per_task must be >= 1, got {paths_per_task}")
    chunks = []
    remaining = n_paths
    index = 0
    while remaining > 0:
        count = min(remaining, paths_per_task)
        chunks.append((count, derive_task_seed(seed, index, salt="pilot")))
        index += 1
        remaining -= count
    if pool is not None and len(chunks) > 1:
        handle = pool.register(PlanSearchWork(query=query, backend=backend))
        try:
            results = pool.run_tasks(
                handle, [("pilot", count, chunk_seed)
                         for count, chunk_seed in chunks])
        finally:
            pool.unregister(handle)
    else:
        results = [pilot_chunk_max_values(query, count, seed=chunk_seed,
                                          backend=backend)
                   for count, chunk_seed in chunks]
    maxima = [value for chunk in results for value in chunk]
    maxima.sort()
    return maxima


def pilot_chunk_max_values(query: DurabilityQuery, n_paths: int,
                           seed: Optional[int] = None,
                           backend: str = "scalar") -> list:
    """One pilot chunk's per-path maxima (unsorted; the pooled task
    primitive behind :func:`pilot_max_values`)."""
    if n_paths < 1:
        raise ValueError(f"n_paths must be >= 1, got {n_paths}")
    if resolve_backend(backend, query.process) == "vectorized":
        return _pilot_max_values_vectorized(query, n_paths, seed)
    rng = random.Random(seed)
    process = query.process
    value_fn = query.value_function
    horizon = query.horizon
    maxima = []
    for _ in range(n_paths):
        state = process.initial_state()
        best = value_fn(state, 0)
        t = 0
        while t < horizon:
            t += 1
            state = process.step(state, t, rng)
            value = value_fn(state, t)
            if value > best:
                best = value
                if best >= TARGET_VALUE:
                    break
        maxima.append(min(best, TARGET_VALUE))
    return maxima


def _pilot_max_values_vectorized(query: DurabilityQuery, n_paths: int,
                                 seed: Optional[int]) -> list:
    """Batched pilot chunk: running max score of every live path."""
    rng = np.random.default_rng(seed)
    process = as_vectorized(query.process)
    value_fn = query.value_function
    horizon = query.horizon

    states = process.initial_states(n_paths)
    best = np.minimum(batch_values(value_fn, states, 0), TARGET_VALUE)
    n_hit = int(np.count_nonzero(best >= TARGET_VALUE))
    alive = best < TARGET_VALUE
    states, best = states[alive], best[alive]
    maxima = []
    for t in range(1, horizon + 1):
        if not len(states):
            break
        states = process.step_batch(states, t, rng)
        best = np.maximum(best, batch_values(value_fn, states, t))
        hit = best >= TARGET_VALUE
        count = int(np.count_nonzero(hit))
        if count:
            n_hit += count
            keep = ~hit
            states, best = states[keep], best[keep]
    maxima.extend(best.tolist())
    maxima.extend([TARGET_VALUE] * n_hit)
    return maxima


def empirical_survival(maxima: Sequence[float]) -> Callable[[float], float]:
    """The empirical survival function of sorted pilot maxima."""
    if not maxima:
        raise ValueError("no pilot maxima")
    n = len(maxima)

    def survival(value: float) -> float:
        if value <= maxima[0]:
            return 1.0
        return (n - bisect.bisect_left(maxima, value)) / n

    return survival


def fit_exponential_tail(maxima: Sequence[float],
                         tail_fraction: float = 0.2) -> tuple:
    """Least-squares fit ``log S(v) ~ a - b v`` on the upper tail.

    Returns ``(a, b)``.  Only strictly-below-target maxima participate;
    points with zero empirical survival are excluded by construction
    (the fit runs over observed order statistics).
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError(
            f"tail_fraction must be in (0, 1], got {tail_fraction}"
        )
    n = len(maxima)
    start = max(0, n - max(int(n * tail_fraction), 5))
    xs, ys = [], []
    for k in range(start, n):
        value = maxima[k]
        if value >= TARGET_VALUE:
            break
        survival = (n - k) / n
        xs.append(value)
        ys.append(math.log(survival))
    if len(xs) < 2 or xs[0] == xs[-1]:
        raise ValueError(
            "not enough distinct tail points to fit; increase the pilot"
        )
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    b = max(-slope, 1e-9)  # survival must decay
    a = mean_y + b * mean_x
    return a, b


def hybrid_survival(maxima: Sequence[float],
                    min_tail_points: int = 20) -> Callable[[float], float]:
    """Empirical survival with an exponential-tail extension.

    Below the resolution limit (fewer than ``min_tail_points`` pilot
    maxima above ``v``) the fitted tail takes over, so the function is
    usable all the way up to the target value even when no pilot path
    ever hit it.
    """
    n = len(maxima)
    empirical = empirical_survival(maxima)
    a, b = fit_exponential_tail(maxima)
    switch_survival = min_tail_points / n

    def survival(value: float) -> float:
        emp = empirical(value)
        if emp >= switch_survival:
            return emp
        return min(math.exp(a - b * value), max(emp, 1e-300))

    return survival


def balanced_growth_partition(query: DurabilityQuery, num_levels: int,
                              pilot_paths: int = 2000,
                              seed: Optional[int] = None,
                              backend: str = "scalar",
                              plan_cache=None,
                              pool=None,
                              grid=None,
                              cache_kind=None) -> LevelPartition:
    """Build an (approximately) balanced-growth plan with ``m`` levels.

    This is the automated stand-in for the paper's manually tuned
    MLSS-BAL plans; the pilot cost is *not* charged to the estimate, as
    in the paper's Figure 13 protocol ("we do not charge the cost of
    manual tuning to running MLSS-BAL").

    ``plan_cache`` (a :class:`repro.engine.PlanCache` or compatible) is
    consulted before the pilot runs — a hit skips the pilot entirely —
    and updated afterwards, keyed separately per ``num_levels`` (or
    under an explicit ``cache_kind``, which grid-shaped callers use so
    curve plans never collide with point plans).

    ``grid`` makes the plan *curve-aware*: a strictly ascending tuple
    of normalized threshold levels (each in ``(0, 1)``) that must
    appear verbatim in the plan — every grid level is a curve read-out
    boundary — with the remaining ``num_levels - 1 - len(grid)``
    refinement boundaries distributed into the survival gaps *between*
    grid levels (see
    :func:`~repro.core.variance.curve_refined_boundaries`), so one
    plan serves a whole ``durability_curve`` grid instead of
    stretching a single-threshold ladder across it.

    ``pool`` shards the pilot's chunks over a
    :class:`~repro.core.pool.WorkerPool`; the chunk decomposition is
    fixed, so the pooled pilot builds exactly the plan the sequential
    pilot would (see :func:`pilot_max_values`).
    """
    if num_levels < 1:
        raise ValueError(f"num_levels must be >= 1, got {num_levels}")
    grid = tuple(float(g) for g in grid) if grid is not None else None
    if num_levels == 1 and not grid:
        return LevelPartition()
    if cache_kind is None:
        cache_kind = ("balanced", num_levels)
    if plan_cache is not None:
        entry = plan_cache.get(query, kind=cache_kind)
        if entry is not None:
            return entry.partition
    maxima = pilot_max_values(query, n_paths=pilot_paths, seed=seed,
                              backend=backend, pool=pool)
    survival = hybrid_survival(maxima)
    tau = survival(TARGET_VALUE)
    if tau >= 1.0:
        raise ValueError(
            "pilot suggests the query is almost surely satisfied; "
            "no useful level plan exists"
        )
    if grid:
        boundaries = curve_refined_boundaries(survival, grid, num_levels)
    else:
        boundaries = balanced_boundaries_from_survival(survival,
                                                       num_levels)
    initial_value = query.initial_value()
    plan = LevelPartition(b for b in boundaries if b > initial_value)
    if plan_cache is not None:
        plan_cache.put(query, plan, kind=cache_kind)
    return plan
