"""Bootstrap variance estimation for g-MLSS (Section 4.2).

The general MLSS estimator has no closed-form variance, so the paper
resamples root paths with replacement and reads the variance off the
empirical distribution of the resampled estimates:

    Var_hat(tau_hat) = sum_i (tau_hat_i - tau_bar)^2 / N.

Because every root tree is summarised by a handful of counters
(:class:`repro.core.records.RootRecord`), a bootstrap replicate never
re-simulates anything — it resamples counter rows and refolds them
through the estimator, vectorised with numpy.

All ``n_boot`` replicates evaluate as **one** gather + fold: the
resampled indices become an ``(n_boot, n_roots)`` multiplicity matrix
(one ``bincount``), every replicate's counter totals are a single
matrix product against the per-root matrices, and the estimator folds
over all replicate rows at once
(:func:`repro.core.gmlss.gmlss_estimates_from_total_rows`).  No Python
loop runs per replicate, so the bootstrap stays a rounding error next
to simulation even at large ``n_boot``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .records import ForestAggregate


@dataclass
class BootstrapResult:
    """Outcome of one bootstrap evaluation."""

    variance: float
    estimates: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.estimates.mean()) if self.estimates.size else 0.0

    @property
    def std_error(self) -> float:
        return float(np.sqrt(max(self.variance, 0.0)))


#: Bound on the multiplicity-matrix chunk (floats): replicates are
#: folded in chunks of ``_CHUNK_CELLS / n_roots`` rows, so peak memory
#: stays ~32 MB regardless of ``n_boot * n_roots``.
_CHUNK_CELLS = 4_000_000


def _resample_counts(rng: np.random.Generator, n_boot: int, n_roots: int,
                     n_draw: int) -> np.ndarray:
    """Multiplicity matrix of a block of bootstrap resamples.

    Row ``b`` counts how often each root was drawn in replicate ``b``
    (``n_draw`` draws with replacement).  Drawing the ``(n_boot,
    n_draw)`` index block in one call consumes the generator stream in
    the same order the per-replicate loop did, so a seeded run
    resamples the same root multisets; the bincount turns gathering +
    summing per replicate into one matrix product downstream.
    """
    indices = rng.integers(0, n_roots, size=(n_boot, n_draw))
    offsets = np.arange(n_boot, dtype=np.int64)[:, None] * n_roots
    flat = (indices + offsets).ravel()
    counts = np.bincount(flat, minlength=n_boot * n_roots)
    return counts.reshape(n_boot, n_roots).astype(np.float64)


def _replicate_chunks(n_boot: int, n_roots: int):
    """Replicate-row chunk sizes bounding peak multiplicity memory."""
    chunk = max(1, _CHUNK_CELLS // max(n_roots, 1))
    for start in range(0, n_boot, chunk):
        yield start, min(chunk, n_boot - start)


def bootstrap_variance(aggregate: ForestAggregate, ratios: tuple,
                       n_boot: int = 200, seed: Optional[int] = None,
                       n_draw: Optional[int] = None) -> BootstrapResult:
    """Bootstrap the g-MLSS estimator over root-path records.

    Parameters
    ----------
    aggregate:
        Forest counters with per-root records.
    ratios:
        Normalised per-level splitting ratios (index 0 unused).
    n_boot:
        Number of bootstrap replicates (the paper's ``N``).
    seed:
        Seed for the resampling RNG (independent of simulation RNG).
    n_draw:
        Roots per replicate; defaults to all of them.  When subsampling
        (``n_draw < n_roots``) the variance is rescaled by
        ``n_draw / n_roots`` so it still refers to the full-sample
        estimator.
    """
    # Imported here to avoid a circular import (gmlss imports this module).
    from .gmlss import gmlss_estimates_from_total_rows

    n_roots = aggregate.n_roots
    if n_roots < 2:
        return BootstrapResult(variance=0.0,
                               estimates=np.zeros(0, dtype=np.float64))
    if n_draw is None:
        n_draw = n_roots
    if n_draw < 1:
        raise ValueError(f"n_draw must be >= 1, got {n_draw}")
    if n_boot < 2:
        raise ValueError(f"n_boot must be >= 2, got {n_boot}")

    landings, skips, crossings, hits = aggregate.per_root_matrices()
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_boot, dtype=np.float64)
    for start, block in _replicate_chunks(n_boot, n_roots):
        counts = _resample_counts(rng, block, n_roots, n_draw)
        estimates[start:start + block] = gmlss_estimates_from_total_rows(
            counts @ landings, counts @ skips, counts @ crossings,
            counts @ hits, float(n_draw), ratios)
    variance = float(estimates.var())
    if n_draw != n_roots:
        # A replicate of n_draw roots has variance ~ 1/n_draw; rescale
        # to the full-sample estimator's ~ 1/n_roots.
        variance *= n_draw / n_roots
    return BootstrapResult(variance=variance, estimates=estimates)


def bootstrap_curve_variances(aggregate: ForestAggregate, ratios: tuple,
                              n_boot: int = 200,
                              seed: Optional[int] = None) -> np.ndarray:
    """Bootstrap variances for *all* boundary-crossing estimates at once.

    The durability-curve reader needs a variance per grid level, i.e.
    per prefix of the g-MLSS product (Eq. 8).  One resampling pass is
    enough: every replicate refolds the resampled counters through all
    prefixes simultaneously, so the cost is the same as bootstrapping
    the final estimate alone.  Returns an array of length
    ``aggregate.num_levels`` aligned with
    :func:`repro.core.gmlss.gmlss_prefix_estimates`.
    """
    from .gmlss import gmlss_prefix_estimates_from_total_rows

    m = aggregate.num_levels
    n_roots = aggregate.n_roots
    if n_roots < 2:
        return np.zeros(m, dtype=np.float64)
    if n_boot < 2:
        raise ValueError(f"n_boot must be >= 2, got {n_boot}")

    landings, skips, crossings, hits = aggregate.per_root_matrices()
    rng = np.random.default_rng(seed)
    estimates = np.empty((n_boot, m), dtype=np.float64)
    for start, block in _replicate_chunks(n_boot, n_roots):
        counts = _resample_counts(rng, block, n_roots, n_roots)
        estimates[start:start + block] = \
            gmlss_prefix_estimates_from_total_rows(
                counts @ landings, counts @ skips, counts @ crossings,
                counts @ hits, float(n_roots), ratios)
    return estimates.var(axis=0)
