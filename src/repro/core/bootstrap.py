"""Bootstrap variance estimation for g-MLSS (Section 4.2).

The general MLSS estimator has no closed-form variance, so the paper
resamples root paths with replacement and reads the variance off the
empirical distribution of the resampled estimates:

    Var_hat(tau_hat) = sum_i (tau_hat_i - tau_bar)^2 / N.

Because every root tree is summarised by a handful of counters
(:class:`repro.core.records.RootRecord`), a bootstrap replicate never
re-simulates anything — it resamples counter rows and refolds them
through the estimator, vectorised with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .records import ForestAggregate


@dataclass
class BootstrapResult:
    """Outcome of one bootstrap evaluation."""

    variance: float
    estimates: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.estimates.mean()) if self.estimates.size else 0.0

    @property
    def std_error(self) -> float:
        return float(np.sqrt(max(self.variance, 0.0)))


def bootstrap_variance(aggregate: ForestAggregate, ratios: tuple,
                       n_boot: int = 200, seed: Optional[int] = None,
                       n_draw: Optional[int] = None) -> BootstrapResult:
    """Bootstrap the g-MLSS estimator over root-path records.

    Parameters
    ----------
    aggregate:
        Forest counters with per-root records.
    ratios:
        Normalised per-level splitting ratios (index 0 unused).
    n_boot:
        Number of bootstrap replicates (the paper's ``N``).
    seed:
        Seed for the resampling RNG (independent of simulation RNG).
    n_draw:
        Roots per replicate; defaults to all of them.  When subsampling
        (``n_draw < n_roots``) the variance is rescaled by
        ``n_draw / n_roots`` so it still refers to the full-sample
        estimator.
    """
    # Imported here to avoid a circular import (gmlss imports this module).
    from .gmlss import gmlss_estimate_from_totals

    n_roots = aggregate.n_roots
    if n_roots < 2:
        return BootstrapResult(variance=0.0,
                               estimates=np.zeros(0, dtype=np.float64))
    if n_draw is None:
        n_draw = n_roots
    if n_draw < 1:
        raise ValueError(f"n_draw must be >= 1, got {n_draw}")
    if n_boot < 2:
        raise ValueError(f"n_boot must be >= 2, got {n_boot}")

    landings, skips, crossings, hits = aggregate.per_root_matrices()
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_boot, dtype=np.float64)
    for b in range(n_boot):
        idx = rng.integers(0, n_roots, size=n_draw)
        estimates[b] = gmlss_estimate_from_totals(
            landings[idx].sum(axis=0),
            skips[idx].sum(axis=0),
            crossings[idx].sum(axis=0),
            float(hits[idx].sum()),
            float(n_draw),
            ratios,
        )
    variance = float(estimates.var())
    if n_draw != n_roots:
        # A replicate of n_draw roots has variance ~ 1/n_draw; rescale
        # to the full-sample estimator's ~ 1/n_roots.
        variance *= n_draw / n_roots
    return BootstrapResult(variance=variance, estimates=estimates)


def bootstrap_curve_variances(aggregate: ForestAggregate, ratios: tuple,
                              n_boot: int = 200,
                              seed: Optional[int] = None) -> np.ndarray:
    """Bootstrap variances for *all* boundary-crossing estimates at once.

    The durability-curve reader needs a variance per grid level, i.e.
    per prefix of the g-MLSS product (Eq. 8).  One resampling pass is
    enough: every replicate refolds the resampled counters through all
    prefixes simultaneously, so the cost is the same as bootstrapping
    the final estimate alone.  Returns an array of length
    ``aggregate.num_levels`` aligned with
    :func:`repro.core.gmlss.gmlss_prefix_estimates`.
    """
    from .gmlss import gmlss_prefix_estimates_from_totals

    m = aggregate.num_levels
    n_roots = aggregate.n_roots
    if n_roots < 2:
        return np.zeros(m, dtype=np.float64)
    if n_boot < 2:
        raise ValueError(f"n_boot must be >= 2, got {n_boot}")

    landings, skips, crossings, hits = aggregate.per_root_matrices()
    rng = np.random.default_rng(seed)
    estimates = np.empty((n_boot, m), dtype=np.float64)
    for b in range(n_boot):
        idx = rng.integers(0, n_roots, size=n_roots)
        estimates[b] = gmlss_prefix_estimates_from_totals(
            landings[idx].sum(axis=0),
            skips[idx].sum(axis=0),
            crossings[idx].sum(axis=0),
            float(hits[idx].sum()),
            float(n_roots),
            ratios,
        )
    return estimates.var(axis=0)
