"""One-shot query answering: the thin wrapper over the engine service.

``answer_durability_query`` is the original single-call entry point and
is kept for compatibility and convenience; since the introduction of
:class:`repro.engine.DurabilityEngine` it simply packs its arguments
into an :class:`repro.engine.ExecutionPolicy` and runs a fresh engine
for one call.  Long-running or multi-query callers should hold a
:class:`~repro.engine.DurabilityEngine` instead: it memoizes level
plans across calls, groups compatible queries into shared simulation
cohorts (``answer_batch``) and answers whole threshold grids in one
pass (``durability_curve``).

Methods:

* ``"srs"``   — the baseline sampler;
* ``"smlss"`` — simple MLSS (only sound without level skipping);
* ``"gmlss"`` — general MLSS (default; always unbiased);
* ``"auto"``  — g-MLSS with the partition found by the adaptive greedy
  search (Algorithm 1) when no plan is supplied.

When a partition is supplied it is pruned so every boundary exceeds the
initial state's value (a requirement of the splitting bookkeeping).

Orthogonally to the method, ``backend`` selects how the simulation
itself runs: ``"auto"`` (default) uses the NumPy batch backend whenever
the process implements :class:`repro.processes.base.VectorizedProcess`
and the scalar per-path loop otherwise; ``"vectorized"`` forces
batching (falling back to a ``ScalarFallback`` wrapper for scalar-only
processes) and ``"scalar"`` forces the original loop.  The resolved
backend drives the sampler *and* the pilot runs of the plan search, and
changes only the order of independent random draws — never the
distribution of the estimate.
"""

from __future__ import annotations

from typing import Optional

from ..engine.policy import ExecutionPolicy
from ..engine.service import DurabilityEngine, resolve_plan
from .estimates import DurabilityEstimate
from .levels import LevelPartition
from .quality import QualityTarget
from .value_functions import DurabilityQuery

METHODS = ("srs", "smlss", "gmlss", "auto")


def resolve_partition(query: DurabilityQuery,
                      partition: Optional[LevelPartition],
                      num_levels: Optional[int],
                      ratio, trial_steps: int,
                      seed: Optional[int],
                      backend: str = "scalar",
                      pool=None):
    """Choose the level plan: explicit > balanced pilot > greedy search.

    Returns ``(partition, search_details_or_None)``.  The cache-less
    view of :func:`repro.engine.service.resolve_plan` (the single
    source of truth for plan precedence); the engine service adds plan
    caching on top (:meth:`repro.engine.DurabilityEngine.answer`).
    ``pool`` shards the search's trials and pilots over a
    :class:`~repro.core.pool.WorkerPool` without changing the chosen
    plan.
    """
    plan, search_details, _, _ = resolve_plan(
        query, partition, num_levels, ratio, trial_steps, seed,
        backend=backend, plan_cache=None, pool=pool)
    return plan, search_details


def answer_durability_query(
        query: DurabilityQuery,
        method: str = "auto",
        partition: Optional[LevelPartition] = None,
        num_levels: Optional[int] = None,
        ratio=3,
        quality: Optional[QualityTarget] = None,
        max_steps: Optional[int] = None,
        max_roots: Optional[int] = None,
        seed: Optional[int] = None,
        trial_steps: int = 20000,
        record_trace: bool = False,
        backend: str = "auto",
        sampler_options: Optional[dict] = None) -> DurabilityEstimate:
    """Answer ``Q(q, s)`` with the requested method and stopping rule.

    Parameters
    ----------
    query:
        The durability prediction query.
    method:
        One of ``"srs"``, ``"smlss"``, ``"gmlss"``, ``"auto"``.
    partition / num_levels:
        Either an explicit level plan, or a level count for an
        automatically tuned balanced-growth plan; with neither, the
        greedy search picks the plan (``"auto"`` and MLSS methods).
    ratio:
        Splitting ratio ``r`` (paper default 3).
    quality / max_steps / max_roots:
        Stopping rule: quality target and/or simulation budgets; at
        least one must be given (a ``ValueError`` is raised *before*
        any plan search otherwise).
    trial_steps:
        Per-trial budget of the greedy search (when it runs).
    backend:
        Simulation backend: ``"auto"`` (default; vectorized when the
        process supports batching, scalar otherwise), ``"vectorized"``,
        or ``"scalar"``.  Applies to the sampler and to plan-search
        pilot runs alike.
    sampler_options:
        Extra keyword arguments for the chosen sampler's constructor.
    """
    policy = ExecutionPolicy(
        method=method, backend=backend, ratio=ratio, num_levels=num_levels,
        trial_steps=trial_steps, quality=quality, max_steps=max_steps,
        max_roots=max_roots, seed=seed, record_trace=record_trace,
        # One-shot calls build a fresh engine, so its cache could never
        # hit; skip the lookups (and keep details identical to before).
        use_plan_cache=False,
        sampler_options=sampler_options)
    return DurabilityEngine(policy).answer(query, partition=partition)
