"""High-level query answering: one entry point for the whole pipeline.

``answer_durability_query`` wires together everything the paper
describes: pick (or search for) a level plan, run the right sampler,
stop on a quality target or budget, and return an estimate carrying its
guarantee.  Methods:

* ``"srs"``   — the baseline sampler;
* ``"smlss"`` — simple MLSS (only sound without level skipping);
* ``"gmlss"`` — general MLSS (default; always unbiased);
* ``"auto"``  — g-MLSS with the partition found by the adaptive greedy
  search (Algorithm 1) when no plan is supplied.

When a partition is supplied it is pruned so every boundary exceeds the
initial state's value (a requirement of the splitting bookkeeping).
"""

from __future__ import annotations

from typing import Optional

from .balanced import balanced_growth_partition
from .estimates import DurabilityEstimate
from .gmlss import GMLSSSampler
from .greedy import adaptive_greedy_partition
from .levels import LevelPartition
from .quality import QualityTarget
from .smlss import SMLSSSampler
from .srs import SRSSampler
from .value_functions import DurabilityQuery

METHODS = ("srs", "smlss", "gmlss", "auto")


def resolve_partition(query: DurabilityQuery,
                      partition: Optional[LevelPartition],
                      num_levels: Optional[int],
                      ratio, trial_steps: int,
                      seed: Optional[int]):
    """Choose the level plan: explicit > balanced pilot > greedy search.

    Returns ``(partition, search_details_or_None)``.
    """
    initial_value = query.initial_value()
    if partition is not None:
        return partition.pruned_above(initial_value), None
    if num_levels is not None:
        plan = balanced_growth_partition(
            query, num_levels, pilot_paths=max(trial_steps // query.horizon,
                                               200), seed=seed)
        return plan, None
    result = adaptive_greedy_partition(
        query, ratio=ratio, trial_steps=trial_steps, seed=seed)
    details = {
        "search_steps": result.search_steps,
        "search_rounds": result.num_rounds,
        "pooled_estimate": result.pooled_estimate,
        "pooled_roots": result.pooled_roots,
        "partition": result.partition,
    }
    return result.partition, details


def answer_durability_query(
        query: DurabilityQuery,
        method: str = "auto",
        partition: Optional[LevelPartition] = None,
        num_levels: Optional[int] = None,
        ratio=3,
        quality: Optional[QualityTarget] = None,
        max_steps: Optional[int] = None,
        max_roots: Optional[int] = None,
        seed: Optional[int] = None,
        trial_steps: int = 20000,
        record_trace: bool = False,
        sampler_options: Optional[dict] = None) -> DurabilityEstimate:
    """Answer ``Q(q, s)`` with the requested method and stopping rule.

    Parameters
    ----------
    query:
        The durability prediction query.
    method:
        One of ``"srs"``, ``"smlss"``, ``"gmlss"``, ``"auto"``.
    partition / num_levels:
        Either an explicit level plan, or a level count for an
        automatically tuned balanced-growth plan; with neither, the
        greedy search picks the plan (``"auto"`` and MLSS methods).
    ratio:
        Splitting ratio ``r`` (paper default 3).
    quality / max_steps / max_roots:
        Stopping rule: quality target and/or simulation budgets; at
        least one must be given.
    trial_steps:
        Per-trial budget of the greedy search (when it runs).
    sampler_options:
        Extra keyword arguments for the chosen sampler's constructor.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
    options = dict(sampler_options or {})
    options.setdefault("record_trace", record_trace)

    if method == "srs":
        sampler = SRSSampler(**options)
        return sampler.run(query, quality=quality, max_steps=max_steps,
                           max_roots=max_roots, seed=seed)

    search_details = None
    if method in ("smlss", "gmlss", "auto"):
        partition, search_details = resolve_partition(
            query, partition, num_levels, ratio, trial_steps, seed)

    if method == "smlss":
        sampler = SMLSSSampler(partition, ratio=ratio, **options)
    else:  # gmlss or auto
        sampler = GMLSSSampler(partition, ratio=ratio, **options)
    estimate = sampler.run(query, quality=quality, max_steps=max_steps,
                           max_roots=max_roots, seed=seed)
    if search_details is not None:
        estimate.details["plan_search"] = search_details
    return estimate
