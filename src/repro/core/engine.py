"""High-level query answering: one entry point for the whole pipeline.

``answer_durability_query`` wires together everything the paper
describes: pick (or search for) a level plan, run the right sampler,
stop on a quality target or budget, and return an estimate carrying its
guarantee.  Methods:

* ``"srs"``   — the baseline sampler;
* ``"smlss"`` — simple MLSS (only sound without level skipping);
* ``"gmlss"`` — general MLSS (default; always unbiased);
* ``"auto"``  — g-MLSS with the partition found by the adaptive greedy
  search (Algorithm 1) when no plan is supplied.

When a partition is supplied it is pruned so every boundary exceeds the
initial state's value (a requirement of the splitting bookkeeping).

Orthogonally to the method, ``backend`` selects how the simulation
itself runs: ``"auto"`` (default) uses the NumPy batch backend whenever
the process implements :class:`repro.processes.base.VectorizedProcess`
and the scalar per-path loop otherwise; ``"vectorized"`` forces
batching (falling back to a ``ScalarFallback`` wrapper for scalar-only
processes) and ``"scalar"`` forces the original loop.  The resolved
backend drives the sampler *and* the pilot runs of the plan search, and
changes only the order of independent random draws — never the
distribution of the estimate.
"""

from __future__ import annotations

from typing import Optional

from ..processes.base import resolve_backend
from .balanced import balanced_growth_partition
from .estimates import DurabilityEstimate
from .gmlss import GMLSSSampler
from .greedy import adaptive_greedy_partition
from .levels import LevelPartition
from .quality import QualityTarget
from .smlss import SMLSSSampler
from .srs import SRSSampler
from .value_functions import DurabilityQuery

METHODS = ("srs", "smlss", "gmlss", "auto")


def resolve_partition(query: DurabilityQuery,
                      partition: Optional[LevelPartition],
                      num_levels: Optional[int],
                      ratio, trial_steps: int,
                      seed: Optional[int],
                      backend: str = "scalar"):
    """Choose the level plan: explicit > balanced pilot > greedy search.

    Returns ``(partition, search_details_or_None)``.  Pilot simulations
    (balanced-growth pilots and greedy candidate trials) run on the
    requested backend.
    """
    initial_value = query.initial_value()
    if partition is not None:
        return partition.pruned_above(initial_value), None
    if num_levels is not None:
        plan = balanced_growth_partition(
            query, num_levels, pilot_paths=max(trial_steps // query.horizon,
                                               200), seed=seed,
            backend=backend)
        return plan, None
    result = adaptive_greedy_partition(
        query, ratio=ratio, trial_steps=trial_steps, seed=seed,
        backend=backend)
    details = {
        "search_steps": result.search_steps,
        "search_rounds": result.num_rounds,
        "pooled_estimate": result.pooled_estimate,
        "pooled_roots": result.pooled_roots,
        "partition": result.partition,
    }
    return result.partition, details


def answer_durability_query(
        query: DurabilityQuery,
        method: str = "auto",
        partition: Optional[LevelPartition] = None,
        num_levels: Optional[int] = None,
        ratio=3,
        quality: Optional[QualityTarget] = None,
        max_steps: Optional[int] = None,
        max_roots: Optional[int] = None,
        seed: Optional[int] = None,
        trial_steps: int = 20000,
        record_trace: bool = False,
        backend: str = "auto",
        sampler_options: Optional[dict] = None) -> DurabilityEstimate:
    """Answer ``Q(q, s)`` with the requested method and stopping rule.

    Parameters
    ----------
    query:
        The durability prediction query.
    method:
        One of ``"srs"``, ``"smlss"``, ``"gmlss"``, ``"auto"``.
    partition / num_levels:
        Either an explicit level plan, or a level count for an
        automatically tuned balanced-growth plan; with neither, the
        greedy search picks the plan (``"auto"`` and MLSS methods).
    ratio:
        Splitting ratio ``r`` (paper default 3).
    quality / max_steps / max_roots:
        Stopping rule: quality target and/or simulation budgets; at
        least one must be given.
    trial_steps:
        Per-trial budget of the greedy search (when it runs).
    backend:
        Simulation backend: ``"auto"`` (default; vectorized when the
        process supports batching, scalar otherwise), ``"vectorized"``,
        or ``"scalar"``.  Applies to the sampler and to plan-search
        pilot runs alike.
    sampler_options:
        Extra keyword arguments for the chosen sampler's constructor.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
    backend = resolve_backend(backend, query.process)
    options = dict(sampler_options or {})
    options.setdefault("record_trace", record_trace)
    options.setdefault("backend", backend)
    # A sampler_options override may pick a different backend than the
    # engine-level argument; report what the sampler actually ran.
    sampler_backend = resolve_backend(options["backend"], query.process)

    if method == "srs":
        sampler = SRSSampler(**options)
        estimate = sampler.run(query, quality=quality, max_steps=max_steps,
                               max_roots=max_roots, seed=seed)
        estimate.details["backend"] = sampler_backend
        return estimate

    search_details = None
    if method in ("smlss", "gmlss", "auto"):
        partition, search_details = resolve_partition(
            query, partition, num_levels, ratio, trial_steps, seed,
            backend=backend)

    if method == "smlss":
        sampler = SMLSSSampler(partition, ratio=ratio, **options)
    else:  # gmlss or auto
        sampler = GMLSSSampler(partition, ratio=ratio, **options)
    estimate = sampler.run(query, quality=quality, max_steps=max_steps,
                           max_roots=max_roots, seed=seed)
    estimate.details["backend"] = sampler_backend
    if search_details is not None:
        estimate.details["plan_search"] = search_details
    return estimate
