"""Query answers: point estimate plus statistical quality guarantees.

Per Section 2.1, the goal is an unbiased estimate ``tau_hat`` of the
query answer together with a quality guarantee — a confidence interval
or an estimator variance — and an account of the simulation cost (number
of invocations of the step procedure ``g``).
:class:`DurabilityEstimate` packages all of that, for every sampler in
the library.

:class:`DurabilityCurve` is the multi-threshold counterpart: the
answers to a whole grid of thresholds ``Pr[z(X_t) >= beta_j for some
t <= s]``, computed from *one* shared simulation pass (running path
maxima for SRS, per-level root records for MLSS) instead of one run per
threshold.  Each grid point carries a full :class:`DurabilityEstimate`;
the estimates share sample paths — individually unbiased, but
positively correlated across thresholds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .stats import critical_value


@dataclass
class TracePoint:
    """A snapshot of a running estimation (used for convergence plots)."""

    steps: int
    elapsed_seconds: float
    probability: float
    variance: float
    n_roots: int
    hits: int


@dataclass
class DurabilityEstimate:
    """The answer to a durability prediction query.

    Attributes
    ----------
    probability:
        The unbiased point estimate ``tau_hat``.
    variance:
        Estimated variance of ``tau_hat`` (from the method-specific
        estimator: binomial for SRS, Eq. 5-6 for s-MLSS, bootstrap for
        g-MLSS).
    n_roots:
        Number of independent root paths simulated.
    hits:
        Number of target hits observed (leaf hits for MLSS).
    steps:
        Total invocations of the simulation procedure ``g`` — the
        paper's cost measure.
    method:
        Sampler name (``"srs"``, ``"smlss"``, ``"gmlss"``, ...).
    elapsed_seconds:
        Wall-clock simulation time.
    details:
        Method-specific extras (level counters, traces, plan search
        history, bootstrap overhead, ...).
    """

    probability: float
    variance: float
    n_roots: int
    hits: int
    steps: int
    method: str
    elapsed_seconds: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def std_error(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    def ci(self, confidence: float = 0.95) -> tuple:
        """Normal-approximation confidence interval (Section 6 metrics)."""
        half = self.ci_half_width(confidence)
        return (self.probability - half, self.probability + half)

    def ci_half_width(self, confidence: float = 0.95) -> float:
        return critical_value(confidence) * self.std_error

    def relative_error(self, truth: Optional[float] = None) -> float:
        """``sqrt(Var) / mu`` (Section 6, "Relative Error").

        The paper defines RE against the true probability; pass
        ``truth`` when it is known, otherwise the running estimate is
        used as the plug-in reference (the practical variant the paper
        describes).  Returns ``inf`` when the reference is 0.
        """
        reference = self.probability if truth is None else truth
        if reference <= 0.0:
            return math.inf
        return self.std_error / reference

    def summary(self, confidence: float = 0.95) -> str:
        lo, hi = self.ci(confidence)
        return (f"{self.method}: tau_hat={self.probability:.6g} "
                f"({confidence:.0%} CI [{max(lo, 0.0):.6g}, {hi:.6g}]), "
                f"RE={self.relative_error():.3g}, roots={self.n_roots}, "
                f"hits={self.hits}, steps={self.steps}, "
                f"time={self.elapsed_seconds:.3g}s")

    def __str__(self) -> str:
        return self.summary()


@dataclass
class DurabilityCurve:
    """Per-threshold durability estimates from one shared simulation pass.

    Attributes
    ----------
    thresholds:
        The raw query thresholds ``beta_1 < ... < beta_K`` the curve was
        evaluated at (in the ``z`` scale of the underlying query).
    levels:
        The same grid normalized to the value-function scale
        (``beta_j / beta_K``, so the last entry is 1.0).
    estimates:
        One :class:`DurabilityEstimate` per threshold, in grid order.
        All estimates share the same root paths, so they are
        individually unbiased but positively correlated across
        thresholds; their ``steps`` fields all report the *shared* cost
        of the single pass.
    method:
        Sampler that produced the curve (``"srs"``, ``"smlss"``,
        ``"gmlss"``).
    n_roots / steps / elapsed_seconds:
        Shared-pass totals (``steps`` is the paper's cost measure for
        the whole grid).
    details:
        Method-specific extras (backend, level-reach counts, ...).
    """

    thresholds: Tuple[float, ...]
    levels: Tuple[float, ...]
    estimates: Tuple[DurabilityEstimate, ...]
    method: str
    n_roots: int
    steps: int
    elapsed_seconds: float = 0.0
    details: dict = field(default_factory=dict)

    def __post_init__(self):
        if not (len(self.thresholds) == len(self.levels)
                == len(self.estimates)):
            raise ValueError(
                f"thresholds/levels/estimates lengths disagree: "
                f"{len(self.thresholds)}/{len(self.levels)}/"
                f"{len(self.estimates)}"
            )

    def __len__(self) -> int:
        return len(self.estimates)

    def __iter__(self):
        return iter(zip(self.thresholds, self.estimates))

    def __getitem__(self, index: int) -> DurabilityEstimate:
        return self.estimates[index]

    def probabilities(self) -> list:
        """Point estimates in grid order (a survival curve over beta)."""
        return [e.probability for e in self.estimates]

    def estimate_at(self, threshold: float) -> DurabilityEstimate:
        """The estimate for one grid threshold (exact match required)."""
        for beta, estimate in zip(self.thresholds, self.estimates):
            if math.isclose(beta, threshold, rel_tol=1e-12, abs_tol=1e-12):
                return estimate
        raise KeyError(f"threshold {threshold} not on the curve grid "
                       f"{self.thresholds}")

    def top_k(self, k: int) -> list:
        """The ``k`` grid points with the highest durability, as
        ``(threshold, estimate)`` pairs sorted by probability."""
        ranked = sorted(zip(self.thresholds, self.estimates),
                        key=lambda pair: pair[1].probability, reverse=True)
        return ranked[:max(k, 0)]

    def summary(self, confidence: float = 0.95) -> str:
        lines = [f"{self.method} curve over {len(self)} thresholds "
                 f"(roots={self.n_roots}, shared steps={self.steps}, "
                 f"time={self.elapsed_seconds:.3g}s):"]
        for beta, estimate in self:
            half = estimate.ci_half_width(confidence)
            lines.append(f"  beta={beta:<10.6g} tau_hat="
                         f"{estimate.probability:.6g} "
                         f"(+/- {half:.2g} at {confidence:.0%})")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()
