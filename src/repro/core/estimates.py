"""Query answers: point estimate plus statistical quality guarantees.

Per Section 2.1, the goal is an unbiased estimate ``tau_hat`` of the
query answer together with a quality guarantee — a confidence interval
or an estimator variance — and an account of the simulation cost (number
of invocations of the step procedure ``g``).
:class:`DurabilityEstimate` packages all of that, for every sampler in
the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from .stats import critical_value


@dataclass
class TracePoint:
    """A snapshot of a running estimation (used for convergence plots)."""

    steps: int
    elapsed_seconds: float
    probability: float
    variance: float
    n_roots: int
    hits: int


@dataclass
class DurabilityEstimate:
    """The answer to a durability prediction query.

    Attributes
    ----------
    probability:
        The unbiased point estimate ``tau_hat``.
    variance:
        Estimated variance of ``tau_hat`` (from the method-specific
        estimator: binomial for SRS, Eq. 5-6 for s-MLSS, bootstrap for
        g-MLSS).
    n_roots:
        Number of independent root paths simulated.
    hits:
        Number of target hits observed (leaf hits for MLSS).
    steps:
        Total invocations of the simulation procedure ``g`` — the
        paper's cost measure.
    method:
        Sampler name (``"srs"``, ``"smlss"``, ``"gmlss"``, ...).
    elapsed_seconds:
        Wall-clock simulation time.
    details:
        Method-specific extras (level counters, traces, plan search
        history, bootstrap overhead, ...).
    """

    probability: float
    variance: float
    n_roots: int
    hits: int
    steps: int
    method: str
    elapsed_seconds: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def std_error(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    def ci(self, confidence: float = 0.95) -> tuple:
        """Normal-approximation confidence interval (Section 6 metrics)."""
        half = self.ci_half_width(confidence)
        return (self.probability - half, self.probability + half)

    def ci_half_width(self, confidence: float = 0.95) -> float:
        return critical_value(confidence) * self.std_error

    def relative_error(self, truth: Optional[float] = None) -> float:
        """``sqrt(Var) / mu`` (Section 6, "Relative Error").

        The paper defines RE against the true probability; pass
        ``truth`` when it is known, otherwise the running estimate is
        used as the plug-in reference (the practical variant the paper
        describes).  Returns ``inf`` when the reference is 0.
        """
        reference = self.probability if truth is None else truth
        if reference <= 0.0:
            return math.inf
        return self.std_error / reference

    def summary(self, confidence: float = 0.95) -> str:
        lo, hi = self.ci(confidence)
        return (f"{self.method}: tau_hat={self.probability:.6g} "
                f"({confidence:.0%} CI [{max(lo, 0.0):.6g}, {hi:.6g}]), "
                f"RE={self.relative_error():.3g}, roots={self.n_roots}, "
                f"hits={self.hits}, steps={self.steps}, "
                f"time={self.elapsed_seconds:.3g}s")

    def __str__(self) -> str:
        return self.summary()
