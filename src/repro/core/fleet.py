"""Fused fleet screening: many entities, one simulation frontier.

The paper's fleet scenarios — "which of these servers will breach the
SLA backlog within the horizon?", "which of these stocks stays above
its strike?" — ask the *same shape* of query of hundreds of entities
whose processes differ only in parameters.  The engine's cohort pass
(one shared simulation per process object) cannot help there: each
entity is its own process, so each pays the per-call dispatch overhead
of its own simulation loop at every time step.

This module screens whole fleets through **one** frontier built on
:class:`repro.processes.base.FusedBatch`, in three flavours:

* :func:`screen_fleet` — one threshold per member, plain SRS: every
  live path of every entity advances in a single ``step_batch`` per
  time step, per-entity parameters broadcast by owner and per-entity
  thresholds compared row-wise.
* :func:`screen_fleet_curves` — one threshold *grid* per member: each
  row additionally tracks its running-maximum score, so a single fused
  pass answers every member's whole durability curve (a row retires
  only once it clears its owner's top threshold).
* :func:`screen_fleet_mlss` — rare-event fleets: all members' splitting
  trees grow inside **one fused splitting forest** (a
  :class:`~repro.core.forest.VectorizedForestRunner` whose process is
  the fused batch and whose value function normalizes each row by its
  owner's threshold) under a shared normalized level partition.  Root
  allocation is **variance-directed** by default: each round's cohort
  gives every unmet member a root count sized from its *measured*
  bootstrap variance via
  :meth:`~repro.core.quality.QualityTarget.projected_roots`, so
  converged members stop consuming roots while hard members keep
  splitting (``adaptive=False`` restores the uniform
  everyone-rides-until-all-met allocation).  Per-member counters fold
  into per-member g-MLSS estimates exactly as separate forests would.

Per-entity estimates are plain SRS / g-MLSS — each row (or root tree)
is an ordinary independent sample of its owner, so probabilities,
variances and step counts per entity are identical in law to running
the entities separately; only the interleaving of random draws differs.

Cost accounting: one fused ``step_batch`` over ``n`` rows counts ``n``
invocations of ``g``, attributed to each row's owner — a fused pass
reports the same per-entity ``steps`` a separate run would, it just
buys them with ~1/k of the dispatch overhead.

Adaptive cohort sizing
----------------------

With a quality target, fixed per-round cohorts make hard members crawl
to their target in many rounds while easy members stop immediately.
When ``adaptive=True`` (the default) each member's next round is sized
toward *its* remaining need: the target's
:meth:`~repro.core.quality.QualityTarget.projected_roots` plug-in when
available, doubling otherwise, always within
``[batch_roots, max_round_roots]``.  Projections are advisory — the
stopping decision is always ``is_met`` on real counters.

Parallelism
-----------

All three passes accept a :class:`~repro.core.pool.WorkerPool`: the
fleet shards into fixed member slices of ``members_per_task``, each
slice screened to completion through its own fused frontier on a
worker, with slice seeds derived from the slice index.  Fixed slicing
makes pooled fleet results **byte-identical for any worker count**;
pooled and unsharded runs differ only in stream layout (they agree in
distribution, like any two seedings).
"""

from __future__ import annotations

import random
import time
from typing import Optional, Sequence

import numpy as np

from ..processes.base import FusedBatch, batch_z_values
from .estimates import DurabilityCurve, DurabilityEstimate
from .levels import LevelPartition, normalize_ratios
from .pool import DEFAULT_MEMBERS_PER_TASK, FleetWork, derive_task_seed
from .quality import QualityTarget
from .records import ForestAggregate, fold_records_by_owner
from .srs import srs_variance
from .value_functions import TARGET_VALUE, batch_values

DEFAULT_MAX_ROUND_ROOTS = 8192


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------

def _require_stopping_rule(quality, max_steps, max_roots) -> None:
    if quality is None and max_steps is None and max_roots is None:
        raise ValueError(
            "provide a quality target, max_steps or max_roots; "
            "otherwise the screening pass would never stop"
        )


def _round_counts(done, round_roots, n_paths, steps, horizon,
                  max_steps, max_roots):
    """Per-member cohort sizes for the next round under the budgets."""
    counts = np.where(done, 0, round_roots)
    if max_roots is not None:
        counts = np.minimum(counts, np.maximum(max_roots - n_paths, 0))
    if max_steps is not None:
        exhausted = steps >= max_steps
        counts = np.where(exhausted, 0, np.minimum(
            counts, (max_steps - steps) // horizon + 1))
    return counts


def _grow_round(adaptive: bool, round_roots, member: int, projected,
                n_observed: int, batch_roots: int,
                max_round_roots: int) -> None:
    """Resize a member's next round toward its remaining need.

    ``n_observed`` is the member's roots (or paths) so far; with a
    projection the next round covers the projected shortfall, floored
    at ``batch_roots`` and capped at ``max_round_roots``; without one
    the round doubles.
    """
    if not adaptive:
        return
    if projected is not None:
        remaining = projected - n_observed
        round_roots[member] = min(max(remaining, batch_roots),
                                  max_round_roots)
    else:
        round_roots[member] = min(round_roots[member] * 2,
                                  max_round_roots)


def _slice_tasks(n_members: int, members_per_task: int,
                 seed: Optional[int]) -> list:
    """Fixed member slices with slice-index-derived seeds.

    The decomposition depends only on ``members_per_task`` — never on
    the worker count — which is what makes pooled fleet results
    invariant under ``n_workers``.
    """
    if members_per_task < 1:
        raise ValueError(
            f"members_per_task must be >= 1, got {members_per_task}")
    return [(lo, min(lo + members_per_task, n_members),
             derive_task_seed(seed, index, salt="fleet"))
            for index, lo in enumerate(
                range(0, n_members, members_per_task))]


def _run_fleet_pooled(pool, work: FleetWork, tasks: list):
    """Register, stream and release one fleet work on the pool.

    A generator yielding results in task order: every slice is
    submitted up front and each result is yielded as soon as it (and
    its predecessors) finish, so callers fold early slices into their
    per-member arrays while straggler slices are still running instead
    of waiting at a full-fleet barrier.  Callers must ``close()`` the
    generator (or exhaust it) so the work is unregistered promptly.
    """
    handle = pool.register(work)
    try:
        stream = pool.stream(handle)
        try:
            seqs = [stream.submit(payload) for payload in tasks]
            for seq in seqs:
                yield stream.collect(seq)
        finally:
            stream.close()
    finally:
        pool.unregister(handle)


# ----------------------------------------------------------------------
# SRS screening (one threshold per member)
# ----------------------------------------------------------------------

def _screen_members(fused: FusedBatch, z, betas, horizon: int,
                    quality, max_steps, max_roots, batch_roots: int,
                    adaptive: bool, max_round_roots: int, rng):
    """Screen one fused frontier to completion; per-member counters.

    The core loop shared by the unsharded pass and every pooled member
    slice.  Returns ``(n_paths, hits, steps, rounds)`` arrays/int.
    """
    k = fused.n_members
    betas = np.asarray(betas, dtype=np.float64)
    n_paths = np.zeros(k, dtype=np.int64)
    hits = np.zeros(k, dtype=np.int64)
    steps = np.zeros(k, dtype=np.int64)
    done = np.zeros(k, dtype=bool)
    round_roots = np.full(k, batch_roots, dtype=np.int64)
    rounds = 0
    lead = fused.members[0]

    while not done.all():
        counts = _round_counts(done, round_roots, n_paths, steps,
                               horizon, max_steps, max_roots)
        done |= counts == 0
        if done.all():
            break
        rounds += 1

        # The frontier keeps owners, thresholds and member parameters
        # row-aligned *outside* the state array (unlike the generic
        # FusedBatch layout): parameters are gathered once per round —
        # not once per step — the hot loop steps a contiguous core
        # buffer in place, and per-member step accounting is a k-length
        # add of live counts instead of a whole-frontier bincount per
        # time step.  On hit events rows and their side arrays filter
        # together.
        owners = np.repeat(np.arange(k), counts)
        states = fused.initial_core_rows(owners)
        row_params = fused.row_params(owners)
        row_betas = betas[owners]
        live = counts.copy()
        for t in range(1, horizon + 1):
            if not len(states):
                break
            states = lead.fused_step_batch(row_params, states, t, rng,
                                           out=states)
            steps += live
            values = batch_z_values(z, states)
            hit = values >= row_betas
            n_hit = int(np.count_nonzero(hit))
            if n_hit:
                hit_counts = np.bincount(owners[hit], minlength=k)
                hits += hit_counts
                live -= hit_counts
                keep = ~hit
                states = states[keep]
                owners = owners[keep]
                row_betas = row_betas[keep]
                row_params = {name: values[keep]
                              for name, values in row_params.items()}
        n_paths += counts

        if quality is not None:
            alive = ~done & (n_paths > 0)
            for member in np.nonzero(alive)[0]:
                probability = hits[member] / n_paths[member]
                if quality.is_met(probability,
                                  srs_variance(probability,
                                               int(n_paths[member])),
                                  int(hits[member]), int(n_paths[member])):
                    done[member] = True
                else:
                    _grow_round(adaptive, round_roots, member,
                                quality.projected_roots(
                                    probability, int(hits[member]),
                                    int(n_paths[member])),
                                int(n_paths[member]), batch_roots,
                                max_round_roots)
    return n_paths, hits, steps, rounds


def screen_fleet(fused: FusedBatch, z, betas: Sequence[float], horizon: int,
                 quality: Optional[QualityTarget] = None,
                 max_steps: Optional[int] = None,
                 max_roots: Optional[int] = None,
                 batch_roots: int = 500,
                 seed: Optional[int] = None,
                 adaptive: bool = True,
                 max_round_roots: int = DEFAULT_MAX_ROUND_ROOTS,
                 pool=None,
                 members_per_task: int = DEFAULT_MEMBERS_PER_TASK) -> list:
    """SRS-answer ``Pr[z >= beta_i within horizon]`` for every member.

    Parameters
    ----------
    fused:
        The stacked fleet (one member per entity).
    z:
        The shared state evaluation; scored row-wise via the batch-``z``
        registry, so fused rows evaluate in one call.
    betas:
        One threshold per member (raw ``z`` scale; per-member).
    horizon:
        Shared query horizon ``s``.
    quality / max_steps / max_roots:
        The stopping rule, applied **per member** exactly as a separate
        :class:`~repro.core.srs.SRSSampler` run would apply it (budgets
        are per-entity, not fleet-wide); at least one must be given.
        As in the vectorized SRS backend, budgets are enforced at
        cohort granularity — every started path runs to its hit or the
        horizon — so ``max_steps`` can overshoot by at most one cohort
        per member.
    batch_roots:
        Baseline paths *per member* between stopping-rule checks (and
        the floor of adaptive rounds).
    seed:
        Seed of the NumPy generator driving the fused frontier (pooled
        runs derive one per member slice).
    adaptive / max_round_roots:
        Grow each unmet member's next round toward its quality target
        (see the module docstring) instead of crawling in fixed
        batches; ``max_round_roots`` caps a single round.
    pool / members_per_task:
        Shard the fleet into fixed member slices over a
        :class:`~repro.core.pool.WorkerPool`; results are invariant
        under the pool's worker count.

    Returns one :class:`DurabilityEstimate` per member, in member
    order, each tagged with ``details["fused"]`` and the fleet size.
    """
    _require_stopping_rule(quality, max_steps, max_roots)
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    k = fused.n_members
    betas = tuple(float(b) for b in betas)
    if len(betas) != k:
        raise ValueError(f"{len(betas)} thresholds for {k} fleet members")
    started = time.perf_counter()

    if pool is not None and k > 1:
        tasks = _slice_tasks(k, members_per_task, seed)
        work = FleetWork(
            mode="screen", processes=fused.members, z=z, horizon=horizon,
            betas=betas, quality=quality, max_steps=max_steps,
            max_roots=max_roots, batch_roots=batch_roots,
            adaptive=adaptive, max_round_roots=max_round_roots)
        n_paths = np.zeros(k, dtype=np.int64)
        hits = np.zeros(k, dtype=np.int64)
        steps = np.zeros(k, dtype=np.int64)
        rounds = 0
        results = _run_fleet_pooled(pool, work, tasks)
        try:
            for (lo, hi, _), result in zip(tasks, results):
                n_paths[lo:hi], hits[lo:hi], steps[lo:hi] = \
                    result[0], result[1], result[2]
                rounds = max(rounds, result[3])
        finally:
            results.close()
    else:
        n_paths, hits, steps, rounds = _screen_members(
            fused, z, betas, horizon, quality, max_steps, max_roots,
            batch_roots, adaptive, max_round_roots,
            np.random.default_rng(seed))

    elapsed = time.perf_counter() - started
    estimates = []
    for member in range(k):
        paths = int(n_paths[member])
        probability = hits[member] / paths if paths else 0.0
        estimates.append(DurabilityEstimate(
            probability=probability,
            variance=srs_variance(probability, paths),
            n_roots=paths, hits=int(hits[member]),
            steps=int(steps[member]), method="srs",
            elapsed_seconds=elapsed,
            details={"fused": True, "fleet_size": k, "rounds": rounds},
        ))
    return estimates


# ----------------------------------------------------------------------
# SRS curve screening (one threshold grid per member)
# ----------------------------------------------------------------------

def validate_grids(grids, k: int) -> list:
    """Per-member raw threshold grids: non-empty, positive, ascending.

    Shared input validation for every grid-shaped entry point
    (:func:`screen_fleet_curves` and the engine's
    ``durability_curves``); returns the grids as tuples of floats.
    """
    if len(grids) != k:
        raise ValueError(f"{len(grids)} threshold grids for {k} members")
    validated = []
    for member, grid in enumerate(grids):
        values = [float(b) for b in grid]
        if not values:
            raise ValueError(f"member {member} has an empty grid")
        if values[0] <= 0.0:
            raise ValueError(
                f"member {member} thresholds must be positive, got "
                f"{values[0]}")
        for lo, hi in zip(values, values[1:]):
            if lo >= hi:
                raise ValueError(
                    f"member {member} thresholds must be strictly "
                    f"ascending, got {lo} before {hi}")
        validated.append(tuple(values))
    return validated


def _fold_maxima(counts, owners, best, grids, k: int) -> None:
    """Credit surviving rows' running maxima against their owners' grids."""
    for member in range(k):
        rows = owners == member
        if not rows.any():
            continue
        member_best = best[rows]
        grid = np.asarray(grids[member])
        counts[member] += (member_best[:, None]
                           >= grid[None, :]).sum(axis=0)


def _curve_members(fused: FusedBatch, z, grids, horizon: int,
                   quality, max_steps, max_roots, batch_roots: int,
                   adaptive: bool, max_round_roots: int, rng):
    """One fused pass answering every member's whole threshold grid.

    Extends the screening frontier with *running maxima per owner row*:
    a row stays live until it clears its owner's **top** threshold (or
    the horizon), and its maximum then credits every grid level at or
    below it.  Returns ``(level_counts, n_paths, steps, rounds)``.
    """
    k = fused.n_members
    tops = np.asarray([grid[-1] for grid in grids], dtype=np.float64)
    counts = [np.zeros(len(grid), dtype=np.int64) for grid in grids]
    n_paths = np.zeros(k, dtype=np.int64)
    steps = np.zeros(k, dtype=np.int64)
    done = np.zeros(k, dtype=bool)
    round_roots = np.full(k, batch_roots, dtype=np.int64)
    rounds = 0
    lead = fused.members[0]

    while not done.all():
        cohort = _round_counts(done, round_roots, n_paths, steps,
                               horizon, max_steps, max_roots)
        done |= cohort == 0
        if done.all():
            break
        rounds += 1

        owners = np.repeat(np.arange(k), cohort)
        states = fused.initial_core_rows(owners)
        row_params = fused.row_params(owners)
        row_tops = tops[owners]
        best = np.zeros(len(owners), dtype=np.float64)
        live = cohort.copy()
        for t in range(1, horizon + 1):
            if not len(states):
                break
            states = lead.fused_step_batch(row_params, states, t, rng,
                                           out=states)
            steps += live
            np.maximum(best, batch_z_values(z, states), out=best)
            reached = best >= row_tops
            n_reached = int(np.count_nonzero(reached))
            if n_reached:
                # Rows at their owner's top threshold hit every grid
                # level at once and retire (nothing left to learn).
                reached_counts = np.bincount(owners[reached], minlength=k)
                live -= reached_counts
                for member in np.nonzero(reached_counts)[0]:
                    counts[member] += reached_counts[member]
                keep = ~reached
                states = states[keep]
                owners = owners[keep]
                row_tops = row_tops[keep]
                best = best[keep]
                row_params = {name: values[keep]
                              for name, values in row_params.items()}
        _fold_maxima(counts, owners, best, grids, k)
        n_paths += cohort

        if quality is not None:
            alive = ~done & (n_paths > 0)
            for member in np.nonzero(alive)[0]:
                n = int(n_paths[member])
                met = True
                worst_projection = None
                for level_hits in counts[member]:
                    probability = level_hits / n
                    if not quality.is_met(
                            probability, srs_variance(probability, n),
                            int(level_hits), n):
                        met = False
                        projected = quality.projected_roots(
                            probability, int(level_hits), n)
                        if projected is not None:
                            worst_projection = max(
                                worst_projection or 0, projected)
                if met:
                    done[member] = True
                else:
                    _grow_round(adaptive, round_roots, member,
                                worst_projection, int(n_paths[member]),
                                batch_roots, max_round_roots)
    return counts, n_paths, steps, rounds


def screen_fleet_curves(fused: FusedBatch, z, grids, horizon: int,
                        quality: Optional[QualityTarget] = None,
                        max_steps: Optional[int] = None,
                        max_roots: Optional[int] = None,
                        batch_roots: int = 500,
                        seed: Optional[int] = None,
                        adaptive: bool = True,
                        max_round_roots: int = DEFAULT_MAX_ROUND_ROOTS,
                        pool=None,
                        members_per_task: int = DEFAULT_MEMBERS_PER_TASK
                        ) -> list:
    """Answer every member's whole durability curve from one fused pass.

    ``grids`` holds one ascending raw-threshold grid per member (grids
    may differ in values *and* length).  Each member's answer is a
    :class:`~repro.core.estimates.DurabilityCurve` whose estimates
    share that member's sample paths — individually unbiased,
    positively correlated across thresholds, exactly like
    :meth:`~repro.core.srs.SRSSampler.run_curve` — while the whole
    fleet shares one frontier.  A quality target must hold at **every**
    grid level of a member before that member stops early.

    Other parameters match :func:`screen_fleet`; with a pool the fleet
    shards into fixed member slices (results invariant under the worker
    count).
    """
    _require_stopping_rule(quality, max_steps, max_roots)
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    k = fused.n_members
    grids = validate_grids(grids, k)
    started = time.perf_counter()

    if pool is not None and k > 1:
        tasks = _slice_tasks(k, members_per_task, seed)
        work = FleetWork(
            mode="curves", processes=fused.members, z=z, horizon=horizon,
            grids=tuple(grids), quality=quality, max_steps=max_steps,
            max_roots=max_roots, batch_roots=batch_roots,
            adaptive=adaptive, max_round_roots=max_round_roots)
        counts = [None] * k
        n_paths = np.zeros(k, dtype=np.int64)
        steps = np.zeros(k, dtype=np.int64)
        rounds = 0
        results = _run_fleet_pooled(pool, work, tasks)
        try:
            for (lo, hi, _), result in zip(tasks, results):
                slice_counts, slice_n, slice_steps, slice_rounds = result
                for offset, member_counts in enumerate(slice_counts):
                    counts[lo + offset] = np.asarray(member_counts,
                                                     dtype=np.int64)
                n_paths[lo:hi] = slice_n
                steps[lo:hi] = slice_steps
                rounds = max(rounds, slice_rounds)
        finally:
            results.close()
    else:
        counts, n_paths, steps, rounds = _curve_members(
            fused, z, grids, horizon, quality, max_steps, max_roots,
            batch_roots, adaptive, max_round_roots,
            np.random.default_rng(seed))

    elapsed = time.perf_counter() - started
    curves = []
    for member in range(k):
        grid = grids[member]
        top = grid[-1]
        paths = int(n_paths[member])
        member_steps = int(steps[member])
        estimates = []
        for level_hits in counts[member]:
            probability = level_hits / paths if paths else 0.0
            estimates.append(DurabilityEstimate(
                probability=probability,
                variance=srs_variance(probability, paths),
                n_roots=paths, hits=int(level_hits), steps=member_steps,
                method="srs", elapsed_seconds=elapsed,
                details={"shared_pass": True, "fused": True},
            ))
        curves.append(DurabilityCurve(
            thresholds=grid,
            levels=tuple(b / top for b in grid),
            estimates=tuple(estimates), method="srs", n_roots=paths,
            steps=member_steps, elapsed_seconds=elapsed,
            details={"fused": True, "fleet_size": k, "rounds": rounds},
        ))
    return curves


# ----------------------------------------------------------------------
# Fused MLSS screening (rare-event fleets, one splitting forest)
# ----------------------------------------------------------------------

class FleetThresholdValue:
    """Per-owner normalized threshold value over fused state rows.

    The fused analogue of :class:`~repro.core.value_functions.
    ThresholdValueFunction`: row ``i`` scores
    ``clip(z(core_i) / beta_owner(i), 0, 1)``, so one fused splitting
    forest runs every member against *its own* threshold under a shared
    normalized level partition.
    """

    def __init__(self, z, betas):
        self.z = z
        self.betas = np.asarray(betas, dtype=np.float64)

    def batch(self, states, t) -> np.ndarray:
        states = np.asarray(states)
        owners = states[:, -1].astype(np.intp)
        raw = batch_z_values(self.z, states)
        return np.clip(raw / self.betas[owners], 0.0, TARGET_VALUE)

    def __call__(self, state, t) -> float:
        row = np.asarray(state, dtype=np.float64).reshape(1, -1)
        return float(self.batch(row, t)[0])


def cluster_members_by_initial(scores, tolerance: float = 0.1) -> list:
    """Cluster fleet members by normalized initial score.

    One shared partition pruned against the *worst* member's normalized
    initial score strips the low boundaries from every other member —
    members far below the worst lose their whole lower ladder.
    Clustering fixes that: members whose normalized initial scores lie
    within ``tolerance`` of a cluster's lowest score share a cluster
    (greedy sweep over the sorted scores), and each cluster gets its
    own partition pruned only against *its* worst member.

    Returns a list of member-index lists — each ascending, clusters
    ordered by their first member — covering every member exactly once.
    The grouping depends only on ``scores`` and ``tolerance``, so it is
    deterministic across runs and worker counts.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size == 0:
        return []
    order = np.argsort(scores, kind="stable")
    clusters = []
    current = [int(order[0])]
    base = float(scores[order[0]])
    for raw in order[1:]:
        index = int(raw)
        if float(scores[index]) - base > tolerance:
            clusters.append(sorted(current))
            current = [index]
            base = float(scores[index])
        else:
            current.append(index)
    clusters.append(sorted(current))
    clusters.sort(key=lambda members: members[0])
    return clusters


class _FleetQuery:
    """Duck-typed query over a fused batch for the forest runner.

    ``initial_value`` is the *maximum* normalized initial score over
    members: every member's boundaries must exceed its own start, and
    the shared partition must therefore clear the worst one.
    """

    def __init__(self, fused: FusedBatch, value_function, horizon: int):
        self.process = fused
        self.value_function = value_function
        self.horizon = horizon

    def initial_value(self) -> float:
        rows = self.process.initial_states(self.process.n_members)
        return float(batch_values(self.value_function, rows, 0).max())


#: First per-member root count at which the MLSS stopping rule (and
#: its bootstrap) is evaluated; later checks grow geometrically.
_FIRST_CHECK_ROOTS = 200


def _mlss_members(fused: FusedBatch, z, betas, partition: LevelPartition,
                  ratio, horizon: int, quality, max_steps, max_roots,
                  batch_roots: int, bootstrap_rounds: int,
                  seed: Optional[int], adaptive: bool = True,
                  max_round_roots: int = DEFAULT_MAX_ROUND_ROOTS) -> list:
    """Grow one fused splitting forest; per-member g-MLSS folds.

    With ``adaptive=True`` each round's cohort is composed per member:
    an unmet member contributes a root run sized by
    :meth:`~repro.core.quality.QualityTarget.projected_roots` fed its
    *measured* bootstrap variance (doubling when no projection is
    available), clamped to ``[batch_roots, max_round_roots]``; met
    members (and members out of budget) contribute nothing.  The
    cohort's state rows come from
    :meth:`~repro.processes.base.FusedBatch.initial_states_for`, laid
    out as contiguous owner runs, and fold back per owner via
    :func:`~repro.core.records.fold_records_by_owner` — so every
    member's aggregate is exactly what its own forest would have
    produced, only the interleaving of draws differs.

    With ``adaptive=False`` root trees are allocated *uniformly*
    (``batch_roots`` per member per round) and every member keeps
    riding the shared frontier until the whole slice stops — the
    pre-variance-directed behaviour, kept as the benchmark baseline.

    Returns one ``(probability, variance, n_roots, hits, steps)``
    tuple per member.
    """
    from .bootstrap import bootstrap_variance
    from .forest import VectorizedForestRunner
    from .gmlss import gmlss_point_estimate

    k = fused.n_members
    ratios = normalize_ratios(ratio, partition.num_levels)
    value_fn = FleetThresholdValue(z, betas)
    query = _FleetQuery(fused, value_fn, horizon)
    runner = VectorizedForestRunner(query, partition, ratios,
                                    np.random.default_rng(seed))
    aggregates = [ForestAggregate(partition.num_levels) for _ in range(k)]
    boot_base = random.Random(seed).randrange(2 ** 31)

    if adaptive:
        checked = _mlss_grow_adaptive(fused, runner, aggregates, quality,
                                      max_steps, max_roots, batch_roots,
                                      max_round_roots, bootstrap_rounds,
                                      boot_base, ratios)
    else:
        checked = _mlss_grow_uniform(runner, aggregates, quality,
                                     max_steps, max_roots, batch_roots,
                                     bootstrap_rounds, boot_base, ratios)

    rows = []
    for member, aggregate in enumerate(aggregates):
        probability = gmlss_point_estimate(aggregate, ratios)
        # Report the bootstrap variance from the member's *last stopping
        # check* when the aggregate has not grown since: a member that
        # stopped because its target was met must report the draw that
        # justified stopping, or borderline members flip to "unmet" on a
        # fresh resample of the identical aggregate.
        stored = checked.get(member)
        if aggregate.n_roots <= 1:
            variance = 0.0
        elif stored is not None and stored[0] == aggregate.n_roots:
            variance = stored[1]
        else:
            variance = bootstrap_variance(
                aggregate, ratios, n_boot=bootstrap_rounds,
                seed=(boot_base + 7919 * member) % (2 ** 31)).variance
        rows.append((float(probability), float(variance),
                     aggregate.n_roots, aggregate.hits, aggregate.steps))
    return rows


def _mlss_grow_uniform(runner, aggregates, quality, max_steps, max_roots,
                       batch_roots: int, bootstrap_rounds: int,
                       boot_base: int, ratios) -> dict:
    """Uniform allocation: ``batch_roots`` per member until all stop.

    Returns each member's last stopping-check bootstrap, as
    ``{member: (n_roots_at_check, variance)}`` — the caller reports the
    checked variance when the aggregate has not grown since.
    """
    from .bootstrap import bootstrap_variance
    from .gmlss import gmlss_point_estimate

    checked = {}
    next_check = _FIRST_CHECK_ROOTS
    evaluations = 0
    while True:
        per_member = batch_roots
        if max_roots is not None:
            per_member = min(per_member,
                             max_roots - aggregates[0].n_roots)
        if max_steps is not None and all(
                aggregate.steps >= max_steps for aggregate in aggregates):
            break
        if per_member <= 0:
            break
        # FusedBatch.initial_states spreads a cohort of per_member * k
        # roots as contiguous equal runs per member, so root j belongs
        # to member j // per_member.
        records = runner.run_cohort(per_member * len(aggregates))
        for member, aggregate in enumerate(aggregates):
            aggregate.extend(
                records[member * per_member:(member + 1) * per_member])
        if quality is not None and aggregates[0].n_roots >= next_check:
            evaluations += 1

            def _is_met(member, aggregate):
                variance = bootstrap_variance(
                    aggregate, ratios, n_boot=bootstrap_rounds,
                    seed=(boot_base + 7919 * member
                          + evaluations) % (2 ** 31)).variance
                checked[member] = (aggregate.n_roots, variance)
                return quality.is_met(
                    gmlss_point_estimate(aggregate, ratios), variance,
                    aggregate.hits, aggregate.n_roots)

            if all(_is_met(member, aggregate)
                   for member, aggregate in enumerate(aggregates)):
                break
            next_check = max(next_check + 1, int(next_check * 1.5))
    return checked


def _mlss_grow_adaptive(fused: FusedBatch, runner, aggregates, quality,
                        max_steps, max_roots, batch_roots: int,
                        max_round_roots: int, bootstrap_rounds: int,
                        boot_base: int, ratios) -> dict:
    """Variance-directed allocation: per-member rounds, checks, growth.

    Returns each member's last stopping-check bootstrap, as
    ``{member: (n_roots_at_check, variance)}`` — the caller reports the
    checked variance when the aggregate has not grown since (a met
    member's aggregate never grows after the check that met it).
    """
    from .bootstrap import bootstrap_variance
    from .gmlss import gmlss_point_estimate

    checked = {}
    k = len(aggregates)
    done = np.zeros(k, dtype=bool)
    round_roots = np.full(k, batch_roots, dtype=np.int64)
    next_check = np.full(k, _FIRST_CHECK_ROOTS, dtype=np.int64)
    evaluations = np.zeros(k, dtype=np.int64)

    while not done.all():
        counts = np.where(done, 0, round_roots)
        for member in range(k):
            if counts[member] == 0:
                continue
            if max_roots is not None:
                counts[member] = min(
                    counts[member],
                    max(max_roots - aggregates[member].n_roots, 0))
            if max_steps is not None \
                    and aggregates[member].steps >= max_steps:
                counts[member] = 0
        done |= counts == 0
        if done.all():
            break
        owners = np.repeat(np.arange(k), counts)
        records = runner.run_cohort(
            int(counts.sum()),
            initial_states=fused.initial_states_for(counts))
        fold_records_by_owner(records, owners, aggregates)
        if quality is None:
            continue
        for member in range(k):
            if done[member]:
                continue
            aggregate = aggregates[member]
            if aggregate.n_roots < next_check[member]:
                continue
            evaluations[member] += 1
            probability = gmlss_point_estimate(aggregate, ratios)
            variance = bootstrap_variance(
                aggregate, ratios, n_boot=bootstrap_rounds,
                seed=(boot_base + 7919 * member
                      + int(evaluations[member])) % (2 ** 31)).variance
            checked[member] = (aggregate.n_roots, variance)
            if quality.is_met(probability, variance, aggregate.hits,
                              aggregate.n_roots):
                done[member] = True
                continue
            next_check[member] = max(next_check[member] + 1,
                                     int(next_check[member] * 1.5))
            _grow_round(True, round_roots, member,
                        quality.projected_roots(
                            probability, aggregate.hits,
                            aggregate.n_roots, variance=variance),
                        aggregate.n_roots, batch_roots, max_round_roots)
    return checked


def screen_fleet_mlss(fused: FusedBatch, z, betas: Sequence[float],
                      partition: LevelPartition, horizon: int, ratio=3,
                      quality: Optional[QualityTarget] = None,
                      max_steps: Optional[int] = None,
                      max_roots: Optional[int] = None,
                      batch_roots: int = 100,
                      bootstrap_rounds: int = 200,
                      seed: Optional[int] = None,
                      adaptive: bool = True,
                      max_round_roots: int = DEFAULT_MAX_ROUND_ROOTS,
                      pool=None,
                      members_per_task: int = DEFAULT_MEMBERS_PER_TASK
                      ) -> list:
    """g-MLSS-answer a rare-event fleet through one fused splitting forest.

    ``partition`` is a *normalized* level plan shared by every member
    (each member's raw boundaries are ``beta_member * level``); its
    boundaries must exceed every member's normalized initial score —
    prune with ``partition.pruned_above(...)`` against the worst
    member, as the engine does (or cluster members by normalized
    initial score with :func:`cluster_members_by_initial` and screen
    each cluster under its own pruned plan).  ``max_roots`` counts
    root trees *per member*.

    ``adaptive`` (default) makes root allocation variance-directed:
    each unmet member's next round is sized by its quality target's
    :meth:`~repro.core.quality.QualityTarget.projected_roots` fed the
    member's measured bootstrap variance, within
    ``[batch_roots, max_round_roots]``, and members that meet their
    target stop consuming roots.  ``adaptive=False`` restores uniform
    allocation (``batch_roots`` per member per round, everyone riding
    until the whole fleet stops — the hardest member's demand bounds
    the run).  Either way estimates are per-member g-MLSS with
    bootstrap variances, exchangeable with per-entity forests.

    With a pool the fleet shards into fixed member slices, each slice
    growing its own fused forest on a worker with adaptive allocation
    applied *within* the slice (results invariant under the worker
    count).
    """
    _require_stopping_rule(quality, max_steps, max_roots)
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    k = fused.n_members
    betas = tuple(float(b) for b in betas)
    if len(betas) != k:
        raise ValueError(f"{len(betas)} thresholds for {k} fleet members")
    # Fail fast on an unusable plan before any worker sees it.
    from .forest import validate_plan
    validate_plan(_FleetQuery(fused, FleetThresholdValue(z, betas),
                              horizon), partition)
    started = time.perf_counter()

    if pool is not None and k > 1:
        tasks = _slice_tasks(k, members_per_task, seed)
        work = FleetWork(
            mode="mlss", processes=fused.members, z=z, horizon=horizon,
            betas=betas, partition=partition, ratio=ratio,
            quality=quality, max_steps=max_steps, max_roots=max_roots,
            batch_roots=batch_roots, bootstrap_rounds=bootstrap_rounds,
            adaptive=adaptive, max_round_roots=max_round_roots)
        rows = [None] * k
        results = _run_fleet_pooled(pool, work, tasks)
        try:
            for (lo, hi, _), result in zip(tasks, results):
                rows[lo:hi] = result
        finally:
            results.close()
    else:
        rows = _mlss_members(
            fused, z, betas, partition, ratio, horizon, quality,
            max_steps, max_roots, batch_roots, bootstrap_rounds, seed,
            adaptive=adaptive, max_round_roots=max_round_roots)

    elapsed = time.perf_counter() - started
    estimates = []
    for probability, variance, n_roots, hits, steps in rows:
        estimates.append(DurabilityEstimate(
            probability=probability, variance=variance,
            n_roots=n_roots, hits=hits, steps=steps, method="gmlss",
            elapsed_seconds=elapsed,
            details={"fused": True, "fleet_size": k,
                     "partition": partition},
        ))
    return estimates
