"""Fused fleet screening: many entities, one simulation frontier.

The paper's fleet scenarios — "which of these servers will breach the
SLA backlog within the horizon?", "which of these stocks stays above
its strike?" — ask the *same shape* of query of hundreds of entities
whose processes differ only in parameters.  The engine's cohort pass
(one shared simulation per process object) cannot help there: each
entity is its own process, so each pays the per-call dispatch overhead
of its own simulation loop at every time step.

This module screens the whole fleet through **one** frontier built on
:class:`repro.processes.base.FusedBatch`: every live path of every
entity advances in a single ``step_batch`` per time step, with
per-entity parameters broadcast by the fused owner column and
per-entity thresholds compared row-wise.  Per-entity estimates are
plain SRS — each row is an ordinary independent sample path of its
owner, so probabilities, variances and step counts per entity are
identical in law to running the entities separately; only the
interleaving of random draws differs.

Cost accounting: one fused ``step_batch`` over ``n`` rows counts ``n``
invocations of ``g``, attributed to each row's owner — the fused pass
reports the same per-entity ``steps`` a separate run would, it just
buys them with ~1/k of the dispatch overhead.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..processes.base import FusedBatch, batch_z_values
from .estimates import DurabilityEstimate
from .quality import QualityTarget
from .srs import srs_variance


def screen_fleet(fused: FusedBatch, z, betas: Sequence[float], horizon: int,
                 quality: Optional[QualityTarget] = None,
                 max_steps: Optional[int] = None,
                 max_roots: Optional[int] = None,
                 batch_roots: int = 500,
                 seed: Optional[int] = None) -> list:
    """SRS-answer ``Pr[z >= beta_i within horizon]`` for every member.

    Parameters
    ----------
    fused:
        The stacked fleet (one member per entity).
    z:
        The shared state evaluation; scored row-wise via the batch-``z``
        registry, so fused rows evaluate in one call.
    betas:
        One threshold per member (raw ``z`` scale; per-member).
    horizon:
        Shared query horizon ``s``.
    quality / max_steps / max_roots:
        The stopping rule, applied **per member** exactly as a separate
        :class:`~repro.core.srs.SRSSampler` run would apply it (budgets
        are per-entity, not fleet-wide); at least one must be given.
        As in the vectorized SRS backend, budgets are enforced at
        cohort granularity — every started path runs to its hit or the
        horizon — so ``max_steps`` can overshoot by at most one cohort
        per member.
    batch_roots:
        Paths *per member* between stopping-rule checks.
    seed:
        Seed of the single NumPy generator driving the fused frontier.

    Returns one :class:`DurabilityEstimate` per member, in member
    order, each tagged with ``details["fused"]`` and the fleet size.
    """
    if quality is None and max_steps is None and max_roots is None:
        raise ValueError(
            "provide a quality target, max_steps or max_roots; "
            "otherwise the screening pass would never stop"
        )
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    k = fused.n_members
    betas = np.asarray(betas, dtype=np.float64)
    if len(betas) != k:
        raise ValueError(f"{len(betas)} thresholds for {k} fleet members")

    rng = np.random.default_rng(seed)
    n_paths = np.zeros(k, dtype=np.int64)
    hits = np.zeros(k, dtype=np.int64)
    steps = np.zeros(k, dtype=np.int64)
    done = np.zeros(k, dtype=bool)
    lead = fused.members[0]
    started = time.perf_counter()

    while not done.all():
        # Per-member cohort sizes under the remaining budgets; members
        # whose budgets are exhausted stop contributing rows.
        counts = np.where(done, 0, batch_roots)
        if max_roots is not None:
            counts = np.minimum(counts, np.maximum(max_roots - n_paths, 0))
        if max_steps is not None:
            exhausted = steps >= max_steps
            counts = np.where(exhausted, 0, np.minimum(
                counts, (max_steps - steps) // horizon + 1))
        done |= counts == 0
        if done.all():
            break

        # The frontier keeps owners, thresholds and member parameters
        # row-aligned *outside* the state array (unlike the generic
        # FusedBatch layout): parameters are gathered once per round —
        # not once per step — the hot loop steps a contiguous core
        # buffer in place, and per-member step accounting is a k-length
        # add of live counts instead of a whole-frontier bincount per
        # time step.  On hit events rows and their side arrays filter
        # together.
        owners = np.repeat(np.arange(k), counts)
        states = fused.initial_core_rows(owners)
        row_params = fused.row_params(owners)
        row_betas = betas[owners]
        live = counts.copy()
        for t in range(1, horizon + 1):
            if not len(states):
                break
            states = lead.fused_step_batch(row_params, states, t, rng,
                                           out=states)
            steps += live
            values = batch_z_values(z, states)
            hit = values >= row_betas
            n_hit = int(np.count_nonzero(hit))
            if n_hit:
                hit_counts = np.bincount(owners[hit], minlength=k)
                hits += hit_counts
                live -= hit_counts
                keep = ~hit
                states = states[keep]
                owners = owners[keep]
                row_betas = row_betas[keep]
                row_params = {name: values[keep]
                              for name, values in row_params.items()}
        n_paths += counts

        if quality is not None:
            alive = ~done & (n_paths > 0)
            for member in np.nonzero(alive)[0]:
                probability = hits[member] / n_paths[member]
                if quality.is_met(probability,
                                  srs_variance(probability,
                                               int(n_paths[member])),
                                  int(hits[member]), int(n_paths[member])):
                    done[member] = True

    elapsed = time.perf_counter() - started
    estimates = []
    for member in range(k):
        paths = int(n_paths[member])
        probability = hits[member] / paths if paths else 0.0
        estimates.append(DurabilityEstimate(
            probability=probability,
            variance=srs_variance(probability, paths),
            n_roots=paths, hits=int(hits[member]),
            steps=int(steps[member]), method="srs",
            elapsed_seconds=elapsed,
            details={"fused": True, "fleet_size": k},
        ))
    return estimates
