"""The splitting-forest simulator shared by s-MLSS and g-MLSS.

Both MLSS variants run exactly the same simulation (Sections 3.1 and
4.1): root paths start in ``L_0``; whenever a path first reaches a level
above the one it was born in, it stops and spawns ``r`` offspring from
the entrance state; offspring that reach higher levels split in turn.
The variants differ only in how the resulting counters are folded into
an estimate — which is why "blindly applying s-MLSS" to a process with
level skipping (the paper's Table 6) is literally reading the same run
through the wrong formula.

Bookkeeping per path (born at level ``b``):

* lands in level ``j > b`` (value in ``[beta_j, beta_{j+1})``):
  ``landings[j] += 1``; skipped levels ``k in (b, j)`` get
  ``skips[k] += 1``; the path splits into ``r_j`` offspring.
* hits the target (value ``>= 1``): ``hits += 1``; skipped levels
  ``k in (b, m)`` get ``skips[k] += 1``.
* either way the path *crossed* ``beta_{b+1}``, which increments its
  parent split's crossing counter (the numerator of ``mu(h)``).
* reaches the horizon without leaving level ``b``: nothing to record.

The simulation is iterative (explicit stack), so deep level hierarchies
cannot overflow Python's recursion limit.
"""

from __future__ import annotations

import random

from .levels import LevelPartition, normalize_ratios
from .records import RootRecord
from .value_functions import TARGET_VALUE, DurabilityQuery


class LevelPlanError(ValueError):
    """Raised when a partition plan is inconsistent with the query."""


class ForestRunner:
    """Simulates splitting trees for one (query, partition, ratios) setup.

    Parameters
    ----------
    query:
        The durability query (process, value function, horizon).
    partition:
        Level partition plan ``B``.  Every boundary must exceed the
        initial state's value; use ``partition.pruned_above(...)`` or
        let the engine do it.
    ratios:
        Fixed splitting ratio ``r`` (int) or per-level ratios for
        ``L_1 .. L_{m-1}``.
    rng:
        Random source driving all simulation.
    """

    def __init__(self, query: DurabilityQuery, partition: LevelPartition,
                 ratios, rng: random.Random):
        initial_value = query.initial_value()
        if initial_value >= TARGET_VALUE:
            raise LevelPlanError(
                "initial state already satisfies the query; the answer "
                "is trivially 1"
            )
        if partition.boundaries and partition.boundaries[0] <= initial_value:
            raise LevelPlanError(
                f"boundary {partition.boundaries[0]} does not exceed the "
                f"initial state's value {initial_value}; prune the plan "
                f"with partition.pruned_above(initial_value)"
            )
        self.query = query
        self.partition = partition
        self.ratios = normalize_ratios(ratios, partition.num_levels)
        self.rng = rng

    def run_root(self) -> RootRecord:
        """Simulate one root path and its full splitting tree."""
        query = self.query
        process = query.process
        step = process.step
        copy_state = process.copy_state
        value_fn = query.value_function
        level_of = self.partition.level_of
        ratios = self.ratios
        horizon = query.horizon
        num_levels = self.partition.num_levels
        rng = self.rng

        record = RootRecord(num_levels)
        landings = record.landings
        skips = record.skips
        # Per-split crossing counters: splits[k] = [level, crossed].
        splits = []
        # Work stack of pending path segments.
        stack = [(process.initial_state(), 0, 0, -1)]
        steps = 0
        hits = 0

        while stack:
            state, t, born, parent = stack.pop()
            crossed = False
            while t < horizon:
                t += 1
                state = step(state, t, rng)
                steps += 1
                value = value_fn(state, t)
                if value >= TARGET_VALUE:
                    hits += 1
                    for k in range(born + 1, num_levels):
                        skips[k] += 1
                    crossed = True
                    break
                level = level_of(value)
                if level > born:
                    for k in range(born + 1, level):
                        skips[k] += 1
                    landings[level] += 1
                    ratio = ratios[level]
                    split_slot = len(splits)
                    splits.append([level, 0])
                    if t < horizon:
                        for _ in range(ratio):
                            stack.append(
                                (copy_state(state), t, level, split_slot)
                            )
                    # Landing exactly at the horizon leaves the offspring
                    # no time: mu(h) = 0, recorded implicitly by the
                    # split having zero crossings.
                    crossed = True
                    break
            if crossed and parent >= 0:
                splits[parent][1] += 1

        crossings = record.crossings
        for level, n_crossed in splits:
            crossings[level] += n_crossed
        record.hits = hits
        record.steps = steps
        return record

    def run_roots(self, n_roots: int) -> list:
        """Simulate ``n_roots`` independent root trees."""
        if n_roots < 0:
            raise ValueError(f"n_roots must be >= 0, got {n_roots}")
        return [self.run_root() for _ in range(n_roots)]
