"""The splitting-forest simulator shared by s-MLSS and g-MLSS.

Both MLSS variants run exactly the same simulation (Sections 3.1 and
4.1): root paths start in ``L_0``; whenever a path first reaches a level
above the one it was born in, it stops and spawns ``r`` offspring from
the entrance state; offspring that reach higher levels split in turn.
The variants differ only in how the resulting counters are folded into
an estimate — which is why "blindly applying s-MLSS" to a process with
level skipping (the paper's Table 6) is literally reading the same run
through the wrong formula.

Bookkeeping per path (born at level ``b``):

* lands in level ``j > b`` (value in ``[beta_j, beta_{j+1})``):
  ``landings[j] += 1``; skipped levels ``k in (b, j)`` get
  ``skips[k] += 1``; the path splits into ``r_j`` offspring.
* hits the target (value ``>= 1``): ``hits += 1``; skipped levels
  ``k in (b, m)`` get ``skips[k] += 1``.
* either way the path *crossed* ``beta_{b+1}``, which increments its
  parent split's crossing counter (the numerator of ``mu(h)``).
* reaches the horizon without leaving level ``b``: nothing to record.

The simulation is iterative (explicit stack), so deep level hierarchies
cannot overflow Python's recursion limit.

Two runners produce identical bookkeeping:

* :class:`ForestRunner` — the scalar reference: one path at a time,
  depth-first over the splitting tree.
* :class:`VectorizedForestRunner` — the batched backend: a whole cohort
  of root trees advances breadth-first in time, every live path (roots
  and offspring alike) stepping through one ``step_batch`` call per time
  index.  Splitting events are processed per event — rare next to steps
  — so the hot loop stays NumPy-level.  Per-root counters are collected
  into the same :class:`RootRecord` objects, so the estimators and the
  bootstrap cannot tell the backends apart.

The vectorized runner keeps its live frontier in preallocated,
geometrically-grown buffers (:class:`_Frontier`) and steps processes
that support it in place (``step_batch(..., out=...)``), so huge
cohorts churn almost no allocations per time step.
"""

from __future__ import annotations

import random

import numpy as np

from ..processes.base import as_vectorized
from .levels import LevelPartition, normalize_ratios
from .records import RootRecord
from .value_functions import TARGET_VALUE, DurabilityQuery, batch_values


class _Frontier:
    """Preallocated live-path arrays for the vectorized forest runner.

    The frontier — every live path segment's state plus its root index,
    birth level and parent split slot — changes size on every splitting
    event.  Rebuilding it with ``numpy.concatenate`` allocates four
    fresh arrays per event; this helper instead keeps *buffers* with
    spare capacity (grown geometrically) and compacts survivors +
    offspring into them in place.  Combined with the in-place
    ``step_batch(..., out=...)`` fast path, the hot loop of a large
    cohort allocates almost nothing per time step.

    State buffering engages only for processes with ``supports_out``
    over value-typed arrays (in-place stepping needs a stable buffer);
    otherwise states stay exact-size arrays while the three int arrays
    still reuse their buffers.
    """

    def __init__(self, process, n_roots: int, initial_states=None):
        self.process = process
        if initial_states is None:
            self.states = process.initial_states(n_roots)
        else:
            if len(initial_states) != n_roots:
                raise ValueError(
                    f"{len(initial_states)} initial states for "
                    f"{n_roots} roots")
            self.states = initial_states
        self.size = n_roots
        self._buffered_states = (process.supports_out
                                 and getattr(self.states, "dtype", None)
                                 is not None
                                 and self.states.dtype != object)
        self.roots = np.arange(n_roots)
        self.born = np.zeros(n_roots, dtype=np.int64)
        self.parents = np.full(n_roots, -1, dtype=np.int64)

    def live_states(self) -> np.ndarray:
        if self._buffered_states:
            return self.states[:self.size]
        return self.states

    def live_meta(self):
        """Views of the live ``(roots, born, parents)`` rows."""
        n = self.size
        return self.roots[:n], self.born[:n], self.parents[:n]

    def advance(self, t: int, rng) -> np.ndarray:
        """Step every live path; returns the (possibly in-place) states."""
        view = self.live_states()
        if self._buffered_states:
            return self.process.step_batch(view, t, rng, out=view)
        self.states = self.process.step_batch(view, t, rng)
        return self.states

    @staticmethod
    def _fold_into(buffer: np.ndarray, live: np.ndarray, survivors,
                   appended, total: int) -> np.ndarray:
        """Compact survivors + appended rows into ``buffer``, growing it
        geometrically when capacity runs out; returns the buffer."""
        n_appended = len(appended) if appended is not None else 0
        n_survivors = total - n_appended
        if total > len(buffer):
            shape = (max(total, 2 * len(buffer)),) + buffer.shape[1:]
            buffer = np.empty(shape, dtype=buffer.dtype)
        # The fancy-indexed read allocates a temporary, so writing into
        # the same buffer's prefix is safe.
        buffer[:n_survivors] = live[survivors]
        if n_appended:
            buffer[n_survivors:total] = appended
        return buffer

    def rebuild(self, survivors, offspring, offspring_roots,
                offspring_born, offspring_parents) -> None:
        """Replace the frontier by its survivors plus spawned offspring."""
        n_offspring = len(offspring) if offspring is not None else 0
        live_states = self.live_states()
        roots, born, parents = self.live_meta()
        total = int(np.count_nonzero(survivors)) + n_offspring
        if self._buffered_states:
            self.states = self._fold_into(self.states, live_states,
                                          survivors, offspring, total)
        elif n_offspring:
            self.states = np.concatenate(
                [live_states[survivors], offspring])
        else:
            self.states = live_states[survivors]
        self.roots = self._fold_into(self.roots, roots, survivors,
                                     offspring_roots, total)
        self.born = self._fold_into(self.born, born, survivors,
                                    offspring_born, total)
        self.parents = self._fold_into(self.parents, parents, survivors,
                                       offspring_parents, total)
        self.size = total


class LevelPlanError(ValueError):
    """Raised when a partition plan is inconsistent with the query."""


def validate_plan(query: DurabilityQuery,
                  partition: LevelPartition) -> None:
    """Check a partition plan is usable for the query's initial state."""
    initial_value = query.initial_value()
    if initial_value >= TARGET_VALUE:
        raise LevelPlanError(
            "initial state already satisfies the query; the answer "
            "is trivially 1"
        )
    if partition.boundaries and partition.boundaries[0] <= initial_value:
        raise LevelPlanError(
            f"boundary {partition.boundaries[0]} does not exceed the "
            f"initial state's value {initial_value}; prune the plan "
            f"with partition.pruned_above(initial_value)"
        )


class ForestRunner:
    """Simulates splitting trees for one (query, partition, ratios) setup.

    Parameters
    ----------
    query:
        The durability query (process, value function, horizon).
    partition:
        Level partition plan ``B``.  Every boundary must exceed the
        initial state's value; use ``partition.pruned_above(...)`` or
        let the engine do it.
    ratios:
        Fixed splitting ratio ``r`` (int) or per-level ratios for
        ``L_1 .. L_{m-1}``.
    rng:
        Random source driving all simulation.
    """

    def __init__(self, query: DurabilityQuery, partition: LevelPartition,
                 ratios, rng: random.Random):
        validate_plan(query, partition)
        self.query = query
        self.partition = partition
        self.ratios = normalize_ratios(ratios, partition.num_levels)
        self.rng = rng

    def run_root(self) -> RootRecord:
        """Simulate one root path and its full splitting tree."""
        query = self.query
        process = query.process
        step = process.step
        copy_state = process.copy_state
        value_fn = query.value_function
        level_of = self.partition.level_of
        ratios = self.ratios
        horizon = query.horizon
        num_levels = self.partition.num_levels
        rng = self.rng

        record = RootRecord(num_levels)
        landings = record.landings
        skips = record.skips
        max_level = 0
        # Per-split crossing counters: splits[k] = [level, crossed].
        splits = []
        # Work stack of pending path segments.
        stack = [(process.initial_state(), 0, 0, -1)]
        steps = 0
        hits = 0

        while stack:
            state, t, born, parent = stack.pop()
            crossed = False
            while t < horizon:
                t += 1
                state = step(state, t, rng)
                steps += 1
                value = value_fn(state, t)
                if value >= TARGET_VALUE:
                    hits += 1
                    max_level = num_levels
                    for k in range(born + 1, num_levels):
                        skips[k] += 1
                    crossed = True
                    break
                level = level_of(value)
                if level > born:
                    if level > max_level:
                        max_level = level
                    for k in range(born + 1, level):
                        skips[k] += 1
                    landings[level] += 1
                    ratio = ratios[level]
                    split_slot = len(splits)
                    splits.append([level, 0])
                    if t < horizon:
                        for _ in range(ratio):
                            stack.append(
                                (copy_state(state), t, level, split_slot)
                            )
                    # Landing exactly at the horizon leaves the offspring
                    # no time: mu(h) = 0, recorded implicitly by the
                    # split having zero crossings.
                    crossed = True
                    break
            if crossed and parent >= 0:
                splits[parent][1] += 1

        crossings = record.crossings
        for level, n_crossed in splits:
            crossings[level] += n_crossed
        record.hits = hits
        record.steps = steps
        record.max_level = max_level
        return record

    def run_roots(self, n_roots: int) -> list:
        """Simulate ``n_roots`` independent root trees."""
        if n_roots < 0:
            raise ValueError(f"n_roots must be >= 0, got {n_roots}")
        return [self.run_root() for _ in range(n_roots)]

    def accumulate(self, aggregate, batch_roots: int,
                   max_steps=None, max_roots=None) -> bool:
        """Fold up to ``batch_roots`` more trees into ``aggregate``.

        Budgets are checked before every tree; returns True once a
        budget is exhausted (the sampler's signal to stop).
        """
        for _ in range(batch_roots):
            if max_roots is not None and aggregate.n_roots >= max_roots:
                return True
            if max_steps is not None and aggregate.steps >= max_steps:
                return True
            aggregate.add(self.run_root())
        return False


class VectorizedForestRunner:
    """Batched splitting-forest simulation over a vectorized process.

    Simulates whole *cohorts* of root trees in lock-step: at each time
    index every live path — root segments and all spawned offspring —
    advances through one :meth:`VectorizedProcess.step_batch` call.
    Offspring spawned at time ``t`` join the frontier and take their
    first step at ``t + 1``, exactly as in the scalar runner; only the
    interleaving of independent random draws differs, so all counter
    distributions are unchanged.

    Parameters match :class:`ForestRunner` except that ``rng`` is a
    :class:`numpy.random.Generator`.  Non-vectorized processes are
    wrapped in a :class:`~repro.processes.base.ScalarFallback`
    automatically, which keeps results correct (if not faster).
    """

    def __init__(self, query: DurabilityQuery, partition: LevelPartition,
                 ratios, rng: np.random.Generator):
        validate_plan(query, partition)
        self.query = query
        self.partition = partition
        self.ratios = normalize_ratios(ratios, partition.num_levels)
        self.rng = rng
        self.process = as_vectorized(query.process)
        self._bounds = np.asarray(partition.boundaries, dtype=np.float64)

    def run_cohort(self, n_roots: int, initial_states=None) -> list:
        """Simulate ``n_roots`` root trees; one :class:`RootRecord` each.

        ``initial_states`` overrides the process's default time-0
        cohort with an explicit state array (one row per root, in root
        order) — the hook the fused fleet pass uses to compose a
        cohort with *non-uniform* per-member root counts
        (:meth:`~repro.processes.base.FusedBatch.initial_states_for`).
        """
        if n_roots < 0:
            raise ValueError(f"n_roots must be >= 0, got {n_roots}")
        if n_roots == 0:
            return []
        process = self.process
        value_fn = self.query.value_function
        horizon = self.query.horizon
        num_levels = self.partition.num_levels
        bounds = self._bounds
        ratios = self.ratios
        rng = self.rng

        records = [RootRecord(num_levels) for _ in range(n_roots)]
        steps_per_root = np.zeros(n_roots, dtype=np.int64)
        # Per-split crossing counters: splits[slot] = [root, level, crossed].
        splits = []

        # Preallocated frontier buffers, one row per live path segment.
        frontier = _Frontier(process, n_roots,
                             initial_states=initial_states)

        for t in range(1, horizon + 1):
            if not frontier.size:
                break
            states = frontier.advance(t, rng)
            roots, born, parents = frontier.live_meta()
            steps_per_root += np.bincount(roots, minlength=n_roots)
            values = batch_values(value_fn, states, t)
            hit = values >= TARGET_VALUE
            levels = np.searchsorted(bounds, values, side="right")
            promoted = ~hit & (levels > born)
            event = hit | promoted
            if not event.any():
                continue

            # Events (hits and promotions) are rare relative to steps;
            # handle them path by path while the frontier stays batched.
            spawn_rows, spawn_slots, spawn_levels = [], [], []
            for i in np.nonzero(event)[0]:
                record = records[roots[i]]
                level_born = born[i]
                if hit[i]:
                    record.hits += 1
                    record.max_level = num_levels
                    for k in range(level_born + 1, num_levels):
                        record.skips[k] += 1
                else:
                    level = int(levels[i])
                    if level > record.max_level:
                        record.max_level = level
                    for k in range(level_born + 1, level):
                        record.skips[k] += 1
                    record.landings[level] += 1
                    slot = len(splits)
                    splits.append([roots[i], level, 0])
                    if t < horizon:
                        spawn_rows.append(i)
                        spawn_slots.append(slot)
                        spawn_levels.append(level)
                    # Landing exactly at the horizon leaves the offspring
                    # no time: mu(h) = 0, recorded implicitly by the
                    # split having zero crossings.
                # Either way the path crossed its birth level's upper
                # boundary, which feeds its parent split's counter.
                parent = parents[i]
                if parent >= 0:
                    splits[parent][2] += 1

            survivors = ~event
            if spawn_rows:
                counts = np.asarray([ratios[lv] for lv in spawn_levels])
                offspring = process.replicate(states, spawn_rows, counts)
                frontier.rebuild(
                    survivors, offspring,
                    np.repeat(roots[spawn_rows], counts),
                    np.repeat(spawn_levels, counts),
                    np.repeat(spawn_slots, counts))
            else:
                frontier.rebuild(survivors, None, None, None, None)

        for root, level, crossed in splits:
            records[root].crossings[level] += crossed
        for root, record in enumerate(records):
            record.steps = int(steps_per_root[root])
        return records

    def accumulate(self, aggregate, batch_roots: int,
                   max_steps=None, max_roots=None) -> bool:
        """Fold up to ``batch_roots`` more trees into ``aggregate``.

        Budgets are enforced at cohort granularity: every started tree
        runs to completion (truncating would bias the counters), so
        ``max_steps`` can overshoot by at most one cohort.  Returns True
        once a budget is exhausted.
        """
        cohort = batch_roots
        if max_roots is not None:
            cohort = min(cohort, max_roots - aggregate.n_roots)
        if max_steps is not None and aggregate.steps >= max_steps:
            return True
        if cohort <= 0:
            return True
        aggregate.extend(self.run_cohort(cohort))
        return ((max_roots is not None
                 and aggregate.n_roots >= max_roots)
                or (max_steps is not None
                    and aggregate.steps >= max_steps))
