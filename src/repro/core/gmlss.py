"""g-MLSS: the general Multi-Level Splitting estimator (Section 4).

Without the no-level-skipping assumption, the target probability
decomposes over boundary *crossings* (Eq. 8):

    tau = prod_i pi_i,   pi_i = Pr[cross beta_i | crossed beta_{i-1}].

Each ``pi`` is estimated from the forest counters (Eq. 9):

    pi_hat_1     = (|H_1| + n_skip_1) / N_0
    pi_hat_{i+1} = (sum_{h in H_i} mu(h) + n_skip_i) / (|H_i| + n_skip_i)

where ``mu(h)`` is the fraction of the split state's direct offspring
that crossed the next boundary and ``n_skip_i`` counts paths that passed
``beta_{i+1}`` without landing in ``L_i`` (those crossed deterministically).
With per-level ratios ``sum mu(h) = crossings[i] / r_i``.

The estimator is unbiased in general (Proposition 2).  Its variance has
no closed form, so :class:`GMLSSSampler` estimates it by bootstrapping
the per-root records (Section 4.2); the bootstrap is evaluated on a
conservative geometric schedule, following the paper's rule of thumb
that "sometimes overrunning the simulation a little" beats frequent
bootstrapping.
"""

from __future__ import annotations

import math
import random
import time
from typing import Optional, Sequence

import numpy as np

from .bootstrap import bootstrap_curve_variances, bootstrap_variance
from .estimates import DurabilityCurve, DurabilityEstimate, TracePoint
from .levels import LevelPartition, normalize_ratios
from .quality import QualityTarget
from .records import ForestAggregate
from .smlss import close_runner, make_forest_runner
from .srs import prepare_curve_grid
from .value_functions import DurabilityQuery


def gmlss_estimate_from_totals(landings: Sequence[float],
                               skips: Sequence[float],
                               crossings: Sequence[float],
                               hits: float, n_roots: float,
                               ratios: tuple) -> float:
    """Fold aggregated counters into the g-MLSS estimate (Eq. 9-10).

    Accepts any indexables of per-level totals (length ``m``, index 0
    unused), so the bootstrap can reuse it on resampled sums.
    """
    m = len(landings)
    if n_roots <= 0:
        return 0.0
    if m == 1:
        # No interior boundaries: g-MLSS degenerates to SRS.
        return hits / n_roots
    estimate = (landings[1] + skips[1]) / n_roots
    if estimate == 0.0:
        return 0.0
    for i in range(1, m):
        denominator = landings[i] + skips[i]
        if denominator == 0:
            return 0.0
        numerator = crossings[i] / ratios[i] + skips[i]
        estimate *= numerator / denominator
    return estimate


def gmlss_point_estimate(aggregate: ForestAggregate, ratios: tuple) -> float:
    """The g-MLSS estimate from a forest aggregate."""
    return gmlss_estimate_from_totals(
        aggregate.landings, aggregate.skips, aggregate.crossings,
        aggregate.hits, aggregate.n_roots, ratios)


def gmlss_prefix_estimates_from_totals(landings, skips, crossings,
                                       hits: float, n_roots: float,
                                       ratios: tuple) -> list:
    """All boundary-crossing probabilities from one set of counters.

    The g-MLSS product (Eq. 8) factorizes over boundaries, so its
    *prefixes* are themselves unbiased estimates: the ``i``-th prefix
    estimates ``Pr[cross beta_{i+1}]`` (reach a value-function score of
    at least ``beta_{i+1}`` within the horizon), and the last entry —
    the full product — is the target probability.  Returns a list of
    length ``m = len(landings)``: ``[Pr[cross beta_1], ...,
    Pr[cross beta_{m-1}], Pr[hit target]]``.  This is what lets one
    splitting forest answer a whole threshold grid whose normalized
    thresholds sit on the partition boundaries.
    """
    m = len(landings)
    prefixes = [0.0] * m
    if n_roots <= 0:
        return prefixes
    if m == 1:
        prefixes[0] = hits / n_roots
        return prefixes
    estimate = (landings[1] + skips[1]) / n_roots
    prefixes[0] = estimate
    for i in range(1, m):
        if estimate == 0.0:
            break
        denominator = landings[i] + skips[i]
        if denominator == 0:
            break
        estimate *= (crossings[i] / ratios[i] + skips[i]) / denominator
        prefixes[i] = estimate
    return prefixes


def gmlss_prefix_estimates(aggregate: ForestAggregate,
                           ratios: tuple) -> list:
    """Boundary-crossing probabilities from a forest aggregate."""
    return gmlss_prefix_estimates_from_totals(
        aggregate.landings, aggregate.skips, aggregate.crossings,
        aggregate.hits, aggregate.n_roots, ratios)


def _row_factors(landings: np.ndarray, skips: np.ndarray,
                 crossings: np.ndarray, ratios: tuple) -> np.ndarray:
    """Per-level advancement factors for many counter rows at once.

    ``landings``/``skips``/``crossings`` have shape ``(B, m)`` — one
    row per bootstrap replicate.  Returns the ``(B, m - 1)`` factors of
    the Eq. 9 product for levels ``1 .. m-1``; a zero denominator
    yields a zero factor, which zeroes the running product exactly as
    the scalar fold's early return does.
    """
    denominators = landings[:, 1:] + skips[:, 1:]
    numerators = (crossings[:, 1:] / np.asarray(ratios[1:], dtype=np.float64)
                  + skips[:, 1:])
    return np.divide(numerators, denominators,
                     out=np.zeros_like(numerators),
                     where=denominators > 0)


def gmlss_estimates_from_total_rows(landings, skips, crossings, hits,
                                    n_roots: float, ratios: tuple
                                    ) -> np.ndarray:
    """Vectorized :func:`gmlss_estimate_from_totals` over counter rows.

    Every argument carries a leading replicate axis (``(B, m)`` level
    matrices, ``(B,)`` hits); the whole bootstrap evaluates as one
    gather + fold instead of a Python loop per replicate.  Returns the
    ``(B,)`` estimates — numerically equal to folding each row through
    the scalar function up to floating-point association (the scalar
    fold multiplies factors left-to-right; this one takes ``first *
    prod(factors)``, which can differ in the last ulp).
    """
    landings = np.asarray(landings, dtype=np.float64)
    hits = np.asarray(hits, dtype=np.float64)
    if n_roots <= 0:
        return np.zeros(len(landings), dtype=np.float64)
    if landings.shape[1] == 1:
        return hits / n_roots
    skips = np.asarray(skips, dtype=np.float64)
    first = (landings[:, 1] + skips[:, 1]) / n_roots
    factors = _row_factors(landings, skips,
                           np.asarray(crossings, dtype=np.float64), ratios)
    return first * factors.prod(axis=1)


def gmlss_prefix_estimates_from_total_rows(landings, skips, crossings,
                                           hits, n_roots: float,
                                           ratios: tuple) -> np.ndarray:
    """Vectorized :func:`gmlss_prefix_estimates_from_totals` over rows.

    Returns a ``(B, m)`` matrix of prefix products — all boundary-
    crossing estimates for all replicates — from one cumulative
    product.  Zero factors propagate forward exactly like the scalar
    fold's early ``break``.
    """
    landings = np.asarray(landings, dtype=np.float64)
    hits = np.asarray(hits, dtype=np.float64)
    n_rows, m = landings.shape
    if n_roots <= 0:
        return np.zeros((n_rows, m), dtype=np.float64)
    if m == 1:
        return (hits / n_roots)[:, None]
    skips = np.asarray(skips, dtype=np.float64)
    first = (landings[:, 1] + skips[:, 1]) / n_roots
    factors = _row_factors(landings, skips,
                           np.asarray(crossings, dtype=np.float64), ratios)
    prefixes = np.empty((n_rows, m), dtype=np.float64)
    prefixes[:, 0] = first
    prefixes[:, 1:] = first[:, None] * np.cumprod(factors, axis=1)
    return prefixes


def gmlss_pi_hats(aggregate: ForestAggregate, ratios: tuple) -> list:
    """The per-level advancement estimates ``[pi_hat_1, ..., pi_hat_m]``.

    Levels that no path ever crossed report 0.0 advancement.  Also used
    by the greedy plan search, which bisects the level with the smallest
    advancement probability.
    """
    m = aggregate.num_levels
    n0 = aggregate.n_roots
    if m == 1:
        return [aggregate.hits / n0 if n0 else 0.0]
    pis = []
    first = (aggregate.landings[1] + aggregate.skips[1]) / n0 if n0 else 0.0
    pis.append(first)
    for i in range(1, m):
        denominator = aggregate.landings[i] + aggregate.skips[i]
        if denominator == 0:
            pis.append(0.0)
            continue
        numerator = aggregate.crossings[i] / ratios[i] + aggregate.skips[i]
        pis.append(numerator / denominator)
    return pis


class GMLSSSampler:
    """Batched g-MLSS with bootstrap variance and conservative checks.

    Parameters
    ----------
    partition:
        The level partition plan ``B``.
    ratio:
        Fixed splitting ratio or per-level ratios (g-MLSS supports a
        dynamic ratio, Section 4.1).
    batch_roots:
        Root trees between budget checks.
    bootstrap_rounds:
        Bootstrap resamples per variance evaluation (paper's ``N``).
    first_check_roots / check_growth:
        The stopping rule is evaluated when ``n_roots`` first reaches
        ``first_check_roots`` and then every time it grows by
        ``check_growth`` — the "conservative bootstrapping" policy.
    record_trace:
        Record convergence snapshots (taken at bootstrap evaluations).
    backend:
        ``"scalar"`` (default), ``"vectorized"``, or ``"auto"``
        (vectorized exactly when the process supports batching).
    pool / roots_per_task / tasks_per_round:
        With a :class:`~repro.core.pool.WorkerPool`, root trees shard
        over its workers in fixed-size tasks (results are invariant
        under the worker count; see :mod:`repro.core.pool`).
    streamed:
        With a pool, pipeline rounds (speculative next-round
        submission, byte-identical results; see
        :class:`~repro.core.pool.RoundPipeline`).  ``False`` restores
        the per-round barrier.
    """

    method_name = "gmlss"

    def __init__(self, partition: LevelPartition, ratio=3,
                 batch_roots: int = 100, bootstrap_rounds: int = 200,
                 first_check_roots: int = 200, check_growth: float = 1.5,
                 record_trace: bool = False, backend: str = "scalar",
                 pool=None, roots_per_task: Optional[int] = None,
                 tasks_per_round: Optional[int] = None,
                 streamed: bool = True):
        if batch_roots < 1:
            raise ValueError(f"batch_roots must be >= 1, got {batch_roots}")
        if bootstrap_rounds < 2:
            raise ValueError(
                f"bootstrap_rounds must be >= 2, got {bootstrap_rounds}"
            )
        if check_growth <= 1.0:
            raise ValueError(
                f"check_growth must be > 1, got {check_growth}"
            )
        self.partition = partition
        self.ratios = normalize_ratios(ratio, partition.num_levels)
        self.batch_roots = batch_roots
        self.bootstrap_rounds = bootstrap_rounds
        self.first_check_roots = first_check_roots
        self.check_growth = check_growth
        self.record_trace = record_trace
        self.backend = backend
        self.pool = pool
        self.roots_per_task = roots_per_task
        self.tasks_per_round = tasks_per_round
        self.streamed = streamed

    def _make_runner(self, query: DurabilityQuery, seed,
                     scalar_rng=None):
        return make_forest_runner(
            self.backend, query, self.partition, self.ratios, seed,
            scalar_rng=scalar_rng, pool=self.pool,
            roots_per_task=self.roots_per_task,
            tasks_per_round=self.tasks_per_round,
            streamed=self.streamed)

    def run(self, query: DurabilityQuery,
            quality: Optional[QualityTarget] = None,
            max_steps: Optional[int] = None,
            max_roots: Optional[int] = None,
            seed: Optional[int] = None) -> DurabilityEstimate:
        if quality is None and max_steps is None and max_roots is None:
            raise ValueError(
                "provide a quality target, max_steps or max_roots; "
                "otherwise the sampler would never stop"
            )
        rng = random.Random(seed)
        boot_seed = rng.randrange(2 ** 31)
        runner = self._make_runner(query, seed, scalar_rng=rng)
        aggregate = ForestAggregate(self.partition.num_levels)
        trace = []
        bootstrap_seconds = 0.0
        bootstrap_evals = 0
        next_check = self.first_check_roots
        variance = 0.0
        variance_fresh = False
        started = time.perf_counter()

        def evaluate_bootstrap() -> float:
            nonlocal bootstrap_seconds, bootstrap_evals
            boot_started = time.perf_counter()
            result = bootstrap_variance(
                aggregate, self.ratios, n_boot=self.bootstrap_rounds,
                seed=boot_seed + bootstrap_evals)
            bootstrap_seconds += time.perf_counter() - boot_started
            bootstrap_evals += 1
            return result.variance

        try:
            done = False
            while not done:
                roots_before = aggregate.n_roots
                done = runner.accumulate(aggregate, self.batch_roots,
                                         max_steps=max_steps,
                                         max_roots=max_roots)
                if aggregate.n_roots > roots_before:
                    variance_fresh = False
                if aggregate.n_roots == 0:
                    break
                if done:
                    break
                if quality is not None and aggregate.n_roots >= next_check:
                    probability = gmlss_point_estimate(aggregate,
                                                       self.ratios)
                    variance = evaluate_bootstrap()
                    variance_fresh = True
                    if self.record_trace:
                        trace.append(TracePoint(
                            steps=aggregate.steps,
                            elapsed_seconds=time.perf_counter() - started,
                            probability=probability, variance=variance,
                            n_roots=aggregate.n_roots, hits=aggregate.hits,
                        ))
                    if quality.is_met(probability, variance,
                                      aggregate.hits, aggregate.n_roots):
                        break
                    next_check = max(
                        next_check + 1,
                        math.ceil(next_check * self.check_growth))
        finally:
            close_runner(runner)

        probability = gmlss_point_estimate(aggregate, self.ratios)
        if not variance_fresh and aggregate.n_roots > 1:
            variance = evaluate_bootstrap()
        details = {
            "partition": self.partition,
            "ratios": self.ratios[1:],
            "landings": list(aggregate.landings),
            "skips": list(aggregate.skips),
            "pi_hats": gmlss_pi_hats(aggregate, self.ratios),
            "bootstrap_seconds": bootstrap_seconds,
            "bootstrap_evals": bootstrap_evals,
        }
        if self.record_trace:
            details["trace"] = trace
        return DurabilityEstimate(
            probability=probability, variance=variance,
            n_roots=aggregate.n_roots, hits=aggregate.hits,
            steps=aggregate.steps, method=self.method_name,
            elapsed_seconds=time.perf_counter() - started,
            details=details,
        )

    def _level_hits(self, aggregate: ForestAggregate, index: int) -> int:
        """Observations backing the ``index``-th curve level.

        Interior boundaries count the paths observed crossing them
        (landings plus skips); the last level counts target hits.
        """
        if index == aggregate.num_levels - 1:
            return aggregate.hits
        return (aggregate.landings[index + 1] + aggregate.skips[index + 1])

    def run_curve(self, query: DurabilityQuery,
                  thresholds: Optional[Sequence[float]] = None,
                  quality: Optional[QualityTarget] = None,
                  max_steps: Optional[int] = None,
                  max_roots: Optional[int] = None,
                  seed: Optional[int] = None) -> DurabilityCurve:
        """Answer the partition's whole boundary grid from one forest.

        The curve levels are the sampler's interior boundaries plus the
        target: one splitting forest yields ``Pr[cross beta_i]`` for
        every boundary simultaneously via the prefix products of the
        g-MLSS decomposition (see :func:`gmlss_prefix_estimates`), with
        per-level variances from a single shared bootstrap pass.  To
        answer a grid of raw thresholds, build the partition from the
        normalized grid and rebase the query onto the largest threshold
        (the engine's ``durability_curve`` does exactly that).

        ``quality`` must hold at every level before the run stops early;
        budgets behave as in :meth:`run`.
        """
        levels, thresholds = prepare_curve_grid(
            self.partition.boundaries + (1.0,), thresholds, quality,
            max_steps, max_roots)
        rng = random.Random(seed)
        boot_seed = rng.randrange(2 ** 31)
        runner = self._make_runner(query, seed, scalar_rng=rng)
        aggregate = ForestAggregate(self.partition.num_levels)
        bootstrap_evals = 0
        next_check = self.first_check_roots
        variances = None
        variances_fresh = False
        started = time.perf_counter()

        def evaluate_bootstrap():
            nonlocal bootstrap_evals
            result = bootstrap_curve_variances(
                aggregate, self.ratios, n_boot=self.bootstrap_rounds,
                seed=boot_seed + bootstrap_evals)
            bootstrap_evals += 1
            return result

        try:
            done = False
            while not done:
                roots_before = aggregate.n_roots
                done = runner.accumulate(aggregate, self.batch_roots,
                                         max_steps=max_steps,
                                         max_roots=max_roots)
                if aggregate.n_roots > roots_before:
                    variances_fresh = False
                if aggregate.n_roots == 0 or done:
                    break
                if quality is not None and aggregate.n_roots >= next_check:
                    prefixes = gmlss_prefix_estimates(aggregate,
                                                      self.ratios)
                    variances = evaluate_bootstrap()
                    variances_fresh = True
                    if all(quality.is_met(prefixes[i], variances[i],
                                          self._level_hits(aggregate, i),
                                          aggregate.n_roots)
                           for i in range(len(levels))):
                        break
                    next_check = max(
                        next_check + 1,
                        math.ceil(next_check * self.check_growth))
        finally:
            close_runner(runner)

        prefixes = gmlss_prefix_estimates(aggregate, self.ratios)
        if not variances_fresh and aggregate.n_roots > 1:
            variances = evaluate_bootstrap()
        if variances is None:
            variances = [0.0] * len(levels)
        elapsed = time.perf_counter() - started
        estimates = tuple(
            DurabilityEstimate(
                probability=prefixes[i], variance=float(variances[i]),
                n_roots=aggregate.n_roots,
                hits=self._level_hits(aggregate, i),
                steps=aggregate.steps, method=self.method_name,
                elapsed_seconds=elapsed, details={"shared_pass": True},
            )
            for i in range(len(levels)))
        return DurabilityCurve(
            thresholds=thresholds, levels=levels, estimates=estimates,
            method=self.method_name, n_roots=aggregate.n_roots,
            steps=aggregate.steps, elapsed_seconds=elapsed,
            details={
                "partition": self.partition,
                "ratios": self.ratios[1:],
                "level_reach": aggregate.level_reach_counts(),
                "bootstrap_evals": bootstrap_evals,
            },
        )
