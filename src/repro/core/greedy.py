"""Adaptive greedy partition search (Section 5.2, Algorithm 1).

The strategy places partition boundaries one at a time: each round
generates candidate boundaries inside the current focus interval,
scores each candidate plan with a fixed-budget trial (Eq. 15), keeps
the best if it improves on the incumbent, and then refocuses on the
level with the *smallest* advancement probability — the "obstacle"
level.  Recursively bisecting obstacle levels drives the plan towards
balanced growth without any prior knowledge of the model or query.

The search stops as soon as a round fails to improve the evaluation
score (more levels would only add splitting overhead) or when
``max_rounds`` is reached.

The search can also run *curve-aware*: given a mandatory normalized
threshold ``grid`` (the read-out boundaries of a ``durability_curve``
pass), the grid seeds the plan and the search only places refinement
boundaries around it — scoring the grid-only plan first as the
baseline — so one searched plan serves the whole grid instead of a
single-threshold plan being stretched across it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from .levels import LevelPartition
from .optimizer import PlanTrial, evaluate_partition, pool_trials
from .pool import PlanSearchWork, derive_task_seed
from .value_functions import DurabilityQuery


@dataclass
class GreedyRound:
    """What happened in one round of Algorithm 1."""

    focus: tuple
    candidates: list
    trials: list
    chosen: Optional[float]
    best_score: float


@dataclass
class GreedyResult:
    """Outcome of the adaptive greedy search."""

    partition: LevelPartition
    best_score: float
    rounds: list = field(default_factory=list)
    search_steps: int = 0
    pooled_estimate: float = 0.0
    pooled_roots: int = 0
    #: True when the plan came from a PlanCache hit (no search was run).
    from_cache: bool = False

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def all_trials(self) -> list:
        return [t for rnd in self.rounds for t in rnd.trials]


def candidate_boundaries(v_lo: float, v_hi: float, count: int,
                         existing: tuple, minimum: float) -> list:
    """Uniformly spaced candidate boundaries inside ``(v_lo, v_hi)``.

    Candidates colliding with existing boundaries or not exceeding the
    initial state's value are dropped (the plan must keep every root in
    ``L_0``).  A uniform grid rather than uniform random draws keeps
    the search deterministic under a fixed seed; the paper only asks
    for candidates "uniformly generated" in the interval.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    span = v_hi - v_lo
    if span <= 0:
        return []
    step = span / (count + 1)
    grid = (v_lo + step * k for k in range(1, count + 1))
    return [v for v in grid
            if v > minimum and 0.0 < v < 1.0 and v not in existing]


def adaptive_greedy_partition(query: DurabilityQuery, ratio=3,
                              trial_steps: int = 20000,
                              candidates_per_round: int = 5,
                              max_rounds: int = 10,
                              seed: Optional[int] = None,
                              backend: str = "scalar",
                              plan_cache=None,
                              pool=None,
                              grid=None,
                              cache_kind=None) -> GreedyResult:
    """Algorithm 1: search for a (near-)optimal partition plan.

    Parameters
    ----------
    query:
        The durability query to optimize for.
    ratio:
        The fixed splitting ratio ``r`` used during search (paper
        default 3; Section 5 argues a small fixed ratio plus more
        levels approximates variable ratios).
    trial_steps:
        Simulation budget ``t_0`` per candidate trial.
    candidates_per_round:
        Number of candidate boundaries generated per round.
    max_rounds:
        Hard cap on rounds (each successful round adds one boundary).
    backend:
        Simulation backend for the candidate trials — ``"scalar"``,
        ``"vectorized"``, or ``"auto"`` (see
        :func:`repro.processes.base.resolve_backend`).
    plan_cache:
        Optional :class:`repro.engine.PlanCache` (or anything with its
        ``get``/``put`` interface).  On a hit the cached plan is
        returned immediately with ``from_cache=True`` and zero search
        steps; on a miss the search runs and its result is stored for
        the next equivalent query.
    pool:
        Optional :class:`~repro.core.pool.WorkerPool`: each round's
        candidate trials — independent fixed-budget simulations, the
        entire cost of the search — run concurrently on its workers
        via :class:`~repro.core.pool.PlanSearchWork`.  Trial seeds are
        *structural* (derived from the running trial index with
        :func:`~repro.core.pool.derive_task_seed`) in both the pooled
        and parent-only paths, so for a fixed ``seed`` the pooled
        search returns exactly the plan the parent-only search would.
    grid:
        Mandatory normalized boundaries (a curve's read-out levels,
        each in ``(0, 1)``, strictly ascending, above the initial
        value): they seed the plan, a baseline trial scores the
        grid-only plan, and the search only *adds* refinement
        boundaries around them — the returned partition always
        contains the grid verbatim.
    cache_kind:
        Overrides the plan-cache kind (default ``"greedy"``); the
        curve-aware engine path passes a grid-shaped kind so curve
        plans never collide with point plans.
    """
    kind = cache_kind if cache_kind is not None else "greedy"
    if plan_cache is not None:
        entry = plan_cache.get(query, kind=kind)
        if entry is not None:
            return GreedyResult(
                partition=entry.partition, best_score=entry.score,
                rounds=[], search_steps=0,
                pooled_estimate=0.0, pooled_roots=0, from_cache=True,
            )
    initial_value = query.initial_value()
    plan = LevelPartition(grid) if grid else LevelPartition()
    if plan.boundaries and plan.boundaries[0] <= initial_value:
        raise ValueError(
            f"grid boundary {plan.boundaries[0]} does not exceed the "
            f"initial state's value {initial_value}")
    best_score = float("inf")
    v_lo, v_hi = 0.0, 1.0
    rounds = []
    search_steps = 0
    trial_index = 0
    handle = None
    if pool is not None:
        handle = pool.register(PlanSearchWork(
            query=query, ratio=ratio, trial_steps=trial_steps,
            backend=backend))
    try:
        if plan.boundaries:
            # Baseline trial: score the mandatory grid-only plan so a
            # refinement is only accepted when it actually improves on
            # serving the grid as-is.
            baseline_seed = derive_task_seed(seed, trial_index,
                                             salt="plan")
            trial_index += 1
            if handle is not None:
                baseline = pool.run_tasks(handle, [
                    ("trial", plan.boundaries, baseline_seed)])[0]
            else:
                baseline = evaluate_partition(
                    query, plan, ratio=ratio, trial_steps=trial_steps,
                    seed=baseline_seed, backend=backend)
            search_steps += baseline.steps
            best_score = baseline.eval_score
            rounds.append(GreedyRound(
                focus=(v_lo, v_hi), candidates=[], trials=[baseline],
                chosen=None, best_score=baseline.eval_score))
            v_lo, v_hi = _obstacle_interval(plan, baseline,
                                            initial_value)
        for _ in range(max_rounds):
            candidates = candidate_boundaries(
                v_lo, v_hi, candidates_per_round, plan.boundaries,
                minimum=initial_value)
            if not candidates:
                break
            # Trial seeds derive from the trial's position in the
            # search, so the pooled and parent-only paths score every
            # candidate with identical randomness and choose identical
            # plans.
            plans = [plan.with_boundary(value) for value in candidates]
            seeds = [derive_task_seed(seed, trial_index + i, salt="plan")
                     for i in range(len(plans))]
            trial_index += len(plans)
            if handle is not None:
                trials = pool.run_tasks(handle, [
                    ("trial", candidate.boundaries, trial_seed)
                    for candidate, trial_seed in zip(plans, seeds)])
            else:
                trials = [evaluate_partition(
                    query, candidate, ratio=ratio,
                    trial_steps=trial_steps, seed=trial_seed,
                    backend=backend)
                    for candidate, trial_seed in zip(plans, seeds)]
            for trial in trials:
                search_steps += trial.steps
            scored = sorted(zip(trials, candidates),
                            key=lambda pair: (pair[0].eval_score,
                                              -pair[0].hits,
                                              -pair[0].top_flow))
            best_trial, best_value = scored[0]
            improved = best_trial.eval_score < best_score
            # With no target hits anywhere yet, every eval is infinite
            # and carries no information; keep adding boundaries toward
            # the level with the most upward flow instead of giving up —
            # for rare targets, more levels are certainly needed.
            exploring = (not improved and math.isinf(best_score)
                         and best_trial.top_flow > 0)
            accept = improved or exploring
            rounds.append(GreedyRound(
                focus=(v_lo, v_hi), candidates=candidates, trials=trials,
                chosen=best_value if accept else None,
                best_score=best_trial.eval_score,
            ))
            if not accept:
                break
            plan = plan.with_boundary(best_value)
            if improved:
                best_score = best_trial.eval_score
            # Refocus on the level with the smallest advancement
            # probability.
            v_lo, v_hi = _obstacle_interval(plan, best_trial,
                                            initial_value)
    finally:
        if handle is not None:
            pool.unregister(handle)

    pooled, pooled_roots, _ = pool_trials(
        [t for rnd in rounds for t in rnd.trials])
    result = GreedyResult(
        partition=plan, best_score=best_score, rounds=rounds,
        search_steps=search_steps, pooled_estimate=pooled,
        pooled_roots=pooled_roots,
    )
    if plan_cache is not None:
        plan_cache.put(query, plan, kind=kind, score=best_score)
    return result


def _obstacle_interval(plan: LevelPartition, trial: PlanTrial,
                       initial_value: float) -> tuple:
    """The interval of the level with the smallest advancement probability.

    ``trial.pi_hats[i]`` estimates the advancement out of level ``L_i``
    (crossing ``beta_{i+1}`` given ``beta_i`` was crossed).  The lower
    edge is clamped above the initial state's value so new boundaries
    stay valid.
    """
    pi_hats = trial.pi_hats
    obstacle = min(range(len(pi_hats)), key=lambda i: pi_hats[i])
    lo = plan.lower_boundary(obstacle)
    hi = (plan.lower_boundary(obstacle + 1)
          if obstacle + 1 <= plan.num_levels else 1.0)
    return (max(lo, initial_value), hi)
