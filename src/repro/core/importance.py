"""Importance sampling with cross-entropy tilt search (Section 2.2).

The paper reviews importance sampling (IS) as the classic variance
reduction alternative to splitting and notes its key limitation: it
needs *a priori* knowledge of the model to design the instrumental
distribution.  We implement the standard exponential-tilting IS for the
family of processes the paper uses in its IS exposition — models driven
by i.i.d. Gaussian noise (AR(m), Gaussian walks) — plus the iterative
Cross-Entropy (CE) method for choosing the tilt.

A process participates by exposing the *Gaussian-step protocol*:

* ``step_with_noise(state, noise) -> state`` — advance deterministically
  given the noise draw ``eps_t``;
* ``noise_sigma() -> float`` — the nominal noise scale (mean 0).

IS then samples ``eps_t ~ N(theta, sigma)`` and weights each path by the
likelihood ratio ``prod_t exp((theta^2 - 2 theta eps_t) / (2 sigma^2))``,
stopping (and freezing the weight) at the first target hit.
"""

from __future__ import annotations

import math
import random
import time
from typing import Optional

from .estimates import DurabilityEstimate, TracePoint
from .quality import QualityTarget
from .value_functions import TARGET_VALUE, DurabilityQuery


def _require_gaussian_protocol(process) -> float:
    step = getattr(process, "step_with_noise", None)
    sigma_fn = getattr(process, "noise_sigma", None)
    if step is None or sigma_fn is None:
        raise TypeError(
            f"{type(process).__name__} does not implement the "
            "Gaussian-step protocol (step_with_noise / noise_sigma) "
            "required by importance sampling"
        )
    return float(sigma_fn())


class ISSampler:
    """Exponentially tilted importance sampling for Gaussian-step models.

    Parameters
    ----------
    tilt:
        The instrumental noise mean ``theta`` (use
        :func:`cross_entropy_tilt` to find one automatically).
    batch_paths:
        Paths between stopping-rule checks.
    """

    method_name = "is"

    def __init__(self, tilt: float, batch_paths: int = 500,
                 record_trace: bool = False):
        if batch_paths < 1:
            raise ValueError(f"batch_paths must be >= 1, got {batch_paths}")
        self.tilt = tilt
        self.batch_paths = batch_paths
        self.record_trace = record_trace

    def run(self, query: DurabilityQuery,
            quality: Optional[QualityTarget] = None,
            max_steps: Optional[int] = None,
            max_roots: Optional[int] = None,
            seed: Optional[int] = None) -> DurabilityEstimate:
        if quality is None and max_steps is None and max_roots is None:
            raise ValueError(
                "provide a quality target, max_steps or max_roots; "
                "otherwise the sampler would never stop"
            )
        process = query.process
        sigma = _require_gaussian_protocol(process)
        value_fn = query.value_function
        horizon = query.horizon
        theta = self.tilt
        two_sigma_sq = 2.0 * sigma * sigma
        rng = random.Random(seed)

        n_paths = 0
        hits = 0
        steps = 0
        weight_sum = 0.0
        weight_sq_sum = 0.0
        trace = []
        started = time.perf_counter()

        def current_stats() -> tuple:
            if n_paths == 0:
                return 0.0, 0.0
            mean = weight_sum / n_paths
            if n_paths < 2:
                return mean, 0.0
            var_w = (weight_sq_sum - n_paths * mean * mean) / (n_paths - 1)
            return mean, max(var_w, 0.0) / n_paths

        done = False
        while not done:
            for _ in range(self.batch_paths):
                if max_roots is not None and n_paths >= max_roots:
                    done = True
                    break
                if max_steps is not None and steps >= max_steps:
                    done = True
                    break
                state = process.initial_state()
                log_weight = 0.0
                t = 0
                while t < horizon:
                    t += 1
                    noise = rng.gauss(theta, sigma)
                    state = process.step_with_noise(state, noise)
                    steps += 1
                    log_weight += (theta * theta
                                   - 2.0 * theta * noise) / two_sigma_sq
                    if value_fn(state, t) >= TARGET_VALUE:
                        hits += 1
                        weight = math.exp(log_weight)
                        weight_sum += weight
                        weight_sq_sum += weight * weight
                        break
                n_paths += 1
            if n_paths == 0:
                break
            estimate, variance = current_stats()
            if self.record_trace:
                trace.append(TracePoint(
                    steps=steps,
                    elapsed_seconds=time.perf_counter() - started,
                    probability=estimate, variance=variance,
                    n_roots=n_paths, hits=hits,
                ))
            if quality is not None and quality.is_met(
                    estimate, variance, hits, n_paths):
                break

        estimate, variance = current_stats()
        details = {"tilt": theta}
        if self.record_trace:
            details["trace"] = trace
        return DurabilityEstimate(
            probability=estimate, variance=variance,
            n_roots=n_paths, hits=hits, steps=steps,
            method=self.method_name,
            elapsed_seconds=time.perf_counter() - started,
            details=details,
        )


def cross_entropy_tilt(query: DurabilityQuery, rounds: int = 5,
                       paths_per_round: int = 500,
                       elite_fraction: float = 0.1,
                       seed: Optional[int] = None,
                       smoothing: float = 0.7) -> float:
    """Iteratively choose the IS tilt by the Cross-Entropy method.

    Each round simulates paths under the current tilt, selects the
    elite fraction by the best value-function score attained, and moves
    the tilt toward the likelihood-ratio-weighted mean of the elite
    paths' noise draws (the closed-form CE update for a Gaussian
    family).  ``smoothing`` damps the update, the usual CE stabiliser.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if not 0.0 < elite_fraction <= 1.0:
        raise ValueError(
            f"elite_fraction must be in (0, 1], got {elite_fraction}"
        )
    process = query.process
    sigma = _require_gaussian_protocol(process)
    value_fn = query.value_function
    horizon = query.horizon
    rng = random.Random(seed)
    theta = 0.0

    for _ in range(rounds):
        two_sigma_sq = 2.0 * sigma * sigma
        scored = []
        for _ in range(paths_per_round):
            state = process.initial_state()
            best = value_fn(state, 0)
            noise_sum = 0.0
            noise_count = 0
            log_weight = 0.0
            t = 0
            while t < horizon:
                t += 1
                noise = rng.gauss(theta, sigma)
                state = process.step_with_noise(state, noise)
                noise_sum += noise
                noise_count += 1
                log_weight += (theta * theta
                               - 2.0 * theta * noise) / two_sigma_sq
                value = value_fn(state, t)
                if value > best:
                    best = value
                    if best >= TARGET_VALUE:
                        break
            scored.append((best, log_weight, noise_sum, noise_count))
        scored.sort(key=lambda item: item[0], reverse=True)
        n_elite = max(1, int(paths_per_round * elite_fraction))
        elite = scored[:n_elite]
        # Likelihood-ratio-weighted mean of elite noise draws.
        max_log = max(item[1] for item in elite)
        weighted_noise = 0.0
        weighted_count = 0.0
        for _, log_weight, noise_sum, noise_count in elite:
            weight = math.exp(log_weight - max_log)
            weighted_noise += weight * noise_sum
            weighted_count += weight * noise_count
        if weighted_count > 0:
            new_theta = weighted_noise / weighted_count
            theta = smoothing * new_theta + (1.0 - smoothing) * theta
    return theta
