"""Level partitions of the value-function range (Section 3, "Levels").

The range ``[0, 1]`` of the value function is split into ``m + 1``
disjoint levels by boundaries ``0 = beta_0 < beta_1 < ... < beta_m = 1``:
``L_i = [beta_i, beta_{i+1})`` for ``i < m`` and the degenerate target
level ``L_m = [1, 1]``.  A :class:`LevelPartition` stores the *interior*
boundaries ``beta_1 .. beta_{m-1}`` (the values a partition plan
actually chooses; Section 5 calls this set ``B``).

With no interior boundaries the partition degenerates to
``{L_0, target}`` and MLSS reduces to plain SRS.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

from .value_functions import TARGET_VALUE


class LevelPartition:
    """An immutable partition plan ``B`` of the value range.

    Attributes
    ----------
    boundaries:
        Sorted tuple of interior boundaries, each strictly inside
        ``(0, 1)``.  ``num_levels`` is ``len(boundaries) + 1`` — the
        number of levels *below* the target, i.e. the paper's ``m``.
    """

    __slots__ = ("boundaries",)

    def __init__(self, boundaries: Iterable[float] = ()):
        values = sorted(float(b) for b in boundaries)
        for b in values:
            if not 0.0 < b < TARGET_VALUE:
                raise ValueError(
                    f"interior boundary {b} must lie strictly in (0, 1)"
                )
        for lo, hi in zip(values, values[1:]):
            if lo == hi:
                raise ValueError(f"duplicate boundary {lo}")
        self.boundaries = tuple(values)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """The paper's ``m``: number of levels below the target."""
        return len(self.boundaries) + 1

    @property
    def target_level(self) -> int:
        """Index of the target level ``L_m``."""
        return self.num_levels

    def level_of(self, value: float) -> int:
        """Map a value-function score to its level index.

        Scores ``>= 1`` map to the target level ``m``; otherwise level
        ``i`` such that ``beta_i <= value < beta_{i+1}`` (with
        ``beta_0 = 0``: any non-positive score maps to level 0).
        """
        if value >= TARGET_VALUE:
            return self.num_levels
        return bisect.bisect_right(self.boundaries, value)

    def lower_boundary(self, level: int) -> float:
        """``beta_level`` — the lower edge of level ``level``."""
        if not 0 <= level <= self.num_levels:
            raise ValueError(f"level {level} out of range")
        if level == 0:
            return 0.0
        if level == self.num_levels:
            return TARGET_VALUE
        return self.boundaries[level - 1]

    def level_interval(self, level: int) -> tuple:
        """``(beta_level, beta_{level+1})`` for level ``level``."""
        return (self.lower_boundary(level),
                self.lower_boundary(level + 1) if level < self.num_levels
                else TARGET_VALUE)

    # ------------------------------------------------------------------
    # Plan editing (used by the greedy optimizer)
    # ------------------------------------------------------------------

    def with_boundary(self, value: float) -> "LevelPartition":
        """Return a new partition with one extra interior boundary."""
        if value in self.boundaries:
            raise ValueError(f"boundary {value} already in partition")
        return LevelPartition(self.boundaries + (value,))

    def without_boundary(self, value: float) -> "LevelPartition":
        """Return a new partition with one boundary removed."""
        if value not in self.boundaries:
            raise ValueError(f"boundary {value} not in partition")
        return LevelPartition(b for b in self.boundaries if b != value)

    def pruned_above(self, initial_value: float) -> "LevelPartition":
        """Drop boundaries at or below the initial state's value.

        Splitting bookkeeping requires every root path to start in
        ``L_0``; if the initial state's value already exceeds some
        boundaries they carry no information and are removed.
        """
        return LevelPartition(b for b in self.boundaries if b > initial_value)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (isinstance(other, LevelPartition)
                and self.boundaries == other.boundaries)

    def __hash__(self) -> int:
        return hash(self.boundaries)

    def __len__(self) -> int:
        return len(self.boundaries)

    def __iter__(self):
        return iter(self.boundaries)

    def __repr__(self) -> str:
        inner = ", ".join(f"{b:.4g}" for b in self.boundaries)
        return f"LevelPartition([{inner}])"


def uniform_partition(num_levels: int) -> LevelPartition:
    """Equal-width partition with ``num_levels`` levels below the target."""
    if num_levels < 1:
        raise ValueError(f"num_levels must be >= 1, got {num_levels}")
    step = TARGET_VALUE / num_levels
    return LevelPartition(step * i for i in range(1, num_levels))


def normalize_ratios(ratios, num_levels: int) -> tuple:
    """Expand a splitting-ratio spec into per-level ratios.

    ``ratios`` may be a single integer (the paper's fixed ``r``) or a
    sequence with one entry per splittable level ``L_1 .. L_{m-1}``
    (g-MLSS allows a dynamic ratio, Section 4.1).  Returns a tuple of
    length ``num_levels`` indexed by level; index 0 is unused padding so
    that ``result[level]`` works directly.
    """
    n_split_levels = num_levels - 1
    if isinstance(ratios, int):
        if ratios < 1:
            raise ValueError(f"splitting ratio must be >= 1, got {ratios}")
        return (1,) + (ratios,) * n_split_levels
    values = tuple(int(r) for r in ratios)
    if len(values) == num_levels and values[0] == 1:
        # Already in normalized form (idempotence).
        return values
    if len(values) != n_split_levels:
        raise ValueError(
            f"need {n_split_levels} per-level ratios, got {len(values)}"
        )
    if any(r < 1 for r in values):
        raise ValueError(f"splitting ratios must be >= 1, got {values}")
    return (1,) + values
