"""Partition-plan evaluation (Section 5.1).

Given a fixed simulation budget ``t_0``, a partition plan ``B`` is
scored by the variance its estimator achieves in that budget:

    eval(B) = Var(N_m^<1>) * c_B / (r^(2(m-1)) * t_0)        (Eq. 15)

where ``Var(N_m^<1>)`` is the per-root variance of target hits and
``c_B`` the average per-root simulation cost, both measured from a trial
run of MLSS itself.  As in the paper, the measure is derived under the
no-level-skipping surrogate but only used for *choosing* plans, never
for estimation, so it cannot affect correctness.

Trial runs are never wasted: each trial's (unbiased) g-MLSS estimate is
retained so the plan search contributes to the final answer
(Section 5.2, last paragraph).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..processes.base import resolve_backend
from .forest import ForestRunner, VectorizedForestRunner
from .gmlss import gmlss_pi_hats, gmlss_point_estimate
from .levels import LevelPartition, normalize_ratios
from .records import ForestAggregate
from .smlss import ratio_product
from .value_functions import DurabilityQuery


@dataclass
class PlanTrial:
    """Outcome of one fixed-budget trial run of a partition plan."""

    partition: LevelPartition
    ratios: tuple
    trial_steps: int
    n_roots: int
    hits: int
    steps: int
    estimate: float
    var_per_root: float
    cost_per_root: float
    eval_score: float
    pi_hats: list = field(default_factory=list)
    #: Paths that reached the plan's top level (or the target): the
    #: progress signal used to rank hitless trials during plan search.
    top_flow: int = 0

    @property
    def reached_target(self) -> bool:
        return self.hits > 0


def eval_score(var_per_root: float, cost_per_root: float,
               ratios: tuple, trial_steps: int) -> float:
    """Eq. 15 folded from measured trial quantities.

    Plans whose trials never hit the target report an infinite score:
    their variance measurement carries no information, and the greedy
    search must prefer any plan that reaches the target at all.
    """
    if trial_steps <= 0:
        raise ValueError(f"trial_steps must be > 0, got {trial_steps}")
    denominator = ratio_product(ratios)
    return (var_per_root * cost_per_root
            / (denominator * denominator * trial_steps))


def evaluate_partition(query: DurabilityQuery, partition: LevelPartition,
                       ratio=3, trial_steps: int = 20000,
                       seed: Optional[int] = None,
                       rng: Optional[random.Random] = None,
                       backend: str = "scalar") -> PlanTrial:
    """Run MLSS with plan ``B`` for a fixed step budget and score it.

    Either ``seed`` or an existing ``rng`` may be supplied; passing the
    same ``rng`` across evaluations lets the greedy search reuse one
    random stream (with the vectorized backend it seeds one NumPy
    generator per trial, so searches stay reproducible).
    """
    if trial_steps < 1:
        raise ValueError(f"trial_steps must be >= 1, got {trial_steps}")
    if rng is None:
        rng = random.Random(seed)
    ratios = normalize_ratios(ratio, partition.num_levels)
    aggregate = ForestAggregate(partition.num_levels)
    if resolve_backend(backend, query.process) == "vectorized":
        runner = VectorizedForestRunner(
            query, partition, ratios,
            np.random.default_rng(rng.randrange(2 ** 31)))
        while aggregate.steps < trial_steps:
            # Size each cohort from the measured cost per root so the
            # budget overshoot stays at roughly one cohort; before any
            # measurement, assume a root tree costs about two horizons
            # (splitting roughly doubles the root path's own cost).
            if aggregate.n_roots:
                cost = aggregate.steps / aggregate.n_roots
            else:
                cost = 2.0 * query.horizon
            cohort = int((trial_steps - aggregate.steps) / cost) + 1
            cohort = max(1, min(cohort, 1024))
            aggregate.extend(runner.run_cohort(cohort))
    else:
        runner = ForestRunner(query, partition, ratios, rng)
        while aggregate.steps < trial_steps:
            aggregate.add(runner.run_root())

    var_per_root = aggregate.hit_count_variance()
    cost_per_root = aggregate.steps / aggregate.n_roots
    if aggregate.hits > 0:
        score = eval_score(var_per_root, cost_per_root, ratios, trial_steps)
    else:
        score = math.inf
    top_flow = (aggregate.hits + aggregate.landings[-1]
                + aggregate.skips[-1] if partition.num_levels > 1
                else aggregate.hits)
    return PlanTrial(
        partition=partition,
        ratios=ratios,
        trial_steps=trial_steps,
        n_roots=aggregate.n_roots,
        hits=aggregate.hits,
        steps=aggregate.steps,
        estimate=gmlss_point_estimate(aggregate, ratios),
        var_per_root=var_per_root,
        cost_per_root=cost_per_root,
        eval_score=score,
        pi_hats=gmlss_pi_hats(aggregate, ratios),
        top_flow=top_flow,
    )


def pool_trials(trials) -> tuple:
    """Combine unbiased trial estimates into one pooled estimate.

    Returns ``(estimate, n_roots, steps)``.  Each trial's g-MLSS
    estimate is unbiased regardless of its plan, so a root-count
    weighted average is unbiased too; it is the "trial runs are not
    wasted" estimate the paper describes.
    """
    total_roots = sum(t.n_roots for t in trials)
    total_steps = sum(t.steps for t in trials)
    if total_roots == 0:
        return 0.0, 0, total_steps
    pooled = sum(t.estimate * t.n_roots for t in trials) / total_roots
    return pooled, total_roots, total_steps
