"""Parallel root-path simulation (Section 3.1, "Parallel Computations").

Root paths (and their splitting trees) are independent, so MLSS
parallelizes by sharding root trees over worker processes and merging
the per-worker :class:`ForestAggregate` counters.  The merged aggregate
feeds the ordinary estimators, so parallel results are *identical in
distribution* to sequential ones — only the seed layout differs.

Everything shipped to workers (query, partition, ratios) must be
picklable: use module-level ``z`` functions or small callable classes
in value functions rather than lambdas.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Optional

from .bootstrap import bootstrap_variance
from .estimates import DurabilityEstimate
from .forest import ForestRunner
from .gmlss import gmlss_point_estimate, gmlss_pi_hats
from .levels import LevelPartition, normalize_ratios
from .records import ForestAggregate
from .smlss import smlss_point_estimate, smlss_variance
from .value_functions import DurabilityQuery


def _simulate_shard(args) -> ForestAggregate:
    """Worker entry point: simulate ``n_roots`` trees with its own seed."""
    query, partition, ratios, n_roots, seed = args
    import random

    rng = random.Random(seed)
    runner = ForestRunner(query, partition, ratios, rng)
    aggregate = ForestAggregate(partition.num_levels)
    for _ in range(n_roots):
        aggregate.add(runner.run_root())
    return aggregate


def run_parallel_mlss(query: DurabilityQuery, partition: LevelPartition,
                      ratio=3, total_roots: int = 1000,
                      n_workers: int = 2, seed: Optional[int] = None,
                      estimator: str = "gmlss",
                      bootstrap_rounds: int = 200) -> DurabilityEstimate:
    """Run MLSS root trees across processes and merge the counters.

    Parameters
    ----------
    estimator:
        ``"gmlss"`` (bootstrap variance) or ``"smlss"`` (Eq. 5-6
        variance; only sound without level skipping).
    """
    if estimator not in ("smlss", "gmlss"):
        raise ValueError(f"unknown estimator {estimator!r}")
    if total_roots < 1:
        raise ValueError(f"total_roots must be >= 1, got {total_roots}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    ratios = normalize_ratios(ratio, partition.num_levels)
    base_seed = seed if seed is not None else 0

    shard_size = total_roots // n_workers
    shards = []
    assigned = 0
    for w in range(n_workers):
        count = shard_size + (1 if w < total_roots % n_workers else 0)
        if count:
            shards.append((query, partition, ratios, count,
                           base_seed + 7919 * (w + 1)))
            assigned += count
    assert assigned == total_roots

    started = time.perf_counter()
    if n_workers == 1 or len(shards) == 1:
        results = [_simulate_shard(shard) for shard in shards]
    else:
        with multiprocessing.Pool(processes=n_workers) as pool:
            results = pool.map(_simulate_shard, shards)
    merged = ForestAggregate(partition.num_levels)
    for aggregate in results:
        merged.merge(aggregate)

    if estimator == "smlss":
        probability = smlss_point_estimate(merged, ratios)
        variance = smlss_variance(merged, ratios)
        details = {"skipping_detected": merged.total_skips > 0}
    else:
        probability = gmlss_point_estimate(merged, ratios)
        variance = bootstrap_variance(
            merged, ratios, n_boot=bootstrap_rounds,
            seed=base_seed).variance
        details = {"pi_hats": gmlss_pi_hats(merged, ratios)}
    details.update({
        "partition": partition,
        "n_workers": n_workers,
        "landings": list(merged.landings),
        "skips": list(merged.skips),
    })
    return DurabilityEstimate(
        probability=probability, variance=variance,
        n_roots=merged.n_roots, hits=merged.hits, steps=merged.steps,
        method=f"parallel-{estimator}",
        elapsed_seconds=time.perf_counter() - started,
        details=details,
    )
