"""Parallel root-path simulation (Section 3.1, "Parallel Computations").

Root paths (and their splitting trees) are independent, so MLSS
parallelizes by sharding root trees over worker processes and merging
the per-worker :class:`~repro.core.records.ForestAggregate` counters.
The merged aggregate feeds the ordinary estimators, so parallel results
are *identical in distribution* to sequential ones — only the seed
layout differs.

:func:`run_parallel_mlss` is now a thin wrapper over the persistent
execution layer in :mod:`repro.core.pool`: a :class:`~repro.core.pool.
WorkerPool` of long-lived workers, each advancing *vectorized* cohorts
of root trees (the full SIMD backend of
:class:`~repro.core.forest.VectorizedForestRunner`, per shard) and
returning per-root counters through preallocated shared-memory blocks.
Compared to the original throwaway ``multiprocessing.Pool`` of scalar
shards this changes three things:

* **cores x SIMD** — every worker runs the vectorized (or fused)
  backend, so adding workers multiplies the single-core SIMD
  throughput instead of replacing it with scalar loops;
* **no per-round serialization** — the query and plan ship once per
  worker; each round sends only ``(n_roots, seed)`` descriptors and
  counters come back as shared bytes;
* **structural seeding** — work decomposes into fixed-size tasks whose
  seeds derive from the *task index* (never the worker count), so for
  a fixed ``seed`` the estimate is **byte-identical for any
  ``n_workers``** and any pool mode (``"fork"``/``"spawn"``/
  ``"thread"``/``"inline"``).  The historical behaviour — shard seeds
  depending on ``n_workers`` — changed results when the worker count
  changed and is regression-tested away.

On top of the process modes, ``pool="thread"`` runs the workers as
*threads* in the parent address space — no process startup, no
pickling, no shared-memory segments — which scales because the NumPy
simulation kernels release the GIL; it is also the automatic fallback
where fork is unavailable.  Pooled rounds are additionally *streamed*
by default (:class:`~repro.core.pool.RoundPipeline`): the next round's
tasks are speculatively in flight while the current round's stragglers
drain, with results still merged in task order — so streaming changes
wall-clock time, never results.

Everything shipped to workers (query, partition, ratios) must be
picklable: use module-level ``z`` functions or small callable classes
in value functions rather than lambdas.

For richer entry points (quality-target stopping, curve passes, fused
fleets, a pool persisted across queries) drive the samplers through a
:class:`~repro.engine.service.DurabilityEngine` with an
``ExecutionPolicy.parallel`` policy instead; this function remains the
simple fixed-budget facade.
"""

from __future__ import annotations

from typing import Optional

from .estimates import DurabilityEstimate
from .gmlss import GMLSSSampler
from .levels import LevelPartition
from .pool import DEFAULT_ROOTS_PER_TASK, WorkerPool
from .smlss import SMLSSSampler
from .value_functions import DurabilityQuery


def run_parallel_mlss(query: DurabilityQuery, partition: LevelPartition,
                      ratio=3, total_roots: int = 1000,
                      n_workers: int = 2, seed: Optional[int] = None,
                      estimator: str = "gmlss",
                      bootstrap_rounds: int = 200,
                      backend: str = "auto",
                      roots_per_task: int = DEFAULT_ROOTS_PER_TASK,
                      pool: str = "fork") -> DurabilityEstimate:
    """Run MLSS root trees across a worker pool and merge the counters.

    Parameters
    ----------
    estimator:
        ``"gmlss"`` (bootstrap variance) or ``"smlss"`` (Eq. 5-6
        variance; only sound without level skipping).
    backend:
        Per-worker simulation backend (``"auto"`` resolves to the
        vectorized backend whenever the process supports it).
    roots_per_task:
        Root trees per work descriptor.  Fixed task sizing is what
        makes the result independent of ``n_workers``; tune it for
        load balance, not correctness.
    pool:
        ``"fork"`` (default), ``"spawn"``, ``"thread"`` (worker
        threads, no process startup or pickling; the fallback where
        fork is unavailable) or ``"inline"`` (no workers; also the
        automatic fallback when ``n_workers == 1``).
    """
    if estimator not in ("smlss", "gmlss"):
        raise ValueError(f"unknown estimator {estimator!r}")
    if total_roots < 1:
        raise ValueError(f"total_roots must be >= 1, got {total_roots}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")

    with WorkerPool(n_workers=n_workers, pool=pool) as worker_pool:
        if estimator == "smlss":
            sampler = SMLSSSampler(
                partition, ratio=ratio, batch_roots=total_roots,
                backend=backend, pool=worker_pool,
                roots_per_task=roots_per_task)
        else:
            sampler = GMLSSSampler(
                partition, ratio=ratio, batch_roots=total_roots,
                bootstrap_rounds=bootstrap_rounds, backend=backend,
                pool=worker_pool, roots_per_task=roots_per_task)
        estimate = sampler.run(query, max_roots=total_roots, seed=seed)

    estimate.method = f"parallel-{estimator}"
    estimate.details.update({
        "n_workers": n_workers,
        "pool": worker_pool.mode,
        "roots_per_task": roots_per_task,
    })
    return estimate
