"""Persistent shared-memory worker pool (Section 3.1, "Parallel
Computations" — scaled to every backend).

Root trees, SRS paths and fleet members are all independent, so every
sampler in the library parallelizes by *sharding work over processes*.
The original ``run_parallel_mlss`` did this with a throwaway
``multiprocessing.Pool`` of scalar ``ForestRunner`` shards: every call
paid process startup, every shard pickled its closure, and none of the
vectorized / fused wins reached a second core.  This module replaces
that with a persistent execution layer:

* :class:`WorkerPool` — long-lived worker processes (``"fork"`` or
  ``"spawn"`` start methods, or ``"inline"`` for a no-process fallback
  that runs the identical code path in the caller).  A *work* — query,
  partition, fleet, backend — is registered **once** (one pickle per
  worker); subsequent rounds send only tiny *work descriptors* (task
  index, root budget, derived seed).
* :class:`CounterBlock` — preallocated ``multiprocessing.shared_memory``
  blocks, one per (work, worker), through which forest workers return
  their per-root :class:`~repro.core.records.RootRecord` counters.
  Counter matrices cross the process boundary as shared bytes, never as
  pickles, and the blocks are reused across rounds.
* :class:`PooledForestRunner` — a drop-in implementation of the
  ``accumulate`` contract shared by :class:`~repro.core.forest.
  ForestRunner` and :class:`~repro.core.forest.VectorizedForestRunner`,
  so the g-MLSS / s-MLSS samplers (point *and* curve passes) run pooled
  without changing a line of their stopping logic.

Determinism
-----------

Work decomposes into tasks of a fixed size (``roots_per_task`` roots,
``members_per_task`` fleet members) whose seeds derive from the *task
index* via :func:`derive_task_seed` — never from the worker count or
which worker ran them.  Task results merge in task order.  Consequently
pooled results are **byte-identical across ``n_workers`` and pool
modes** for a fixed seed: ``n_workers`` changes how fast the answer
arrives, not what it is.  (Pooled and single-pass sequential runs draw
different stream layouts, so they agree in distribution, not bytes —
exactly like the scalar-vs-vectorized backends.)

Cost accounting is unchanged throughout: workers count one invocation
of ``g`` per path per step and the parent sums their counters.
"""

from __future__ import annotations

import hashlib
import os
import queue as queue_module
import threading
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory
from typing import Optional, Sequence

import numpy as np

from .forest import validate_plan
from .levels import normalize_ratios

#: Pool execution modes: process start methods plus the in-caller
#: fallback used when ``n_workers == 1`` (or on request, e.g. tests).
POOL_MODES = ("fork", "spawn", "inline")

_SEED_MOD = 2 ** 31

#: How many tasks each stopping-rule round is cut into.  A *constant*
#: (not derived from ``n_workers``), so the task decomposition — and
#: with it every pooled result — is identical however many workers
#: happen to drain the queue.
DEFAULT_TASKS_PER_ROUND = 8
DEFAULT_ROOTS_PER_TASK = 256
DEFAULT_MEMBERS_PER_TASK = 32


def derive_task_seed(seed: Optional[int], index: int,
                     salt: str = "task") -> Optional[int]:
    """Deterministic per-task seed from the run seed and task *index*.

    Structural: depends only on what the task is (its position in the
    work's task sequence), never on worker count or scheduling, which
    is what makes pooled results invariant under ``n_workers``.
    ``None`` stays ``None`` (fresh entropy per task).
    """
    if seed is None:
        return None
    digest = hashlib.blake2b(
        repr((int(seed), salt, int(index))).encode("utf-8"),
        digest_size=8).digest()
    return int.from_bytes(digest, "big") % _SEED_MOD


def cut_tasks(cohort: int, roots_per_task: int, seed: Optional[int],
              task_index: int) -> tuple:
    """Cut one round into fixed-size ``(n, seed)`` tasks.

    The single home of the task decomposition every pooled pass uses
    (forest rounds, SRS point rounds, SRS curve rounds): task sizes
    depend only on ``roots_per_task`` and seeds only on the running
    ``task_index``, which is what the byte-determinism guarantee rests
    on.  Returns ``(tasks, next_task_index)``.
    """
    tasks = []
    remaining = cohort
    while remaining > 0:
        n_roots = min(remaining, roots_per_task)
        tasks.append((n_roots, derive_task_seed(seed, task_index)))
        task_index += 1
        remaining -= n_roots
    return tasks, task_index


# ----------------------------------------------------------------------
# Work descriptors (registered once, pickled once per worker)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ForestWork:
    """A splitting-forest work unit: tasks are ``(n_roots, seed)``.

    Results come back through the shared :class:`CounterBlock` as
    per-root counter rows; ``capacity`` bounds a single task's roots
    (and sizes the block).
    """

    query: object
    partition: object
    ratios: tuple
    backend: str
    capacity: int


@dataclass(frozen=True)
class PathWork:
    """An SRS point-estimate work unit: tasks are ``(n_paths, seed)``;
    results are ``(n_paths, hits, steps)`` scalars."""

    query: object
    backend: str


@dataclass(frozen=True)
class CurveWork:
    """An SRS running-maxima curve work unit: tasks are
    ``(n_paths, seed)``; results are ``(level_counts, n_paths, steps)``."""

    query: object
    levels: tuple
    backend: str


@dataclass(frozen=True)
class FleetWork:
    """A fused-fleet work unit: tasks are member slices
    ``(lo, hi, seed)``; each task screens its slice to completion
    through one :class:`~repro.processes.base.FusedBatch` frontier.

    ``mode`` selects the pass: ``"screen"`` (per-member thresholds,
    SRS), ``"curves"`` (per-member threshold *grids*, running maxima
    per owner row) or ``"mlss"`` (fused splitting forest with a shared
    normalized partition).
    """

    mode: str
    processes: tuple
    z: object
    horizon: int
    betas: tuple = ()
    grids: tuple = ()
    partition: object = None
    ratio: object = 3
    quality: object = None
    max_steps: Optional[int] = None
    max_roots: Optional[int] = None
    batch_roots: int = 500
    adaptive: bool = True
    max_round_roots: int = 8192
    bootstrap_rounds: int = 200


# ----------------------------------------------------------------------
# Shared counter blocks
# ----------------------------------------------------------------------

class CounterBlock:
    """Preallocated per-root counter arrays over a raw buffer.

    Layout (all ``int64``): three ``(capacity, m)`` level matrices —
    landings, skips, crossings — followed by three ``(capacity,)``
    vectors — hits, max_levels, steps.  The buffer may be a
    ``multiprocessing.shared_memory`` view (cross-process) or a plain
    local array (inline mode); either way workers *write rows* and the
    parent *reads rows*, so counters never pass through pickle.
    """

    __slots__ = ("capacity", "num_levels", "landings", "skips",
                 "crossings", "hits", "max_levels", "steps")

    def __init__(self, capacity: int, num_levels: int, buffer):
        self.capacity = capacity
        self.num_levels = num_levels
        matrix = capacity * num_levels
        offset = 0
        for name in ("landings", "skips", "crossings"):
            view = np.frombuffer(buffer, dtype=np.int64, count=matrix,
                                 offset=offset)
            setattr(self, name, view.reshape(capacity, num_levels))
            offset += matrix * 8
        for name in ("hits", "max_levels", "steps"):
            setattr(self, name, np.frombuffer(
                buffer, dtype=np.int64, count=capacity, offset=offset))
            offset += capacity * 8

    @staticmethod
    def nbytes(capacity: int, num_levels: int) -> int:
        return 8 * capacity * (3 * num_levels + 3)

    @classmethod
    def local(cls, capacity: int, num_levels: int) -> "CounterBlock":
        """An in-process block (inline mode — same layout, no shm)."""
        return cls(capacity, num_levels,
                   np.zeros(cls.nbytes(capacity, num_levels),
                            dtype=np.uint8))

    def write_records(self, records: Sequence) -> int:
        """Store one :class:`RootRecord` per row; returns the count."""
        n = len(records)
        if n > self.capacity:
            raise ValueError(
                f"{n} records exceed the block capacity {self.capacity}")
        for i, record in enumerate(records):
            self.landings[i] = record.landings
            self.skips[i] = record.skips
            self.crossings[i] = record.crossings
            self.hits[i] = record.hits
            self.max_levels[i] = record.max_level
            self.steps[i] = record.steps
        return n

    def read(self, n: int) -> tuple:
        """Copies of the first ``n`` rows (the block is reused next task)."""
        return (self.landings[:n].copy(), self.skips[:n].copy(),
                self.crossings[:n].copy(), self.hits[:n].copy(),
                self.max_levels[:n].copy(), self.steps[:n].copy())

    def release(self) -> None:
        """Drop the buffer views (required before closing shared memory:
        live NumPy views pin the mapping open)."""
        for name in ("landings", "skips", "crossings", "hits",
                     "max_levels", "steps"):
            setattr(self, name, None)


# ----------------------------------------------------------------------
# Task execution (shared verbatim by workers and inline mode)
# ----------------------------------------------------------------------

def _execute(spec, payload, block: Optional[CounterBlock]):
    """Run one task of ``spec``; the single code path for every mode."""
    if isinstance(spec, ForestWork):
        return _run_forest_task(spec, payload, block)
    if isinstance(spec, PathWork):
        return _run_path_task(spec, payload)
    if isinstance(spec, CurveWork):
        return _run_curve_task(spec, payload)
    if isinstance(spec, FleetWork):
        return _run_fleet_task(spec, payload)
    raise TypeError(f"unknown work descriptor {type(spec).__name__}")


def _run_forest_task(spec: ForestWork, payload, block: CounterBlock):
    n_roots, seed = payload
    from .smlss import make_forest_runner  # circular-import guard
    runner = make_forest_runner(spec.backend, spec.query, spec.partition,
                                spec.ratios, seed)
    if hasattr(runner, "run_cohort"):
        records = runner.run_cohort(n_roots)
    else:
        records = runner.run_roots(n_roots)
    return block.write_records(records)


def _run_path_task(spec: PathWork, payload):
    n_paths, seed = payload
    from .srs import SRSSampler  # circular-import guard
    estimate = SRSSampler(batch_roots=n_paths, backend=spec.backend).run(
        spec.query, max_roots=n_paths, seed=seed)
    return (estimate.n_roots, estimate.hits, estimate.steps)


def _run_curve_task(spec: CurveWork, payload):
    n_paths, seed = payload
    from .srs import SRSSampler  # circular-import guard
    curve = SRSSampler(batch_roots=n_paths, backend=spec.backend).run_curve(
        spec.query, spec.levels, max_roots=n_paths, seed=seed)
    counts = tuple(estimate.hits for estimate in curve.estimates)
    return (counts, curve.n_roots, curve.steps)


def _run_fleet_task(spec: FleetWork, payload):
    lo, hi, seed = payload
    from ..processes.base import FusedBatch  # circular-import guard
    from . import fleet  # circular-import guard
    fused = FusedBatch(spec.processes[lo:hi])
    if spec.mode == "screen":
        n_paths, hits, steps, rounds = fleet._screen_members(
            fused, spec.z, spec.betas[lo:hi], spec.horizon, spec.quality,
            spec.max_steps, spec.max_roots, spec.batch_roots,
            spec.adaptive, spec.max_round_roots,
            np.random.default_rng(seed))
        return (n_paths.tolist(), hits.tolist(), steps.tolist(), rounds)
    if spec.mode == "curves":
        counts, n_paths, steps, rounds = fleet._curve_members(
            fused, spec.z, spec.grids[lo:hi], spec.horizon, spec.quality,
            spec.max_steps, spec.max_roots, spec.batch_roots,
            spec.adaptive, spec.max_round_roots,
            np.random.default_rng(seed))
        return ([c.tolist() for c in counts], n_paths.tolist(),
                steps.tolist(), rounds)
    if spec.mode == "mlss":
        rows = fleet._mlss_members(
            fused, spec.z, spec.betas[lo:hi], spec.partition, spec.ratio,
            spec.horizon, spec.quality, spec.max_steps, spec.max_roots,
            spec.batch_roots, spec.bootstrap_rounds, seed)
        return rows
    raise ValueError(f"unknown fleet mode {spec.mode!r}")


def _block_shape(spec) -> Optional[tuple]:
    """(capacity, num_levels) when the work returns counters via shm."""
    if isinstance(spec, ForestWork):
        return (spec.capacity, spec.partition.num_levels)
    return None


# ----------------------------------------------------------------------
# Worker process main loop
# ----------------------------------------------------------------------

def _attach_block(name: str):
    """Attach to a parent-owned shared block without tracker side effects.

    The resource tracker's cache is a name set shared by the whole
    process tree; the parent registers a block once at creation and
    unregisters it at ``unlink``.  A worker's attach would *re*-register
    the same name, and because tracker messages from different
    processes are unordered, that registration can land after the
    parent's unregister — leaving a phantom entry that the tracker
    "cleans up" (with a warning) at shutdown.  Workers therefore attach
    with registration suppressed (the documented pre-3.13 equivalent of
    ``SharedMemory(..., track=False)``).
    """
    from multiprocessing import resource_tracker
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Long-lived worker: register works once, run tasks forever.

    Messages: ``("register", handle, spec, block_name)``,
    ``("run", handle, task_index, payload)``, ``("unregister", handle)``
    and ``("stop",)``.  Results: ``(worker_id, task_index, "ok", meta)``
    or ``(worker_id, task_index, "error", traceback_text)``.
    """
    specs: dict = {}
    blocks: dict = {}
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "register":
            _, handle, spec, block_name = message
            specs[handle] = spec
            if block_name is not None:
                shm = _attach_block(block_name)
                capacity, num_levels = _block_shape(spec)
                blocks[handle] = (shm, CounterBlock(capacity, num_levels,
                                                    shm.buf))
        elif kind == "unregister":
            _, handle = message
            specs.pop(handle, None)
            attached = blocks.pop(handle, None)
            if attached is not None:
                attached[1].release()
                attached[0].close()
        elif kind == "run":
            _, handle, task_index, payload = message
            try:
                spec = specs[handle]
                attached = blocks.get(handle)
                block = attached[1] if attached is not None else None
                meta = _execute(spec, payload, block)
                result_queue.put((worker_id, task_index, "ok", meta))
            except Exception:
                result_queue.put((worker_id, task_index, "error",
                                  traceback.format_exc()))
    for shm, block in blocks.values():
        block.release()
        shm.close()


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------

class WorkerPool:
    """A persistent pool of simulation workers.

    Parameters
    ----------
    n_workers:
        Worker process count; ``None`` means ``os.cpu_count()``.
        ``n_workers == 1`` always runs inline (no processes) — the
        documented fallback, byte-identical to the multi-process modes.
    pool:
        ``"fork"`` (default; cheap startup, Linux/macOS), ``"spawn"``
        (portable, slower startup) or ``"inline"``.

    The pool is content-addressed, not closure-addressed: callers
    :meth:`register` a work descriptor once (one pickle per worker, one
    shared counter block per worker for forest works), then
    :meth:`run_tasks` ships only ``(handle, task_index, payload)``
    triples per round.  Results always return in task order, whatever
    order workers finish in, so merged counters are deterministic.

    Use as a context manager, or call :meth:`close`; an unclosed pool
    cleans up on garbage collection as a last resort.
    """

    def __init__(self, n_workers: Optional[int] = None,
                 pool: str = "fork"):
        if pool not in POOL_MODES:
            raise ValueError(
                f"unknown pool mode {pool!r}; choose from {POOL_MODES}")
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.mode = "inline" if (pool == "inline" or n_workers == 1) \
            else pool
        self._specs: dict = {}
        self._next_handle = 0
        self._closed = False
        # One pool may be shared by several threads (the engine keeps a
        # persistent pool across calls, and engines are documented as
        # multi-thread drivable).  Register/run/unregister all touch
        # the worker queues and the single result queue, so calls are
        # serialized: concurrent run_tasks would otherwise consume each
        # other's results (result tuples carry no call identity).
        self._lock = threading.RLock()
        self._inline_blocks: dict = {}
        self._blocks: dict = {}
        self._task_queues: list = []
        self._processes: list = []
        self._result_queue = None
        if self.mode != "inline":
            context = get_context(self.mode)
            self._result_queue = context.Queue()
            for worker_id in range(self.n_workers):
                task_queue = context.Queue()
                process = context.Process(
                    target=_worker_main,
                    args=(worker_id, task_queue, self._result_queue),
                    daemon=True)
                process.start()
                self._task_queues.append(task_queue)
                self._processes.append(process)

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Stop the workers and release every shared block (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for task_queue in self._task_queues:
                try:
                    task_queue.put(("stop",))
                except Exception:
                    pass
            for process in self._processes:
                process.join(timeout=5)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
            for shm, block in self._blocks.values():
                try:
                    block.release()
                    shm.close()
                    shm.unlink()
                except Exception:
                    pass
            self._blocks.clear()
            self._inline_blocks.clear()
            self._specs.clear()
            for task_queue in self._task_queues:
                try:
                    task_queue.close()
                    task_queue.cancel_join_thread()
                except Exception:
                    pass
            if self._result_queue is not None:
                try:
                    self._result_queue.close()
                    self._result_queue.cancel_join_thread()
                except Exception:
                    pass

    def _abort(self, reason: str):
        """Tear the pool down after a worker failure and raise."""
        self.close()
        raise RuntimeError(f"worker task failed:\n{reason}")

    # -- registration --------------------------------------------------

    def register(self, spec) -> int:
        """Register a work descriptor on every worker; returns a handle."""
        with self._lock:
            if self._closed:
                raise RuntimeError("the pool is closed")
            handle = self._next_handle
            self._next_handle += 1
            self._specs[handle] = spec
            shape = _block_shape(spec)
            if self.mode == "inline":
                if shape is not None:
                    self._inline_blocks[handle] = CounterBlock.local(*shape)
                return handle
            for worker_id, task_queue in enumerate(self._task_queues):
                block_name = None
                if shape is not None:
                    shm = shared_memory.SharedMemory(
                        create=True, size=CounterBlock.nbytes(*shape))
                    self._blocks[(handle, worker_id)] = (
                        shm, CounterBlock(shape[0], shape[1], shm.buf))
                    block_name = shm.name
                task_queue.put(("register", handle, spec, block_name))
            return handle

    def unregister(self, handle: int) -> None:
        """Drop a registered work and free its shared blocks."""
        with self._lock:
            if self._closed or handle not in self._specs:
                return
            self._specs.pop(handle, None)
            self._inline_blocks.pop(handle, None)
            for worker_id, task_queue in enumerate(self._task_queues):
                task_queue.put(("unregister", handle))
                attached = self._blocks.pop((handle, worker_id), None)
                if attached is not None:
                    shm, block = attached
                    block.release()
                    shm.close()
                    shm.unlink()

    # -- execution -----------------------------------------------------

    def run_tasks(self, handle: int, tasks: Sequence) -> list:
        """Run every task of a registered work; results in task order.

        Each worker holds at most one outstanding task, and the parent
        drains a worker's counter block before handing it the next
        task, so blocks are never overwritten while unread.  Calls are
        serialized under the pool lock: result messages carry no call
        identity, so two interleaved drains of the shared result queue
        would swap results.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("the pool is closed")
            spec = self._specs[handle]
            results: list = [None] * len(tasks)
            if self.mode == "inline":
                block = self._inline_blocks.get(handle)
                for index, payload in enumerate(tasks):
                    meta = _execute(spec, payload, block)
                    results[index] = self._finalize(spec, block, meta)
                return results
            pending = deque(enumerate(tasks))
            idle = deque(range(self.n_workers))
            outstanding = 0
            while pending or outstanding:
                while pending and idle:
                    worker_id = idle.popleft()
                    index, payload = pending.popleft()
                    self._task_queues[worker_id].put(
                        ("run", handle, index, payload))
                    outstanding += 1
                worker_id, index, status, meta = self._receive()
                if status != "ok":
                    self._abort(meta)
                attached = self._blocks.get((handle, worker_id))
                block = attached[1] if attached is not None else None
                results[index] = self._finalize(spec, block, meta)
                outstanding -= 1
                idle.append(worker_id)
            return results

    def _receive(self):
        """Next result, guarding against silently-dead workers."""
        while True:
            try:
                return self._result_queue.get(timeout=1.0)
            except queue_module.Empty:
                for process in self._processes:
                    if not process.is_alive():
                        self._abort(
                            f"worker pid {process.pid} exited with code "
                            f"{process.exitcode} while tasks were pending")

    @staticmethod
    def _finalize(spec, block: Optional[CounterBlock], meta):
        """Turn a worker's reply into the caller-facing result."""
        if isinstance(spec, ForestWork):
            return block.read(meta)
        return meta

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"WorkerPool(n_workers={self.n_workers}, "
                f"mode={self.mode!r}, works={len(self._specs)}, {state})")


# ----------------------------------------------------------------------
# Pooled forest accumulation (drop-in for the samplers)
# ----------------------------------------------------------------------

class PooledForestRunner:
    """Splitting-forest simulation sharded over a :class:`WorkerPool`.

    Implements the same ``accumulate(aggregate, batch_roots, ...)``
    contract as :class:`~repro.core.forest.ForestRunner` and
    :class:`~repro.core.forest.VectorizedForestRunner`, so the MLSS
    samplers' stopping rules, bootstrap schedules and curve folds run
    unmodified on top of it.  Each round expands to at least
    ``tasks_per_round`` tasks of ``roots_per_task`` root trees; task
    seeds derive from the task index (:func:`derive_task_seed`) and
    results merge in task order, making pooled aggregates invariant
    under the worker count.

    Budgets are enforced at round granularity (a superset of the
    vectorized runner's cohort granularity): every started task runs to
    completion, so ``max_steps`` can overshoot by up to one round.

    Call :meth:`close` when done (the samplers do) to release the
    work's shared counter blocks; the pool itself stays alive for the
    next run.
    """

    def __init__(self, pool: WorkerPool, query, partition, ratios,
                 backend: str, seed: Optional[int],
                 roots_per_task: int = DEFAULT_ROOTS_PER_TASK,
                 tasks_per_round: int = DEFAULT_TASKS_PER_ROUND):
        if roots_per_task < 1:
            raise ValueError(
                f"roots_per_task must be >= 1, got {roots_per_task}")
        if tasks_per_round < 1:
            raise ValueError(
                f"tasks_per_round must be >= 1, got {tasks_per_round}")
        validate_plan(query, partition)
        self.pool = pool
        self.partition = partition
        self.ratios = normalize_ratios(ratios, partition.num_levels)
        self.seed = seed
        self.roots_per_task = roots_per_task
        self.tasks_per_round = tasks_per_round
        self._task_index = 0
        self._handle = pool.register(ForestWork(
            query=query, partition=partition, ratios=self.ratios,
            backend=backend, capacity=roots_per_task))

    def accumulate(self, aggregate, batch_roots: int,
                   max_steps=None, max_roots=None) -> bool:
        """Fold one pooled round of root trees into ``aggregate``."""
        cohort = max(batch_roots, self.roots_per_task * self.tasks_per_round)
        if max_roots is not None:
            cohort = min(cohort, max_roots - aggregate.n_roots)
        if max_steps is not None and aggregate.steps >= max_steps:
            return True
        if cohort <= 0:
            return True
        tasks, self._task_index = cut_tasks(
            cohort, self.roots_per_task, self.seed, self._task_index)
        for arrays in self.pool.run_tasks(self._handle, tasks):
            aggregate.extend_arrays(*arrays)
        return ((max_roots is not None and aggregate.n_roots >= max_roots)
                or (max_steps is not None
                    and aggregate.steps >= max_steps))

    def close(self) -> None:
        """Release this work's registration and shared blocks."""
        self.pool.unregister(self._handle)
