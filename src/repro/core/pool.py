"""Persistent worker pool (Section 3.1, "Parallel Computations" —
scaled to every backend).

Root trees, SRS paths, fleet members and plan-search trials are all
independent, so every sampler in the library parallelizes by *sharding
work over workers*.  The original ``run_parallel_mlss`` did this with a
throwaway ``multiprocessing.Pool`` of scalar ``ForestRunner`` shards:
every call paid process startup, every shard pickled its closure, and
none of the vectorized / fused wins reached a second core.  This module
replaces that with a persistent execution layer:

* :class:`WorkerPool` — long-lived workers.  ``"fork"`` / ``"spawn"``
  start worker *processes*; ``"thread"`` starts worker *threads* that
  share the parent address space (no process startup, no pickling, no
  shared-memory segments — the NumPy hot kernels release the GIL, so
  threads scale on real simulation work and are the automatic fallback
  where fork is unavailable); ``"inline"`` runs the identical code path
  in the caller.  A *work* — query, partition, fleet, backend — is
  registered **once** (one pickle per process worker, a shared
  reference per thread worker); subsequent rounds send only tiny *work
  descriptors* (task id, root budget, derived seed).
* :class:`CounterBlock` — preallocated per-(work, worker) counter
  arrays through which forest workers return their per-root
  :class:`~repro.core.records.RootRecord` counters.  Process modes back
  them with ``multiprocessing.shared_memory`` (counter matrices cross
  the process boundary as shared bytes, never as pickles); thread and
  inline modes use plain local buffers with the identical layout.
* :class:`_TaskStream` / :meth:`WorkerPool.stream` — the pipelined
  submission path.  ``submit`` is non-blocking and ``collect`` returns
  results in submission order, so callers can keep a bounded window of
  tasks in flight: workers that finish a round's tasks early pick up
  the next round's tasks while the parent still waits on stragglers,
  instead of idling at a per-round barrier.  :meth:`WorkerPool.
  run_tasks` (submit everything, collect everything) is a thin wrapper
  over a stream.
* :class:`RoundPipeline` — one-round-lookahead speculation on top of a
  stream for round-structured callers (the pooled samplers): while
  round *k*'s stragglers drain, round *k+1*'s *predicted* tasks are
  already queued; if the stopping rule ends the run first, the
  speculative results are discarded unread.  Because tasks are pure
  and results merge in task order, speculation changes wall-clock
  only, never results.
* :class:`PooledForestRunner` — a drop-in implementation of the
  ``accumulate`` contract shared by :class:`~repro.core.forest.
  ForestRunner` and :class:`~repro.core.forest.VectorizedForestRunner`,
  so the g-MLSS / s-MLSS samplers (point *and* curve passes) run pooled
  without changing a line of their stopping logic.

Determinism
-----------

Work decomposes into tasks of a fixed size (``roots_per_task`` roots,
``members_per_task`` fleet members) whose seeds derive from the *task
index* via :func:`derive_task_seed` — never from the worker count or
which worker ran them.  Task results merge in task order.  Consequently
pooled results are **byte-identical across ``n_workers``, pool modes
and the streamed/barrier scheduling paths** for a fixed seed:
``n_workers`` changes how fast the answer arrives, not what it is.
(Pooled and single-pass sequential runs draw different stream layouts,
so they agree in distribution, not bytes — exactly like the
scalar-vs-vectorized backends.)

Budgets
-------

``max_roots`` is exact.  ``max_steps`` is *strict*: the final round's
tasks are trimmed against the remaining budget and each task carries a
per-task step cap that its worker enforces by never starting a root
tree whose worst-case cost no longer fits (see
:func:`_worst_case_root_cost`).  Strictness costs pipelining — a
round's caps depend on the previous round's measured spend, so
speculation is disabled under ``max_steps``.

Cost accounting is unchanged throughout: workers count one invocation
of ``g`` per path per step and the parent sums their counters.

Fault tolerance
---------------

A dead worker no longer necessarily aborts the run.  The parent's
result loop doubles as a supervisor: when a worker process dies (or,
with ``task_timeout_seconds`` set, overruns its deadline and is
terminated), the pool respawns it in the same mode, re-registers every
live work descriptor on the replacement (fresh shared-memory counter
blocks; the dead worker's segments are unlinked, never leaked), and
re-submits only the tasks that were in flight on that worker.  Because
task seeds are structural (:func:`derive_task_seed` over the task
*index*), a re-executed task is **byte-identical** to the original, so
recovery preserves every determinism gate.  Process workers return
results over *per-worker pipes* written synchronously in the worker —
a crash, even mid-send, can wedge only the dying worker's own channel
(discarded at respawn); a shared ``mp.Queue`` would let one SIGKILL
orphan the queue's write lock and hang every surviving worker.
``max_worker_restarts``
bounds respawns per burst of work and ``task_retry_limit`` bounds
re-submissions of any single task; once either budget is exhausted the
pool falls back to the historical behavior — tear everything down
(unlinking all segments) and raise a ``RuntimeError``, never hang.
The default budget is 0, i.e. supervision is opt-in;
:class:`~repro.engine.policy.ParallelPolicy` turns it on for
engine-owned pools.
"""

from __future__ import annotations

import hashlib
import os
import queue as queue_module
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context, shared_memory
from multiprocessing.connection import wait as _connection_wait
from typing import Optional, Sequence

import numpy as np

from .forest import validate_plan
from .levels import normalize_ratios

#: Pool execution modes: process start methods (``"fork"``/``"spawn"``),
#: the shared-address-space thread backend (``"thread"``) and the
#: in-caller fallback used when ``n_workers == 1`` (or on request).
POOL_MODES = ("fork", "spawn", "thread", "inline")

#: Optional fault-injection hook (see :mod:`repro.faults`): a callable
#: ``hook(site, **context)`` or ``None``.  Sites consulted here:
#: ``"pool.dispatch"`` in the parent right after a task is handed to a
#: worker (context: ``pool``, ``worker_id``, ``task_id``) — where a
#: :class:`~repro.faults.FaultPlan` kills workers at a point where the
#: victim is provably between tasks, so queues stay uncorrupted — and
#: ``"pool.task"`` in the executing worker before a task runs (thread
#: and inline modes always; fork workers via inheritance).
fault_hook = None

_SEED_MOD = 2 ** 31

#: How many tasks each stopping-rule round is cut into.  A *constant*
#: (not derived from ``n_workers``), so the task decomposition — and
#: with it every pooled result — is identical however many workers
#: happen to drain the queue.
DEFAULT_TASKS_PER_ROUND = 8
DEFAULT_ROOTS_PER_TASK = 256
DEFAULT_MEMBERS_PER_TASK = 32


def derive_task_seed(seed: Optional[int], index: int,
                     salt: str = "task") -> Optional[int]:
    """Deterministic per-task seed from the run seed and task *index*.

    Structural: depends only on what the task is (its position in the
    work's task sequence), never on worker count or scheduling, which
    is what makes pooled results invariant under ``n_workers``.
    ``None`` stays ``None`` (fresh entropy per task).
    """
    if seed is None:
        return None
    digest = hashlib.blake2b(
        repr((int(seed), salt, int(index))).encode("utf-8"),
        digest_size=8).digest()
    return int.from_bytes(digest, "big") % _SEED_MOD


def cut_tasks(cohort: int, roots_per_task: int, seed: Optional[int],
              task_index: int, step_budget: Optional[int] = None) -> tuple:
    """Cut one round into fixed-size ``(n, seed[, cap])`` tasks.

    The single home of the task decomposition every pooled pass uses
    (forest rounds, SRS point rounds, SRS curve rounds): task sizes
    depend only on ``roots_per_task`` and seeds only on the running
    ``task_index``, which is what the byte-determinism guarantee rests
    on.  With ``step_budget``, each task additionally carries its share
    of the remaining step budget (proportional to its root count) as a
    hard per-task cap — the worker stops launching roots once the cap
    cannot cover another worst-case tree, so the round can never
    overshoot ``step_budget``.  Returns ``(tasks, next_task_index)``.
    """
    tasks = []
    remaining = cohort
    while remaining > 0:
        n_roots = min(remaining, roots_per_task)
        task_seed = derive_task_seed(seed, task_index)
        if step_budget is None:
            tasks.append((n_roots, task_seed))
        else:
            tasks.append((n_roots, task_seed,
                          step_budget * n_roots // cohort))
        task_index += 1
        remaining -= n_roots
    return tasks, task_index


# ----------------------------------------------------------------------
# Work descriptors (registered once, pickled once per worker)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ForestWork:
    """A splitting-forest work unit: tasks are ``(n_roots, seed)`` or
    ``(n_roots, seed, step_cap)``.

    Results come back through the shared :class:`CounterBlock` as
    per-root counter rows; ``capacity`` bounds a single task's roots
    (and sizes the block).  A ``step_cap`` makes the task stop
    launching roots once the cap cannot cover another worst-case tree,
    so capped tasks never exceed their budget share.
    """

    query: object
    partition: object
    ratios: tuple
    backend: str
    capacity: int


@dataclass(frozen=True)
class PathWork:
    """An SRS point-estimate work unit: tasks are ``(n_paths, seed)``;
    results are ``(n_paths, hits, steps)`` scalars."""

    query: object
    backend: str


@dataclass(frozen=True)
class CurveWork:
    """An SRS running-maxima curve work unit: tasks are
    ``(n_paths, seed)``; results are ``(level_counts, n_paths, steps)``."""

    query: object
    levels: tuple
    backend: str


@dataclass(frozen=True)
class FleetWork:
    """A fused-fleet work unit: tasks are member slices
    ``(lo, hi, seed)``; each task screens its slice to completion
    through one :class:`~repro.processes.base.FusedBatch` frontier.

    ``mode`` selects the pass: ``"screen"`` (per-member thresholds,
    SRS), ``"curves"`` (per-member threshold *grids*, running maxima
    per owner row) or ``"mlss"`` (fused splitting forest with a shared
    normalized partition).
    """

    mode: str
    processes: tuple
    z: object
    horizon: int
    betas: tuple = ()
    grids: tuple = ()
    partition: object = None
    ratio: object = 3
    quality: object = None
    max_steps: Optional[int] = None
    max_roots: Optional[int] = None
    batch_roots: int = 500
    adaptive: bool = True
    max_round_roots: int = 8192
    bootstrap_rounds: int = 200


@dataclass(frozen=True)
class PlanSearchWork:
    """A plan-search work unit (greedy trials and balanced pilots).

    Tasks are ``("trial", boundaries, seed)`` — run one fixed-budget
    :func:`~repro.core.optimizer.evaluate_partition` trial of the plan
    with those interior boundaries and return the
    :class:`~repro.core.optimizer.PlanTrial` — or
    ``("pilot", n_paths, seed)`` — run one chunk of the balanced-growth
    SRS pilot and return its (unsorted) per-path maxima.  Trial and
    pilot seeds are structural (derived from the trial/chunk index), so
    pool-sharded plan search returns byte-identical plans to the
    parent-only search.
    """

    query: object
    ratio: object = 3
    trial_steps: int = 20000
    backend: str = "scalar"


# ----------------------------------------------------------------------
# Shared counter blocks
# ----------------------------------------------------------------------

class CounterBlock:
    """Preallocated per-root counter arrays over a raw buffer.

    Layout (all ``int64``): three ``(capacity, m)`` level matrices —
    landings, skips, crossings — followed by three ``(capacity,)``
    vectors — hits, max_levels, steps.  The buffer may be a
    ``multiprocessing.shared_memory`` view (cross-process) or a plain
    local array (thread and inline modes); either way workers *write
    rows* and the parent *reads rows*, so counters never pass through
    pickle.
    """

    __slots__ = ("capacity", "num_levels", "landings", "skips",
                 "crossings", "hits", "max_levels", "steps")

    def __init__(self, capacity: int, num_levels: int, buffer):
        self.capacity = capacity
        self.num_levels = num_levels
        matrix = capacity * num_levels
        offset = 0
        for name in ("landings", "skips", "crossings"):
            view = np.frombuffer(buffer, dtype=np.int64, count=matrix,
                                 offset=offset)
            setattr(self, name, view.reshape(capacity, num_levels))
            offset += matrix * 8
        for name in ("hits", "max_levels", "steps"):
            setattr(self, name, np.frombuffer(
                buffer, dtype=np.int64, count=capacity, offset=offset))
            offset += capacity * 8

    @staticmethod
    def nbytes(capacity: int, num_levels: int) -> int:
        return 8 * capacity * (3 * num_levels + 3)

    @classmethod
    def local(cls, capacity: int, num_levels: int) -> "CounterBlock":
        """An in-process block (thread/inline modes — same layout, no shm)."""
        return cls(capacity, num_levels,
                   np.zeros(cls.nbytes(capacity, num_levels),
                            dtype=np.uint8))

    def write_records(self, records: Sequence) -> int:
        """Store one :class:`RootRecord` per row; returns the count."""
        n = len(records)
        if n > self.capacity:
            raise ValueError(
                f"{n} records exceed the block capacity {self.capacity}")
        for i, record in enumerate(records):
            self.landings[i] = record.landings
            self.skips[i] = record.skips
            self.crossings[i] = record.crossings
            self.hits[i] = record.hits
            self.max_levels[i] = record.max_level
            self.steps[i] = record.steps
        return n

    def read(self, n: int) -> tuple:
        """Copies of the first ``n`` rows (the block is reused next task)."""
        return (self.landings[:n].copy(), self.skips[:n].copy(),
                self.crossings[:n].copy(), self.hits[:n].copy(),
                self.max_levels[:n].copy(), self.steps[:n].copy())

    def release(self) -> None:
        """Drop the buffer views (required before closing shared memory:
        live NumPy views pin the mapping open)."""
        for name in ("landings", "skips", "crossings", "hits",
                     "max_levels", "steps"):
            setattr(self, name, None)


# ----------------------------------------------------------------------
# Task execution (shared verbatim by workers and inline mode)
# ----------------------------------------------------------------------

def _execute(spec, payload, block: Optional[CounterBlock]):
    """Run one task of ``spec``; the single code path for every mode."""
    if fault_hook is not None:
        fault_hook("pool.task", spec=spec, payload=payload)
    if isinstance(spec, ForestWork):
        return _run_forest_task(spec, payload, block)
    if isinstance(spec, PathWork):
        return _run_path_task(spec, payload)
    if isinstance(spec, CurveWork):
        return _run_curve_task(spec, payload)
    if isinstance(spec, FleetWork):
        return _run_fleet_task(spec, payload)
    if isinstance(spec, PlanSearchWork):
        return _run_plan_task(spec, payload)
    raise TypeError(f"unknown work descriptor {type(spec).__name__}")


def _worst_case_root_cost(spec: ForestWork) -> int:
    """An upper bound on one root tree's step cost under ``spec``.

    A tree has at most ``prod_{k<=i} r_k`` path segments at level ``i``
    and every segment runs at most ``horizon`` steps, so the tree costs
    at most ``horizon * sum_i prod_{k<=i} r_k``.  Deliberately
    conservative: it is the guarantee behind the strict ``max_steps``
    contract (a capped task never *starts* a root it might not afford).
    """
    total = 0
    product = 1
    for ratio in spec.ratios:
        product *= ratio
        total += product
    return spec.query.horizon * total


def _run_forest_task(spec: ForestWork, payload, block: CounterBlock):
    if len(payload) == 2:
        (n_roots, seed), step_cap = payload, None
    else:
        n_roots, seed, step_cap = payload
    from .smlss import make_forest_runner  # circular-import guard
    runner = make_forest_runner(spec.backend, spec.query, spec.partition,
                                spec.ratios, seed)
    run_batch = getattr(runner, "run_cohort", None) or runner.run_roots
    if step_cap is None:
        records = run_batch(n_roots)
    else:
        # Strict budget: only start roots whose worst-case tree cost
        # still fits under the cap.  The chunk sequence depends only on
        # the payload (and the per-chunk simulation itself), so capped
        # tasks stay byte-identical across workers and pool modes.
        worst = _worst_case_root_cost(spec)
        records = []
        used = 0
        remaining = n_roots
        while remaining > 0 and used + worst <= step_cap:
            affordable = max(int((step_cap - used) // worst), 1)
            chunk = run_batch(min(remaining, affordable))
            records.extend(chunk)
            used += sum(record.steps for record in chunk)
            remaining -= len(chunk)
    return block.write_records(records)


def _run_path_task(spec: PathWork, payload):
    n_paths, seed = payload
    from .srs import SRSSampler  # circular-import guard
    estimate = SRSSampler(batch_roots=n_paths, backend=spec.backend).run(
        spec.query, max_roots=n_paths, seed=seed)
    return (estimate.n_roots, estimate.hits, estimate.steps)


def _run_curve_task(spec: CurveWork, payload):
    n_paths, seed = payload
    from .srs import SRSSampler  # circular-import guard
    curve = SRSSampler(batch_roots=n_paths, backend=spec.backend).run_curve(
        spec.query, spec.levels, max_roots=n_paths, seed=seed)
    counts = tuple(estimate.hits for estimate in curve.estimates)
    return (counts, curve.n_roots, curve.steps)


def _run_fleet_task(spec: FleetWork, payload):
    lo, hi, seed = payload
    from ..processes.base import FusedBatch  # circular-import guard
    from . import fleet  # circular-import guard
    fused = FusedBatch(spec.processes[lo:hi])
    if spec.mode == "screen":
        n_paths, hits, steps, rounds = fleet._screen_members(
            fused, spec.z, spec.betas[lo:hi], spec.horizon, spec.quality,
            spec.max_steps, spec.max_roots, spec.batch_roots,
            spec.adaptive, spec.max_round_roots,
            np.random.default_rng(seed))
        return (n_paths.tolist(), hits.tolist(), steps.tolist(), rounds)
    if spec.mode == "curves":
        counts, n_paths, steps, rounds = fleet._curve_members(
            fused, spec.z, spec.grids[lo:hi], spec.horizon, spec.quality,
            spec.max_steps, spec.max_roots, spec.batch_roots,
            spec.adaptive, spec.max_round_roots,
            np.random.default_rng(seed))
        return ([c.tolist() for c in counts], n_paths.tolist(),
                steps.tolist(), rounds)
    if spec.mode == "mlss":
        rows = fleet._mlss_members(
            fused, spec.z, spec.betas[lo:hi], spec.partition, spec.ratio,
            spec.horizon, spec.quality, spec.max_steps, spec.max_roots,
            spec.batch_roots, spec.bootstrap_rounds, seed,
            adaptive=spec.adaptive,
            max_round_roots=spec.max_round_roots)
        return rows
    raise ValueError(f"unknown fleet mode {spec.mode!r}")


def _run_plan_task(spec: PlanSearchWork, payload):
    kind = payload[0]
    if kind == "trial":
        _, boundaries, seed = payload
        from .levels import LevelPartition  # local: keep import cheap
        from .optimizer import evaluate_partition  # circular-import guard
        return evaluate_partition(
            spec.query, LevelPartition(boundaries), ratio=spec.ratio,
            trial_steps=spec.trial_steps, seed=seed, backend=spec.backend)
    if kind == "pilot":
        _, n_paths, seed = payload
        from .balanced import pilot_chunk_max_values  # circular-import guard
        return pilot_chunk_max_values(spec.query, n_paths, seed=seed,
                                      backend=spec.backend)
    raise ValueError(f"unknown plan-search task kind {kind!r}")


def _block_shape(spec) -> Optional[tuple]:
    """(capacity, num_levels) when the work returns counters via a block."""
    if isinstance(spec, ForestWork):
        return (spec.capacity, spec.partition.num_levels)
    return None


# ----------------------------------------------------------------------
# Worker main loop (processes and threads alike)
# ----------------------------------------------------------------------

def _attach_block(name: str):
    """Attach to a parent-owned shared block without tracker side effects.

    The resource tracker's cache is a name set shared by the whole
    process tree; the parent registers a block once at creation and
    unregisters it at ``unlink``.  A worker's attach would *re*-register
    the same name, and because tracker messages from different
    processes are unordered, that registration can land after the
    parent's unregister — leaving a phantom entry that the tracker
    "cleans up" (with a warning) at shutdown.  Workers therefore attach
    with registration suppressed (the documented pre-3.13 equivalent of
    ``SharedMemory(..., track=False)``).
    """
    from multiprocessing import resource_tracker
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _worker_main(worker_id: int, task_queue, result_channel) -> None:
    """Long-lived worker: register works once, run tasks forever.

    The same loop serves process workers and thread workers.  Messages:
    ``("register", handle, spec, block_ref)`` — ``block_ref`` is a
    shared-memory *name* for process workers, the :class:`CounterBlock`
    itself for thread workers (shared address space), or ``None`` —
    ``("run", handle, task_id, payload)``, ``("unregister", handle)``
    and ``("stop",)``.  Results: ``(worker_id, task_id, "ok", meta)``
    or ``(worker_id, task_id, "error", traceback_text)``.

    ``result_channel`` is this worker's *private* pipe connection for
    process workers (sent synchronously in this thread — no feeder
    thread, no lock shared with other workers, so a worker killed at
    any moment can wedge at most its own channel, which the supervisor
    discards wholesale) and the pool-shared ``queue.Queue`` for thread
    workers (threads cannot be killed, so sharing stays safe).
    """
    emit = result_channel.put if hasattr(result_channel, "put") \
        else result_channel.send
    specs: dict = {}
    blocks: dict = {}
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "register":
            _, handle, spec, block_ref = message
            specs[handle] = spec
            if isinstance(block_ref, CounterBlock):
                blocks[handle] = (None, block_ref)
            elif block_ref is not None:
                shm = _attach_block(block_ref)
                capacity, num_levels = _block_shape(spec)
                blocks[handle] = (shm, CounterBlock(capacity, num_levels,
                                                    shm.buf))
        elif kind == "unregister":
            _, handle = message
            specs.pop(handle, None)
            attached = blocks.pop(handle, None)
            if attached is not None and attached[0] is not None:
                attached[1].release()
                attached[0].close()
        elif kind == "run":
            _, handle, task_id, payload = message
            try:
                spec = specs[handle]
                attached = blocks.get(handle)
                block = attached[1] if attached is not None else None
                meta = _execute(spec, payload, block)
                emit((worker_id, task_id, "ok", meta))
            except Exception:
                emit((worker_id, task_id, "error",
                      traceback.format_exc()))
    for shm, block in blocks.values():
        if shm is not None:
            block.release()
            shm.close()


# ----------------------------------------------------------------------
# Streams: the pipelined submission path
# ----------------------------------------------------------------------

class _TaskStream:
    """Ordered, pipelined task submission for one registered work.

    ``submit`` enqueues a payload without blocking and returns its
    sequence number; ``collect`` blocks until that task's (finalized)
    result is available, draining and routing the pool's shared result
    queue as needed.  Several streams may be open on one pool at once —
    every in-flight task carries a pool-unique id, so results are
    routed to their owning stream whatever order workers finish in
    (this is also what makes concurrent ``run_tasks`` calls from
    several threads safe).  ``discard`` drops a submitted task's result
    (cancelling it outright if it has not been dispatched yet) — the
    primitive behind speculative round submission.

    On the inline pool, submitted tasks execute lazily inside
    ``collect``, so discarded speculative tasks cost nothing.

    The in-flight window is bounded by the caller: each worker holds at
    most one outstanding task, and the pooled samplers submit at most
    one round ahead, so at most ``2 * tasks_per_round`` tasks are ever
    pending or running per stream.
    """

    __slots__ = ("pool", "handle", "_next_seq", "_pending", "_live",
                 "_results", "_discarded", "_retries", "_closed")

    def __init__(self, pool: "WorkerPool", handle: int):
        self.pool = pool
        self.handle = handle
        self._next_seq = 0
        self._pending: dict = {}    # seq -> payload, not yet dispatched
        self._live: set = set()     # seqs running on a worker
        self._results: dict = {}    # seq -> finalized result
        self._discarded: set = set()  # live seqs to drop on arrival
        self._retries: dict = {}    # seq -> prior submission count
        self._closed = False

    def submit(self, payload) -> int:
        """Queue one task; returns its sequence number (never blocks)."""
        pool = self.pool
        with pool._lock:
            if self._closed:
                raise RuntimeError("the stream is closed")
            if pool._closed:
                raise RuntimeError("the pool is closed")
            seq = self._next_seq
            self._next_seq += 1
            self._pending[seq] = payload
            if pool.mode != "inline":
                pool._dispatch.append((self, seq))
                pool._pump()
            return seq

    def collect(self, seq: int):
        """Block until task ``seq``'s result is ready and return it."""
        pool = self.pool
        with pool._lock:
            while True:
                if seq in self._results:
                    return self._results.pop(seq)
                if self._closed:
                    raise RuntimeError("the stream is closed")
                if pool._closed:
                    raise RuntimeError("the pool is closed")
                if seq not in self._pending and seq not in self._live:
                    raise KeyError(
                        f"task {seq} was never submitted or was discarded")
                if pool.mode == "inline":
                    payload = self._pending.pop(seq)
                    spec = pool._specs[self.handle]
                    block = pool._inline_blocks.get(self.handle)
                    meta = _execute(spec, payload, block)
                    return pool._finalize(spec, block, meta)
                pool._pump()
                pool._route_one()

    def discard(self, seq: int) -> None:
        """Drop task ``seq``'s result (cancel it if not yet dispatched)."""
        pool = self.pool
        with pool._lock:
            self._results.pop(seq, None)
            if seq in self._pending:
                # Never dispatched: the dispatch queue skips it lazily.
                del self._pending[seq]
            elif seq in self._live:
                self._discarded.add(seq)

    def close(self) -> None:
        """Cancel pending tasks and drop any in-flight results."""
        pool = self.pool
        with pool._lock:
            if self._closed:
                return
            self._closed = True
            self._pending.clear()
            self._results.clear()
            self._retries.clear()
            self._discarded.update(self._live)


class RoundPipeline:
    """One-round-lookahead speculation over a :class:`_TaskStream`.

    Round-structured callers (the pooled samplers) call
    :meth:`run_round` with the round's tasks plus an optional
    *prediction* of the next round's tasks.  Predicted tasks are
    submitted before the current round's results are collected, so
    workers that finish early start on the next round while the parent
    still waits on stragglers.  When the next round's actual tasks
    match the prediction (the common case — predictions are exact
    whenever the round schedule doesn't depend on unmeasured results),
    their results are simply collected; on any mismatch — or when the
    caller stops — the speculative results are discarded unread, so
    speculation can change wall-clock time but never results.
    """

    def __init__(self, pool: "WorkerPool", handle: int):
        self._stream = pool.stream(handle)
        self._speculated: deque = deque()  # (seq, payload) in task order

    def run_round(self, tasks: Sequence, predicted: Optional[Sequence] = None
                  ) -> list:
        """Run one round's tasks; results in task order.

        ``predicted`` — the next round's expected tasks, submitted
        speculatively before this round's results are collected.
        """
        stream = self._stream
        seqs = []
        for payload in tasks:
            if self._speculated and self._speculated[0][1] == payload:
                seqs.append(self._speculated.popleft()[0])
            else:
                self.flush()
                seqs.append(stream.submit(payload))
        # Anything speculated beyond this round's actual tasks was a
        # misprediction; drop it before speculating afresh.
        self.flush()
        for payload in (predicted or ()):
            self._speculated.append((stream.submit(payload), payload))
        return [stream.collect(seq) for seq in seqs]

    def flush(self) -> None:
        """Discard every outstanding speculative task."""
        while self._speculated:
            seq, _ = self._speculated.popleft()
            self._stream.discard(seq)

    def close(self) -> None:
        self.flush()
        self._stream.close()


class _InflightTask:
    """Everything needed to route — or deterministically re-run — one
    dispatched task: its stream and sequence number (routing), the
    payload and prior retry count (recovery), the worker it runs on
    (failure attribution) and its dispatch time (deadline checks)."""

    __slots__ = ("stream", "seq", "payload", "worker_id", "retries",
                 "started_at")

    def __init__(self, stream, seq, payload, worker_id, retries):
        self.stream = stream
        self.seq = seq
        self.payload = payload
        self.worker_id = worker_id
        self.retries = retries
        self.started_at = time.monotonic()


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------

class WorkerPool:
    """A persistent pool of simulation workers.

    Parameters
    ----------
    n_workers:
        Worker count; ``None`` means ``os.cpu_count()``.
        ``n_workers == 1`` always runs inline (no workers) — the
        documented fallback, byte-identical to the parallel modes.
    pool:
        ``"fork"`` (default; cheap startup, Linux/macOS), ``"spawn"``
        (portable, slower startup), ``"thread"`` (shared address
        space: no startup or pickle costs, scales because the NumPy
        simulation kernels release the GIL; also the automatic
        fallback when fork is unavailable) or ``"inline"``.
    max_worker_restarts:
        How many dead (or deadline-overrunning) workers the supervisor
        may respawn before falling back to the abort path.  The budget
        replenishes whenever the pool goes quiescent (no tasks queued
        or in flight), so it bounds restarts per *burst* of work, not
        per pool lifetime.  ``0`` (the default) disables supervision:
        any dead worker aborts the run, exactly the historical
        behavior.
    task_retry_limit:
        How many times any single task may be re-submitted after its
        worker died; beyond it the run aborts even when restart budget
        remains (a task that kills every worker it lands on is a
        poison pill, not a crash).
    task_timeout_seconds:
        Optional per-task deadline.  A process worker whose current
        task overruns it is terminated and handled exactly like a
        crashed worker (respawn + deterministic retry, budgets
        permitting).  ``None`` disables the deadline; thread workers
        cannot be terminated, so the deadline is process-mode only.

    The pool is content-addressed, not closure-addressed: callers
    :meth:`register` a work descriptor once (one pickle per process
    worker, one counter block per worker for forest works), then run
    tasks through :meth:`run_tasks` (submit all, collect all) or a
    pipelined :meth:`stream`.  Results always return in task order,
    whatever order workers finish in, so merged counters are
    deterministic.  In-flight tasks carry pool-unique ids, so several
    streams — including concurrent ``run_tasks`` calls from different
    threads — share the workers without swapping results.

    A worker death during a run is survivable: with a restart budget
    (``max_worker_restarts > 0``) the supervisor respawns the worker
    and deterministically re-runs only its in-flight tasks — see the
    module docstring's *Fault tolerance* section.  Once budgets are
    exhausted (or by default), the failure aborts the run with a
    ``RuntimeError``, never a hang.

    Use as a context manager, or call :meth:`close`; an unclosed pool
    cleans up on garbage collection as a last resort.  ``close`` (and
    the abort path after a worker failure) unlinks every shared counter
    block even when workers died mid-round, so abnormal teardown leaks
    no shared-memory segments.
    """

    def __init__(self, n_workers: Optional[int] = None,
                 pool: str = "fork", max_worker_restarts: int = 0,
                 task_retry_limit: int = 1,
                 task_timeout_seconds: Optional[float] = None):
        if pool not in POOL_MODES:
            raise ValueError(
                f"unknown pool mode {pool!r}; choose from {POOL_MODES}")
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_worker_restarts < 0:
            raise ValueError(f"max_worker_restarts must be >= 0, got "
                             f"{max_worker_restarts}")
        if task_retry_limit < 0:
            raise ValueError(f"task_retry_limit must be >= 0, got "
                             f"{task_retry_limit}")
        if task_timeout_seconds is not None and task_timeout_seconds <= 0:
            raise ValueError(f"task_timeout_seconds must be > 0, got "
                             f"{task_timeout_seconds}")
        self.n_workers = n_workers
        self.max_worker_restarts = max_worker_restarts
        self.task_retry_limit = task_retry_limit
        self.task_timeout_seconds = task_timeout_seconds
        #: Lifetime supervision counters (never reset; observability).
        self.worker_restarts = 0
        self.tasks_recovered = 0
        self._restarts_used = 0
        mode = "inline" if (pool == "inline" or n_workers == 1) else pool
        if mode == "fork" and "fork" not in get_all_start_methods():
            # Platforms without fork (Windows, some macOS setups) get
            # the fast shared-address-space default instead of paying
            # spawn startup per pool.
            mode = "thread"
        self.mode = mode
        self._specs: dict = {}
        self._next_handle = 0
        self._closed = False
        # One pool may be shared by several threads (the engine keeps a
        # persistent pool across calls, and engines are documented as
        # multi-thread drivable).  All scheduler state — the dispatch
        # queue, the idle-worker list, the in-flight routing table and
        # every stream's bookkeeping — is guarded by this lock; results
        # are routed to their submitting stream by task id, so
        # concurrent streams never swap results.
        self._lock = threading.RLock()
        self._inline_blocks: dict = {}
        self._blocks: dict = {}
        self._task_queues: list = []
        self._workers: list = []
        # Result transport.  Thread workers share one ``queue.Queue``
        # (threads cannot die mid-send).  Process workers each get a
        # *private* pipe: ``mp.Queue.put`` hands the payload to a
        # feeder thread that writes later while holding a lock shared
        # by every worker, so a SIGKILL landing mid-flush would orphan
        # the lock and wedge all surviving workers' results.  With one
        # pipe per worker (written synchronously, no feeder, no shared
        # lock) a crash can corrupt at most its own channel, which the
        # supervisor discards wholesale at respawn.
        self._result_queue = None
        self._result_readers: list = []
        self._result_writers: list = []
        # Scheduler state: which workers are free, which submitted
        # tasks await a worker, and which task id runs where.
        self._idle: deque = deque()
        self._dispatch: deque = deque()   # (stream, seq) awaiting dispatch
        self._inflight: dict = {}         # task id -> _InflightTask
        self._next_task_id = 0
        if self.mode == "thread":
            self._result_queue = queue_module.Queue()
        if self.mode != "inline":
            for worker_id in range(self.n_workers):
                task_queue, worker, reader, writer = \
                    self._spawn_worker(worker_id)
                self._task_queues.append(task_queue)
                self._workers.append(worker)
                self._result_readers.append(reader)
                self._result_writers.append(writer)
            self._idle.extend(range(self.n_workers))

    def _spawn_worker(self, worker_id: int) -> tuple:
        """A started worker, its fresh task queue and result channel.

        Returns ``(task_queue, worker, reader, writer)``; the pipe ends
        are ``None`` for thread workers (they share the pool queue).
        The parent keeps the writer end open so the reader never turns
        EOF-readable: dead workers are found by the liveness sweep, not
        by racing pipe state.
        """
        if self.mode == "thread":
            task_queue = queue_module.Queue()
            worker = threading.Thread(
                target=_worker_main,
                args=(worker_id, task_queue, self._result_queue),
                name=f"repro-pool-worker-{worker_id}", daemon=True)
            reader = writer = None
        else:
            context = get_context(self.mode)
            task_queue = context.Queue()
            reader, writer = context.Pipe(duplex=False)
            worker = context.Process(
                target=_worker_main,
                args=(worker_id, task_queue, writer),
                daemon=True)
        worker.start()
        return task_queue, worker, reader, writer

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Stop the workers and release every shared block (idempotent).

        Every cleanup step is individually guarded: a worker that died
        mid-round (or a failing queue) must not keep the remaining
        blocks from being released and **unlinked** — leaked segments
        are exactly what the resource tracker would warn about at
        interpreter shutdown.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for task_queue in self._task_queues:
                try:
                    task_queue.put(("stop",))
                except Exception:
                    pass
            for worker in self._workers:
                try:
                    worker.join(timeout=5)
                    if worker.is_alive() and hasattr(worker, "terminate"):
                        worker.terminate()
                        worker.join(timeout=5)
                except Exception:
                    pass
            for shm, block in self._blocks.values():
                try:
                    block.release()
                except Exception:
                    pass
                if shm is not None:
                    try:
                        shm.close()
                    except Exception:
                        pass
                    try:
                        shm.unlink()
                    except Exception:
                        pass
            self._blocks.clear()
            self._inline_blocks.clear()
            self._specs.clear()
            self._dispatch.clear()
            self._inflight.clear()
            self._idle.clear()
            for task_queue in self._task_queues:
                try:
                    if hasattr(task_queue, "close"):
                        task_queue.close()
                        task_queue.cancel_join_thread()
                except Exception:
                    pass
            if self._result_queue is not None:
                try:
                    if hasattr(self._result_queue, "close"):
                        self._result_queue.close()
                        self._result_queue.cancel_join_thread()
                except Exception:
                    pass
            for conn in (*self._result_readers, *self._result_writers):
                if conn is None:
                    continue
                try:
                    conn.close()
                except Exception:
                    pass
            self._result_readers.clear()
            self._result_writers.clear()

    def _abort(self, reason: str):
        """Tear the pool down after a worker failure and raise."""
        self.close()
        raise RuntimeError(f"worker task failed:\n{reason}")

    # -- registration --------------------------------------------------

    def register(self, spec) -> int:
        """Register a work descriptor on every worker; returns a handle."""
        with self._lock:
            if self._closed:
                raise RuntimeError("the pool is closed")
            handle = self._next_handle
            self._next_handle += 1
            shape = _block_shape(spec)
            if self.mode == "inline":
                self._specs[handle] = spec
                if shape is not None:
                    self._inline_blocks[handle] = CounterBlock.local(*shape)
                return handle
            try:
                for worker_id, task_queue in enumerate(self._task_queues):
                    block_ref = None
                    if shape is not None:
                        if self.mode == "thread":
                            block = CounterBlock.local(*shape)
                            self._blocks[(handle, worker_id)] = (None, block)
                            block_ref = block
                        else:
                            shm = shared_memory.SharedMemory(
                                create=True,
                                size=CounterBlock.nbytes(*shape))
                            self._blocks[(handle, worker_id)] = (
                                shm, CounterBlock(shape[0], shape[1],
                                                  shm.buf))
                            block_ref = shm.name
                    task_queue.put(("register", handle, spec, block_ref))
            except Exception:
                # Partial registration must not leak segments: release
                # whatever this handle already allocated.
                self._release_handle_blocks(handle)
                raise
            self._specs[handle] = spec
            return handle

    def _release_handle_blocks(self, handle: int) -> None:
        """Release and unlink every block created for ``handle``."""
        for worker_id in range(self.n_workers):
            self._release_worker_block(handle, worker_id)

    def _release_worker_block(self, handle: int, worker_id: int) -> None:
        """Release and unlink one (handle, worker) block, if any."""
        attached = self._blocks.pop((handle, worker_id), None)
        if attached is None:
            return
        shm, block = attached
        if shm is None:
            return
        try:
            block.release()
        except Exception:
            pass
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass

    def unregister(self, handle: int) -> None:
        """Drop a registered work and free its shared blocks.

        Thread-mode blocks are shared objects the worker may still be
        writing (a discarded in-flight task): the parent only drops its
        references and lets the worker release on its own unregister
        message; process-mode segments are unlinked immediately (the
        worker's mapping stays valid until it closes it).
        """
        with self._lock:
            if self._closed or handle not in self._specs:
                return
            self._specs.pop(handle, None)
            self._inline_blocks.pop(handle, None)
            for task_queue in self._task_queues:
                task_queue.put(("unregister", handle))
            self._release_handle_blocks(handle)
            for worker_id in range(self.n_workers):
                self._blocks.pop((handle, worker_id), None)

    # -- execution -----------------------------------------------------

    def stream(self, handle: int) -> _TaskStream:
        """Open a pipelined submission stream for a registered work."""
        with self._lock:
            if self._closed:
                raise RuntimeError("the pool is closed")
            if handle not in self._specs:
                raise KeyError(f"unknown work handle {handle}")
            return _TaskStream(self, handle)

    def run_tasks(self, handle: int, tasks: Sequence) -> list:
        """Run every task of a registered work; results in task order.

        A thin wrapper over :meth:`stream`: every task is submitted up
        front and results are collected in submission order, so workers
        never idle at intermediate barriers.  Each worker holds at most
        one outstanding task, and the parent drains a worker's counter
        block before handing it the next task, so blocks are never
        overwritten while unread.
        """
        stream = self.stream(handle)
        try:
            seqs = [stream.submit(payload) for payload in tasks]
            return [stream.collect(seq) for seq in seqs]
        finally:
            stream.close()

    def _pump(self) -> None:
        """Hand queued tasks to idle workers (call under the lock)."""
        while self._idle and self._dispatch:
            stream, seq = self._dispatch[0]
            if stream._closed or seq not in stream._pending:
                self._dispatch.popleft()  # cancelled before dispatch
                stream._retries.pop(seq, None)
                continue
            self._dispatch.popleft()
            worker_id = self._idle.popleft()
            payload = stream._pending.pop(seq)
            stream._live.add(seq)
            task_id = self._next_task_id
            self._next_task_id += 1
            self._inflight[task_id] = _InflightTask(
                stream, seq, payload, worker_id,
                stream._retries.pop(seq, 0))
            self._task_queues[worker_id].put(
                ("run", stream.handle, task_id, payload))
            if fault_hook is not None:
                # Injection point for deterministic worker kills.  The
                # SIGKILL may land while the victim is still flushing
                # its *previous* result — survivable only because each
                # process worker writes to a private pipe: a wedged or
                # half-written channel is discarded wholesale at
                # respawn and the lost task re-executed byte-identical.
                fault_hook("pool.dispatch", pool=self,
                           worker_id=worker_id, task_id=task_id)

    def _route_one(self) -> None:
        """Receive one worker result and route it to its stream.

        The worker's counter block is read (finalized) *before* the
        worker is marked idle, so a block is never overwritten while
        unread; results for discarded or closed streams are dropped
        without touching the block (it may already be unregistered).
        """
        worker_id, task_id, status, meta = self._receive()
        record = self._inflight.pop(task_id, None)
        if record is None:
            # A straggler from a worker that was already declared dead
            # and replaced: its task was re-submitted under a fresh id
            # (or aborted).  Drop it without marking anything idle —
            # the sender is not a live worker slot.
            return
        if status != "ok":
            self._abort(meta)
        stream, seq = record.stream, record.seq
        stream._live.discard(seq)
        spec = self._specs.get(stream.handle)
        dropped = (stream._closed or seq in stream._discarded
                   or spec is None)
        stream._discarded.discard(seq)
        if not dropped:
            attached = self._blocks.get((stream.handle, worker_id))
            block = attached[1] if attached is not None else None
            stream._results[seq] = self._finalize(spec, block, meta)
        self._idle.append(worker_id)
        if not self._inflight and not self._dispatch:
            # Quiescent: the burst survived, so the restart budget
            # replenishes for the next one.
            self._restarts_used = 0
        self._pump()

    def _receive(self):
        """Next result, supervising for dead or overrunning workers."""
        while True:
            message = self._poll_result(timeout=1.0)
            if message is not None:
                return message
            self._check_deadlines()
            dead = [worker_id
                    for worker_id, worker in enumerate(self._workers)
                    if not worker.is_alive()]
            if dead:
                self._recover_workers(dead)

    def _poll_result(self, timeout: float):
        """One worker result, or ``None`` after ``timeout`` seconds.

        Process modes multiplex the per-worker result pipes with
        :func:`multiprocessing.connection.wait`.  A dead worker's
        reader is never ``recv``'d — a SIGKILL can leave a partial
        message that would block the parent forever; the channel is
        replaced at respawn and the lost task re-executed, which by
        the determinism contract reproduces the same bytes.
        """
        if self.mode == "thread":
            try:
                return self._result_queue.get(timeout=timeout)
            except queue_module.Empty:
                return None
        try:
            ready = _connection_wait(self._result_readers,
                                     timeout=timeout)
        except OSError:
            return None
        for reader in ready:
            worker_id = self._result_readers.index(reader)
            if not self._workers[worker_id].is_alive():
                continue  # dead writer: leave its channel untouched
            try:
                return reader.recv()
            except (EOFError, OSError):
                continue  # died between the liveness check and recv
        return None

    def _check_deadlines(self) -> None:
        """Terminate process workers whose task overran the deadline.

        The terminated worker is *not* handled here: it shows up dead
        on the very next liveness sweep and goes through the one
        recovery path (:meth:`_recover_workers`), budgets and all.
        """
        if self.task_timeout_seconds is None:
            return
        now = time.monotonic()
        for record in list(self._inflight.values()):
            if now - record.started_at <= self.task_timeout_seconds:
                continue
            worker = self._workers[record.worker_id]
            if hasattr(worker, "terminate") and worker.is_alive():
                worker.terminate()
                worker.join(timeout=5)

    def _recover_workers(self, dead_ids: list) -> None:
        """Respawn dead workers and re-submit their in-flight tasks.

        Runs under the pool lock (callers hold it through ``collect``).
        Budgets first: exhausting ``max_worker_restarts`` or a task's
        ``task_retry_limit`` falls back to :meth:`_abort` — full
        teardown with every segment unlinked, then ``RuntimeError``.
        Re-submitted tasks keep their payload (and with it their
        structural seed), so the retried result is byte-identical to
        what the dead worker would have produced.
        """
        for worker_id in dead_ids:
            worker = self._workers[worker_id]
            ident = getattr(worker, "pid", None) or worker.name
            code = getattr(worker, "exitcode", None)
            reason = (f"worker {ident} exited with code {code} "
                      f"while tasks were pending")
            if self._restarts_used >= self.max_worker_restarts:
                self._abort(reason)
            lost_ids = [task_id
                        for task_id, record in self._inflight.items()
                        if record.worker_id == worker_id]
            resubmit = []
            for task_id in sorted(lost_ids):
                record = self._inflight.pop(task_id)
                stream, seq = record.stream, record.seq
                stream._live.discard(seq)
                if stream._closed or seq in stream._discarded:
                    stream._discarded.discard(seq)
                    continue  # nobody wants the result; don't re-run
                if record.retries + 1 > self.task_retry_limit:
                    self._abort(
                        f"task retry limit ({self.task_retry_limit}) "
                        f"exhausted after {reason}")
                resubmit.append((stream, seq, record.payload,
                                 record.retries + 1))
            self._restarts_used += 1
            self.worker_restarts += 1
            try:
                self._idle.remove(worker_id)  # died while idle
            except ValueError:
                pass
            self._respawn(worker_id)
            # Front of the dispatch queue: recovered tasks are the
            # oldest outstanding work, and collect() blocks on them.
            for stream, seq, payload, retries in reversed(resubmit):
                stream._pending[seq] = payload
                stream._retries[seq] = retries
                self._dispatch.appendleft((stream, seq))
                self.tasks_recovered += 1
        self._pump()

    def _respawn(self, worker_id: int) -> None:
        """Replace a dead worker in the same slot and mode.

        The replacement gets a fresh task queue (the dead worker's may
        still hold its lost ``run`` message), a fresh result pipe (the
        old one may hold a half-written message from the crash), fresh
        counter blocks (the old shared segments are unlinked first — a
        crash never leaks shm), and a replay of every live ``register``
        message.
        """
        old_worker = self._workers[worker_id]
        old_queue = self._task_queues[worker_id]
        try:
            old_worker.join(timeout=5)
        except Exception:
            pass
        task_queue, worker, reader, writer = self._spawn_worker(worker_id)
        self._task_queues[worker_id] = task_queue
        self._workers[worker_id] = worker
        if reader is not None:
            for conn in (self._result_readers[worker_id],
                         self._result_writers[worker_id]):
                try:
                    conn.close()
                except Exception:
                    pass
            self._result_readers[worker_id] = reader
            self._result_writers[worker_id] = writer
        for handle, spec in self._specs.items():
            block_ref = None
            shape = _block_shape(spec)
            if shape is not None:
                self._release_worker_block(handle, worker_id)
                if self.mode == "thread":
                    block = CounterBlock.local(*shape)
                    self._blocks[(handle, worker_id)] = (None, block)
                    block_ref = block
                else:
                    shm = shared_memory.SharedMemory(
                        create=True, size=CounterBlock.nbytes(*shape))
                    self._blocks[(handle, worker_id)] = (
                        shm, CounterBlock(shape[0], shape[1], shm.buf))
                    block_ref = shm.name
            task_queue.put(("register", handle, spec, block_ref))
        self._idle.append(worker_id)
        try:
            if hasattr(old_queue, "close"):
                old_queue.close()
                old_queue.cancel_join_thread()
        except Exception:
            pass

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one process worker (fault injection and tests only).

        Raises ``ValueError`` on thread/inline pools — there is no
        killable worker process — so callers (the fault harness) can
        treat those modes as injection no-ops.
        """
        worker = self._workers[worker_id] if self._workers else None
        pid = getattr(worker, "pid", None)
        if pid is None:
            raise ValueError(
                f"pool mode {self.mode!r} has no killable worker "
                f"processes")
        os.kill(pid, signal.SIGKILL)

    @staticmethod
    def _finalize(spec, block: Optional[CounterBlock], meta):
        """Turn a worker's reply into the caller-facing result."""
        if isinstance(spec, ForestWork):
            return block.read(meta)
        return meta

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"WorkerPool(n_workers={self.n_workers}, "
                f"mode={self.mode!r}, works={len(self._specs)}, {state})")


# ----------------------------------------------------------------------
# Pooled forest accumulation (drop-in for the samplers)
# ----------------------------------------------------------------------

class PooledForestRunner:
    """Splitting-forest simulation sharded over a :class:`WorkerPool`.

    Implements the same ``accumulate(aggregate, batch_roots, ...)``
    contract as :class:`~repro.core.forest.ForestRunner` and
    :class:`~repro.core.forest.VectorizedForestRunner`, so the MLSS
    samplers' stopping rules, bootstrap schedules and curve folds run
    unmodified on top of it.  Each round expands to at least
    ``tasks_per_round`` tasks of ``roots_per_task`` root trees; task
    seeds derive from the task index (:func:`derive_task_seed`) and
    results merge in task order, making pooled aggregates invariant
    under the worker count.

    With ``streamed`` (the default), rounds run through a
    :class:`RoundPipeline`: the next round's predicted tasks are
    submitted while the current round's stragglers drain, and
    mispredicted or post-stop results are discarded unread — so the
    streamed and barrier paths return byte-identical aggregates.
    Prediction needs the round schedule to be computable ahead of the
    current round's results, which holds for quality-target and
    ``max_roots`` stopping but not under a ``max_steps`` budget.

    ``max_steps`` is *strict*: the final round is trimmed against the
    remaining budget (from the measured cost per root) and every task
    carries its share of the budget as a hard cap its worker enforces
    per root tree, so pooled step counts never exceed the budget.

    Call :meth:`close` when done (the samplers do) to release the
    work's shared counter blocks; the pool itself stays alive for the
    next run.
    """

    def __init__(self, pool: WorkerPool, query, partition, ratios,
                 backend: str, seed: Optional[int],
                 roots_per_task: int = DEFAULT_ROOTS_PER_TASK,
                 tasks_per_round: int = DEFAULT_TASKS_PER_ROUND,
                 streamed: bool = True):
        if roots_per_task < 1:
            raise ValueError(
                f"roots_per_task must be >= 1, got {roots_per_task}")
        if tasks_per_round < 1:
            raise ValueError(
                f"tasks_per_round must be >= 1, got {tasks_per_round}")
        validate_plan(query, partition)
        self.pool = pool
        self.query = query
        self.partition = partition
        self.ratios = normalize_ratios(ratios, partition.num_levels)
        self.seed = seed
        self.roots_per_task = roots_per_task
        self.tasks_per_round = tasks_per_round
        self.streamed = streamed
        self._task_index = 0
        self._rounds: Optional[RoundPipeline] = None
        self._handle = pool.register(ForestWork(
            query=query, partition=partition, ratios=self.ratios,
            backend=backend, capacity=roots_per_task))

    def _base_cohort(self, batch_roots: int) -> int:
        return max(batch_roots, self.roots_per_task * self.tasks_per_round)

    def accumulate(self, aggregate, batch_roots: int,
                   max_steps=None, max_roots=None) -> bool:
        """Fold one pooled round of root trees into ``aggregate``."""
        cohort = self._base_cohort(batch_roots)
        if max_roots is not None:
            cohort = min(cohort, max_roots - aggregate.n_roots)
        step_budget = None
        if max_steps is not None:
            if aggregate.steps >= max_steps:
                return True
            step_budget = max_steps - aggregate.steps
            # Trim the round toward the remaining budget using the
            # measured cost per root (a fresh run assumes a root tree
            # costs about two horizons); the per-task caps below make
            # the budget strict regardless of the estimate.
            if aggregate.n_roots:
                cost = aggregate.steps / aggregate.n_roots
            else:
                cost = 2.0 * self.query.horizon
            cohort = min(cohort, max(int(step_budget / cost), 1))
        if cohort <= 0:
            return True
        tasks, self._task_index = cut_tasks(
            cohort, self.roots_per_task, self.seed, self._task_index,
            step_budget)
        predicted = None
        if self.streamed and step_budget is None:
            ahead = self._base_cohort(batch_roots)
            if max_roots is not None:
                ahead = min(ahead,
                            max_roots - (aggregate.n_roots + cohort))
            if ahead > 0:
                predicted, _ = cut_tasks(ahead, self.roots_per_task,
                                         self.seed, self._task_index)
        roots_before = aggregate.n_roots
        if self.streamed:
            if self._rounds is None:
                self._rounds = RoundPipeline(self.pool, self._handle)
            results = self._rounds.run_round(tasks, predicted)
        else:
            results = self.pool.run_tasks(self._handle, tasks)
        for arrays in results:
            aggregate.extend_arrays(*arrays)
        if step_budget is not None and aggregate.n_roots == roots_before:
            # The remaining budget cannot afford a single worst-case
            # root tree anywhere: the budget is exhausted.
            return True
        return ((max_roots is not None and aggregate.n_roots >= max_roots)
                or (max_steps is not None
                    and aggregate.steps >= max_steps))

    def close(self) -> None:
        """Release this work's registration and shared blocks."""
        if self._rounds is not None:
            self._rounds.close()
            self._rounds = None
        self.pool.unregister(self._handle)
