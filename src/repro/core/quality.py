"""Stopping rules: confidence-interval and relative-error targets.

Section 2.1: "the user can specify a cost budget, and our algorithm will
produce a final estimate with quality guarantee when the budget runs
out.  Alternatively, the user can specify a target level of quality
guarantee, and our algorithm will run until the target guarantee is
reached."  Section 6 uses two concrete targets:

* **Confidence interval** — by default a 1 % CI at 95 % confidence for
  small-to-moderate probabilities; the CI is read relative to the
  estimate (Figure 8 renders CIs "as percentage to the true
  probability").
* **Relative error** — ``sqrt(Var)/mu <= 10 %`` for tiny probabilities
  where the normal approximation behind CIs breaks down.

Both rules refuse to stop before a minimum number of hits and roots has
been observed, since variance estimates computed from a handful of hits
are wildly optimistic (a standard guard in rare-event simulation).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from .stats import critical_value


class QualityTarget(abc.ABC):
    """A stopping rule evaluated on the running estimate."""

    @abc.abstractmethod
    def is_met(self, probability: float, variance: float, hits: int,
               n_roots: int) -> bool:
        """Return True when the running estimate satisfies the target."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable target description for reports."""

    def projected_roots(self, probability: float, hits: int,
                        n_roots: int, variance=None):
        """Roughly how many *total* roots this target needs, or ``None``.

        A plug-in projection from the running estimate, used by
        adaptive cohort sizing (:func:`repro.core.fleet.screen_fleet`)
        to grow a member's next round toward its target instead of
        crawling there in fixed batches.  Purely advisory: the stopping
        decision is always :meth:`is_met` on the actual counters, so a
        bad projection costs rounds, never correctness.  The default —
        ``None`` — means "no projection" (callers fall back to
        geometric growth).

        ``variance`` is the *measured* variance of the running
        estimator at ``n_roots`` roots, when the caller has one (the
        fused MLSS fleet pass measures a bootstrap variance per
        member).  Splitting estimators beat the binomial plug-in by
        orders of magnitude, so with a usable ``variance`` the
        projection scales the measured value by ``1/n`` instead of
        assuming binomial sampling.
        """
        return None


@dataclass(frozen=True)
class ConfidenceIntervalTarget(QualityTarget):
    """Stop when the CI half-width is small enough.

    ``half_width`` is relative to the running estimate when
    ``relative=True`` (the paper's "1 % CI"), absolute otherwise.
    """

    half_width: float = 0.01
    confidence: float = 0.95
    relative: bool = True
    min_hits: int = 10
    min_roots: int = 100

    def __post_init__(self):
        if self.half_width <= 0:
            raise ValueError(f"half_width must be > 0, got {self.half_width}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )

    def is_met(self, probability: float, variance: float, hits: int,
               n_roots: int) -> bool:
        if hits < self.min_hits or n_roots < self.min_roots:
            return False
        if probability <= 0.0:
            return False
        half = critical_value(self.confidence) * math.sqrt(max(variance, 0.0))
        allowed = self.half_width * (probability if self.relative else 1.0)
        return half <= allowed

    def describe(self) -> str:
        kind = "relative" if self.relative else "absolute"
        return (f"{self.half_width:.2%} {kind} CI half-width at "
                f"{self.confidence:.0%} confidence")

    def projected_roots(self, probability: float, hits: int,
                        n_roots: int, variance=None):
        """Binomial plug-in ``n >= z^2 p (1-p) / allowed^2``, or — with
        a measured ``variance`` — the ``1/n`` scaling
        ``n >= n_roots z^2 var / allowed^2``."""
        if probability <= 0.0 or probability >= 1.0:
            return None
        allowed = self.half_width * (probability if self.relative else 1.0)
        z = critical_value(self.confidence)
        if variance is not None and variance > 0.0 \
                and math.isfinite(variance) and n_roots > 0:
            needed = n_roots * z * z * variance / (allowed * allowed)
        else:
            needed = (z * z * probability * (1.0 - probability)
                      / (allowed * allowed))
        needed = max(needed, self.min_roots,
                     self.min_hits / probability)
        return int(math.ceil(needed))


@dataclass(frozen=True)
class RelativeErrorTarget(QualityTarget):
    """Stop when ``sqrt(Var)/tau_hat`` drops below ``target``."""

    target: float = 0.10
    min_hits: int = 10
    min_roots: int = 100

    def __post_init__(self):
        if self.target <= 0:
            raise ValueError(f"target must be > 0, got {self.target}")

    def is_met(self, probability: float, variance: float, hits: int,
               n_roots: int) -> bool:
        if hits < self.min_hits or n_roots < self.min_roots:
            return False
        if probability <= 0.0:
            return False
        return math.sqrt(max(variance, 0.0)) / probability <= self.target

    def describe(self) -> str:
        return f"relative error <= {self.target:.0%}"

    def projected_roots(self, probability: float, hits: int,
                        n_roots: int, variance=None):
        """Binomial plug-in ``n >= (1-p) / (p target^2)``, or — with a
        measured ``variance`` — ``n >= n_roots var / (p^2 target^2)``."""
        if probability <= 0.0 or probability >= 1.0:
            return None
        if variance is not None and variance > 0.0 \
                and math.isfinite(variance) and n_roots > 0:
            needed = (n_roots * variance
                      / (probability * probability
                         * self.target * self.target))
        else:
            needed = (1.0 - probability) / (probability
                                            * self.target * self.target)
        needed = max(needed, self.min_roots,
                     self.min_hits / probability)
        return int(math.ceil(needed))


@dataclass(frozen=True)
class NeverTarget(QualityTarget):
    """A target that is never met — run until the budget is exhausted.

    Used for fixed-budget experiments such as the paper's Table 6
    (50,000 simulation invocations per run).
    """

    def is_met(self, probability: float, variance: float, hits: int,
               n_roots: int) -> bool:
        return False

    def describe(self) -> str:
        return "fixed budget (no quality target)"
