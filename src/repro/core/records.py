"""Per-root-path bookkeeping for splitting samplers.

MLSS grows a tree of sample paths from every root path (Figure 1 in the
paper).  Everything both estimators need is a small set of counters per
root tree:

* ``hits`` — number of target hits in the tree (the paper's
  ``N_m^<k>`` for root ``k``);
* ``landings[i]`` — number of splitting states in level ``L_i``
  contributed by this tree (elements of ``H_i``);
* ``skips[i]`` — number of paths in this tree that crossed
  ``beta_{i+1}`` without landing in ``L_i`` (the paper's
  ``n_skip_i``);
* ``crossings[i]`` — total number of *direct* offspring of level-``i``
  splits that crossed ``beta_{i+1}``; with the per-level ratio ``r_i``
  this yields ``sum_{h in H_i} mu(h) = crossings[i] / r_i``.
* ``max_level`` — the highest level index any path of this tree ever
  reached (``m`` = the target).  This per-level maximum is what lets a
  single forest run answer a whole *grid* of thresholds at once: the
  fraction of trees with ``max_level >= i`` is a direct diagnostic of
  boundary-``i`` reachability, and the durability-curve machinery reads
  its per-threshold answers off the same records.

Keeping the counters per root (rather than only in aggregate) is what
makes the s-MLSS variance estimator (Eq. 6) and the g-MLSS bootstrap
(Section 4.2) possible without re-simulating anything.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np


class RootRecord:
    """Counters for one root path's splitting tree.

    Arrays are indexed by level ``0 .. m-1``; index 0 is unused (roots
    start in ``L_0``; there are no landings into or skips over it).
    """

    __slots__ = ("hits", "steps", "landings", "skips", "crossings",
                 "max_level")

    def __init__(self, num_levels: int):
        self.hits = 0
        self.steps = 0
        self.landings = [0] * num_levels
        self.skips = [0] * num_levels
        self.crossings = [0] * num_levels
        self.max_level = 0

    def __repr__(self) -> str:
        return (f"RootRecord(hits={self.hits}, steps={self.steps}, "
                f"landings={self.landings}, skips={self.skips}, "
                f"crossings={self.crossings}, max_level={self.max_level})")


class ForestAggregate:
    """Accumulated counters over many root trees.

    Maintains both run totals (for point estimates) and per-root columns
    (for variance estimation and bootstrapping).  Aggregates from
    independent workers can be merged, which is how the parallel sampler
    combines results (Section 3.1, "Parallel Computations").
    """

    __slots__ = ("num_levels", "n_roots", "hits", "hits_sq_sum", "steps",
                 "landings", "skips", "crossings",
                 "root_hits", "root_landings", "root_skips",
                 "root_crossings", "root_max_levels")

    def __init__(self, num_levels: int):
        if num_levels < 1:
            raise ValueError(f"num_levels must be >= 1, got {num_levels}")
        self.num_levels = num_levels
        self.n_roots = 0
        self.hits = 0
        self.hits_sq_sum = 0  # running sum of squared per-root hits
        self.steps = 0
        self.landings = [0] * num_levels
        self.skips = [0] * num_levels
        self.crossings = [0] * num_levels
        # Per-root storage (python lists; converted lazily to numpy).
        self.root_hits: List[int] = []
        self.root_landings: List[list] = []
        self.root_skips: List[list] = []
        self.root_crossings: List[list] = []
        self.root_max_levels: List[int] = []

    def add(self, record: RootRecord) -> None:
        """Fold one finished root tree into the aggregate."""
        self.n_roots += 1
        self.hits += record.hits
        self.hits_sq_sum += record.hits * record.hits
        self.steps += record.steps
        for i in range(1, self.num_levels):
            self.landings[i] += record.landings[i]
            self.skips[i] += record.skips[i]
            self.crossings[i] += record.crossings[i]
        self.root_hits.append(record.hits)
        self.root_landings.append(record.landings)
        self.root_skips.append(record.skips)
        self.root_crossings.append(record.crossings)
        self.root_max_levels.append(record.max_level)

    def extend(self, records: Iterable[RootRecord]) -> None:
        for record in records:
            self.add(record)

    def extend_arrays(self, landings, skips, crossings, hits,
                      max_levels, steps) -> None:
        """Fold per-root counter *arrays* in (the pooled-worker path).

        The arrays mirror one :class:`RootRecord` per row — the three
        ``(n, num_levels)`` level matrices plus the ``(n,)`` hit,
        max-level and step vectors a :class:`~repro.core.pool.
        CounterBlock` stores — and folding them is element-for-element
        identical to calling :meth:`add` on the equivalent records.
        """
        landings = np.asarray(landings, dtype=np.int64)
        skips = np.asarray(skips, dtype=np.int64)
        crossings = np.asarray(crossings, dtype=np.int64)
        hits = np.asarray(hits, dtype=np.int64)
        n = len(hits)
        if n == 0:
            return
        if landings.shape[1] != self.num_levels:
            raise ValueError(
                f"cannot fold rows with {landings.shape[1]} levels into "
                f"an aggregate with {self.num_levels}"
            )
        self.n_roots += n
        self.hits += int(hits.sum())
        self.hits_sq_sum += int((hits * hits).sum())
        self.steps += int(np.asarray(steps).sum())
        landing_totals = landings.sum(axis=0)
        skip_totals = skips.sum(axis=0)
        crossing_totals = crossings.sum(axis=0)
        for i in range(1, self.num_levels):
            self.landings[i] += int(landing_totals[i])
            self.skips[i] += int(skip_totals[i])
            self.crossings[i] += int(crossing_totals[i])
        self.root_hits.extend(hits.tolist())
        self.root_landings.extend(landings.tolist())
        self.root_skips.extend(skips.tolist())
        self.root_crossings.extend(crossings.tolist())
        self.root_max_levels.extend(
            np.asarray(max_levels, dtype=np.int64).tolist())

    def merge(self, other: "ForestAggregate") -> None:
        """Fold another aggregate (e.g. from a worker process) in."""
        if other.num_levels != self.num_levels:
            raise ValueError(
                f"cannot merge aggregates with {other.num_levels} and "
                f"{self.num_levels} levels"
            )
        self.n_roots += other.n_roots
        self.hits += other.hits
        self.hits_sq_sum += other.hits_sq_sum
        self.steps += other.steps
        for i in range(1, self.num_levels):
            self.landings[i] += other.landings[i]
            self.skips[i] += other.skips[i]
            self.crossings[i] += other.crossings[i]
        self.root_hits.extend(other.root_hits)
        self.root_landings.extend(other.root_landings)
        self.root_skips.extend(other.root_skips)
        self.root_crossings.extend(other.root_crossings)
        self.root_max_levels.extend(other.root_max_levels)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def total_skips(self) -> int:
        return sum(self.skips)

    def hit_count_variance(self) -> float:
        """Unbiased sample variance of per-root hit counts (Eq. 6).

        Computed from running sums, so checking the stopping rule after
        every batch stays O(1) regardless of how many roots have run.
        """
        n = self.n_roots
        if n < 2:
            return 0.0
        mean = self.hits / n
        return (self.hits_sq_sum - n * mean * mean) / (n - 1)

    def level_reach_counts(self) -> list:
        """``counts[i]`` = number of root trees whose paths ever reached
        level ``i`` (index ``num_levels`` = the target).

        Derived from the per-root ``max_level`` bookkeeping; the
        fraction ``counts[i] / n_roots`` estimates the probability of
        ever crossing boundary ``beta_i``, which is what the
        durability-curve readers consume.
        """
        counts = [0] * (self.num_levels + 1)
        for level in self.root_max_levels:
            counts[level] += 1
        # Suffix-sum: reaching level j implies reaching every i <= j.
        for i in range(self.num_levels - 1, -1, -1):
            counts[i] += counts[i + 1]
        return counts

    def hit_counts(self) -> np.ndarray:
        """Per-root target-hit counts ``N_m^<k>`` as a numpy vector."""
        return np.asarray(self.root_hits, dtype=np.float64)

    def per_root_matrices(self):
        """Per-root ``(landings, skips, crossings, hits)`` numpy arrays.

        Shapes: ``(n_roots, num_levels)`` for the three level matrices
        and ``(n_roots,)`` for hits.  Used by the bootstrap.
        """
        shape = (self.n_roots, self.num_levels)
        landings = np.asarray(self.root_landings, dtype=np.float64)
        skips = np.asarray(self.root_skips, dtype=np.float64)
        crossings = np.asarray(self.root_crossings, dtype=np.float64)
        if self.n_roots == 0:
            landings = landings.reshape(shape)
            skips = skips.reshape(shape)
            crossings = crossings.reshape(shape)
        return landings, skips, crossings, self.hit_counts()

    def __repr__(self) -> str:
        return (f"ForestAggregate(n_roots={self.n_roots}, hits={self.hits}, "
                f"steps={self.steps}, landings={self.landings}, "
                f"skips={self.skips})")


def fold_records_by_owner(records, owners, aggregates) -> None:
    """Fold one cohort's records into per-owner aggregates, in order.

    ``owners[j]`` names the aggregate that owns root ``j`` of the
    cohort — the bookkeeping behind fused fleet rounds with
    *non-uniform* per-member root allocation, where a cohort is laid
    out as contiguous owner runs of varying length instead of equal
    slices.  Folding is element-for-element identical to calling
    :meth:`ForestAggregate.add` on each owner's records separately, so
    per-owner estimates stay exchangeable with per-owner forests.
    """
    if len(records) != len(owners):
        raise ValueError(
            f"{len(records)} records for {len(owners)} owners")
    for record, owner in zip(records, owners):
        aggregates[owner].add(record)
