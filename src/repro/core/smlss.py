"""s-MLSS: the simple Multi-Level Splitting estimator (Section 3).

Under the *no level-skipping* assumption, the counters of the splitting
forest yield

    tau_hat = N_m / (N_0 * r^(m-1)),                        (Eq. 3)

or, with per-level ratios, ``N_m / (N_0 * prod_i r_i)``.  The variance
follows from the per-root hit counts (Eq. 5-6):

    Var_hat = sigma^2 / (N_0 * r^(2(m-1))),
    sigma^2 = sample variance of N_m^<k> over root paths k.

The estimator is read straight off the forest counters; when the
underlying process *does* skip levels, the same formulas silently
produce biased answers — this is the "blind application" the paper
demonstrates in Table 6, and :class:`SMLSSSampler` flags it via
``details["skipping_detected"]``.
"""

from __future__ import annotations

import math
import random
import time
from typing import Optional

import numpy as np

from ..processes.base import resolve_backend
from .estimates import DurabilityEstimate, TracePoint
from .forest import ForestRunner, VectorizedForestRunner
from .levels import LevelPartition, normalize_ratios
from .quality import QualityTarget
from .records import ForestAggregate
from .value_functions import DurabilityQuery


def make_forest_runner(backend: str, query: DurabilityQuery,
                       partition: LevelPartition, ratios,
                       seed: Optional[int],
                       scalar_rng: Optional[random.Random] = None):
    """Build the forest runner for a resolved backend.

    ``"vectorized"`` drives whole cohorts through
    :class:`VectorizedForestRunner` (with a NumPy generator);
    ``"scalar"`` keeps the original per-path runner, reusing
    ``scalar_rng`` when the caller already owns a stream (so scalar
    results stay bit-identical to the pre-backend code).  Both runners
    expose the same ``accumulate`` interface, so samplers are
    backend-agnostic past this point.
    """
    backend = resolve_backend(backend, query.process)
    if backend == "vectorized":
        return VectorizedForestRunner(query, partition, ratios,
                                      np.random.default_rng(seed))
    return ForestRunner(query, partition, ratios,
                        scalar_rng if scalar_rng is not None
                        else random.Random(seed))


def ratio_product(ratios: tuple) -> int:
    """``prod_i r_i`` over the splittable levels (``r^(m-1)`` if fixed)."""
    return math.prod(ratios[1:])


def smlss_point_estimate(aggregate: ForestAggregate, ratios: tuple) -> float:
    """Eq. 3: ``N_m / (N_0 * prod r_i)``."""
    if aggregate.n_roots == 0:
        return 0.0
    return aggregate.hits / (aggregate.n_roots * ratio_product(ratios))


def smlss_variance(aggregate: ForestAggregate, ratios: tuple) -> float:
    """Eq. 5-6: per-root hit-count variance scaled by the split factor."""
    n0 = aggregate.n_roots
    if n0 < 2:
        return 0.0
    sigma_sq = aggregate.hit_count_variance()
    denominator = ratio_product(ratios)
    return sigma_sq / (n0 * denominator * denominator)


class SMLSSSampler:
    """Batched s-MLSS with budget and quality-target stopping.

    Parameters
    ----------
    partition:
        The level partition plan ``B``.
    ratio:
        Fixed splitting ratio ``r`` (paper default 3) or per-level
        ratios.
    batch_roots:
        Root trees between stopping-rule checks (and the cohort size of
        the vectorized backend).
    record_trace:
        Record convergence snapshots in ``details["trace"]``.
    backend:
        ``"scalar"`` (default), ``"vectorized"``, or ``"auto"``
        (vectorized exactly when the process supports batching).
    """

    method_name = "smlss"

    def __init__(self, partition: LevelPartition, ratio=3,
                 batch_roots: int = 100, record_trace: bool = False,
                 backend: str = "scalar"):
        if batch_roots < 1:
            raise ValueError(f"batch_roots must be >= 1, got {batch_roots}")
        self.partition = partition
        self.ratios = normalize_ratios(ratio, partition.num_levels)
        self.batch_roots = batch_roots
        self.record_trace = record_trace
        self.backend = backend

    def run(self, query: DurabilityQuery,
            quality: Optional[QualityTarget] = None,
            max_steps: Optional[int] = None,
            max_roots: Optional[int] = None,
            seed: Optional[int] = None) -> DurabilityEstimate:
        if quality is None and max_steps is None and max_roots is None:
            raise ValueError(
                "provide a quality target, max_steps or max_roots; "
                "otherwise the sampler would never stop"
            )
        runner = make_forest_runner(self.backend, query, self.partition,
                                    self.ratios, seed)
        aggregate = ForestAggregate(self.partition.num_levels)
        trace = []
        started = time.perf_counter()

        done = False
        while not done:
            done = runner.accumulate(aggregate, self.batch_roots,
                                     max_steps=max_steps,
                                     max_roots=max_roots)
            if done or aggregate.n_roots == 0:
                break
            probability = smlss_point_estimate(aggregate, self.ratios)
            variance = smlss_variance(aggregate, self.ratios)
            if self.record_trace:
                trace.append(TracePoint(
                    steps=aggregate.steps,
                    elapsed_seconds=time.perf_counter() - started,
                    probability=probability, variance=variance,
                    n_roots=aggregate.n_roots, hits=aggregate.hits,
                ))
            if quality is not None and quality.is_met(
                    probability, variance, aggregate.hits, aggregate.n_roots):
                break

        probability = smlss_point_estimate(aggregate, self.ratios)
        details = {
            "partition": self.partition,
            "ratios": self.ratios[1:],
            "landings": list(aggregate.landings),
            "skips": list(aggregate.skips),
            "skipping_detected": aggregate.total_skips > 0,
        }
        if self.record_trace:
            details["trace"] = trace
        return DurabilityEstimate(
            probability=probability,
            variance=smlss_variance(aggregate, self.ratios),
            n_roots=aggregate.n_roots, hits=aggregate.hits,
            steps=aggregate.steps, method=self.method_name,
            elapsed_seconds=time.perf_counter() - started,
            details=details,
        )
