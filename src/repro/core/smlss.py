"""s-MLSS: the simple Multi-Level Splitting estimator (Section 3).

Under the *no level-skipping* assumption, the counters of the splitting
forest yield

    tau_hat = N_m / (N_0 * r^(m-1)),                        (Eq. 3)

or, with per-level ratios, ``N_m / (N_0 * prod_i r_i)``.  The variance
follows from the per-root hit counts (Eq. 5-6):

    Var_hat = sigma^2 / (N_0 * r^(2(m-1))),
    sigma^2 = sample variance of N_m^<k> over root paths k.

The estimator is read straight off the forest counters; when the
underlying process *does* skip levels, the same formulas silently
produce biased answers — this is the "blind application" the paper
demonstrates in Table 6, and :class:`SMLSSSampler` flags it via
``details["skipping_detected"]``.
"""

from __future__ import annotations

import math
import random
import time
from typing import Optional, Sequence

import numpy as np

from ..processes.base import resolve_backend
from .estimates import DurabilityCurve, DurabilityEstimate, TracePoint
from .forest import ForestRunner, VectorizedForestRunner
from .levels import LevelPartition, normalize_ratios
from .quality import QualityTarget
from .records import ForestAggregate
from .srs import prepare_curve_grid
from .value_functions import DurabilityQuery


def make_forest_runner(backend: str, query: DurabilityQuery,
                       partition: LevelPartition, ratios,
                       seed: Optional[int],
                       scalar_rng: Optional[random.Random] = None,
                       pool=None,
                       roots_per_task: Optional[int] = None,
                       tasks_per_round: Optional[int] = None,
                       streamed: bool = True):
    """Build the forest runner for a resolved backend.

    ``"vectorized"`` drives whole cohorts through
    :class:`VectorizedForestRunner` (with a NumPy generator, buffered
    frontiers, and in-place stepping for processes that support
    ``out=``); ``"scalar"`` keeps the original per-path runner, reusing
    ``scalar_rng`` when the caller already owns a stream (so scalar
    results stay bit-identical to the pre-backend code).  With a
    :class:`~repro.core.pool.WorkerPool`, cohorts shard over the pool's
    workers instead (:class:`~repro.core.pool.PooledForestRunner`, on
    the same backend per worker; ``streamed`` selects its pipelined
    round scheduling).  All runners expose the same ``accumulate``
    interface, so samplers are backend- and parallelism-agnostic past
    this point; pooled runners additionally expose ``close()``, which
    samplers call when a run finishes.
    """
    backend = resolve_backend(backend, query.process)
    if pool is not None:
        from .pool import (DEFAULT_ROOTS_PER_TASK, DEFAULT_TASKS_PER_ROUND,
                           PooledForestRunner)
        return PooledForestRunner(
            pool, query, partition, ratios, backend, seed,
            roots_per_task=roots_per_task or DEFAULT_ROOTS_PER_TASK,
            tasks_per_round=tasks_per_round or DEFAULT_TASKS_PER_ROUND,
            streamed=streamed)
    if backend == "vectorized":
        return VectorizedForestRunner(query, partition, ratios,
                                      np.random.default_rng(seed))
    return ForestRunner(query, partition, ratios,
                        scalar_rng if scalar_rng is not None
                        else random.Random(seed))


def close_runner(runner) -> None:
    """Release a runner's pooled resources, if it holds any."""
    close = getattr(runner, "close", None)
    if close is not None:
        close()


def ratio_product(ratios: tuple) -> int:
    """``prod_i r_i`` over the splittable levels (``r^(m-1)`` if fixed)."""
    return math.prod(ratios[1:])


def smlss_point_estimate(aggregate: ForestAggregate, ratios: tuple) -> float:
    """Eq. 3: ``N_m / (N_0 * prod r_i)``."""
    if aggregate.n_roots == 0:
        return 0.0
    return aggregate.hits / (aggregate.n_roots * ratio_product(ratios))


def smlss_variance(aggregate: ForestAggregate, ratios: tuple) -> float:
    """Eq. 5-6: per-root hit-count variance scaled by the split factor."""
    n0 = aggregate.n_roots
    if n0 < 2:
        return 0.0
    sigma_sq = aggregate.hit_count_variance()
    denominator = ratio_product(ratios)
    return sigma_sq / (n0 * denominator * denominator)


def smlss_prefix_estimates(aggregate: ForestAggregate,
                           ratios: tuple) -> list:
    """Boundary-crossing probabilities under the no-skipping assumption.

    The s-MLSS analogue of Eq. 3 for every prefix: without level
    skipping, the expected number of landings in ``L_i`` is
    ``N_0 * prod_{k<i} r_k * Pr[cross beta_i]``, so one forest yields
    ``Pr[cross beta_i] = landings[i] / (N_0 * prod_{k<i} r_k)`` for all
    boundaries at once.  Returns ``[Pr[cross beta_1], ...,
    Pr[cross beta_{m-1}], Pr[hit target]]`` (length ``m``); like the
    point estimate, the prefixes are biased when the process does skip
    levels.
    """
    m = aggregate.num_levels
    n0 = aggregate.n_roots
    prefixes = []
    scale = float(n0)
    for i in range(1, m):
        prefixes.append(aggregate.landings[i] / scale if n0 else 0.0)
        scale *= ratios[i]
    prefixes.append(aggregate.hits / scale if n0 else 0.0)
    return prefixes


def smlss_prefix_variances(aggregate: ForestAggregate,
                           ratios: tuple) -> list:
    """Per-boundary variances for :func:`smlss_prefix_estimates`.

    Each prefix is a mean of i.i.d. per-root counts scaled by a
    constant, so the Eq. 5-6 argument applies level by level: the
    sample variance of the per-root landing (or hit) counts, divided by
    ``n_roots`` and the squared split factor.
    """
    m = aggregate.num_levels
    n0 = aggregate.n_roots
    if n0 < 2:
        return [0.0] * m
    landings, _, _, hits = aggregate.per_root_matrices()
    variances = []
    scale = 1.0
    for i in range(1, m):
        sigma_sq = float(landings[:, i].var(ddof=1))
        variances.append(sigma_sq / (n0 * scale * scale))
        scale *= ratios[i]
    variances.append(float(hits.var(ddof=1)) / (n0 * scale * scale))
    return variances


class SMLSSSampler:
    """Batched s-MLSS with budget and quality-target stopping.

    Parameters
    ----------
    partition:
        The level partition plan ``B``.
    ratio:
        Fixed splitting ratio ``r`` (paper default 3) or per-level
        ratios.
    batch_roots:
        Root trees between stopping-rule checks (and the cohort size of
        the vectorized backend).
    record_trace:
        Record convergence snapshots in ``details["trace"]``.
    backend:
        ``"scalar"`` (default), ``"vectorized"``, or ``"auto"``
        (vectorized exactly when the process supports batching).
    pool / roots_per_task / tasks_per_round:
        With a :class:`~repro.core.pool.WorkerPool`, root trees shard
        over its workers in fixed-size tasks (results are invariant
        under the worker count; see :mod:`repro.core.pool`).
    streamed:
        With a pool, pipeline rounds (speculative next-round
        submission, byte-identical results; see
        :class:`~repro.core.pool.RoundPipeline`).  ``False`` restores
        the per-round barrier.
    """

    method_name = "smlss"

    def __init__(self, partition: LevelPartition, ratio=3,
                 batch_roots: int = 100, record_trace: bool = False,
                 backend: str = "scalar", pool=None,
                 roots_per_task: Optional[int] = None,
                 tasks_per_round: Optional[int] = None,
                 streamed: bool = True):
        if batch_roots < 1:
            raise ValueError(f"batch_roots must be >= 1, got {batch_roots}")
        self.partition = partition
        self.ratios = normalize_ratios(ratio, partition.num_levels)
        self.batch_roots = batch_roots
        self.record_trace = record_trace
        self.backend = backend
        self.pool = pool
        self.roots_per_task = roots_per_task
        self.tasks_per_round = tasks_per_round
        self.streamed = streamed

    def _make_runner(self, query: DurabilityQuery, seed: Optional[int],
                     scalar_rng: Optional[random.Random] = None):
        return make_forest_runner(
            self.backend, query, self.partition, self.ratios, seed,
            scalar_rng=scalar_rng, pool=self.pool,
            roots_per_task=self.roots_per_task,
            tasks_per_round=self.tasks_per_round,
            streamed=self.streamed)

    def run(self, query: DurabilityQuery,
            quality: Optional[QualityTarget] = None,
            max_steps: Optional[int] = None,
            max_roots: Optional[int] = None,
            seed: Optional[int] = None) -> DurabilityEstimate:
        if quality is None and max_steps is None and max_roots is None:
            raise ValueError(
                "provide a quality target, max_steps or max_roots; "
                "otherwise the sampler would never stop"
            )
        runner = self._make_runner(query, seed)
        aggregate = ForestAggregate(self.partition.num_levels)
        trace = []
        started = time.perf_counter()

        try:
            done = False
            while not done:
                done = runner.accumulate(aggregate, self.batch_roots,
                                         max_steps=max_steps,
                                         max_roots=max_roots)
                if done or aggregate.n_roots == 0:
                    break
                probability = smlss_point_estimate(aggregate, self.ratios)
                variance = smlss_variance(aggregate, self.ratios)
                if self.record_trace:
                    trace.append(TracePoint(
                        steps=aggregate.steps,
                        elapsed_seconds=time.perf_counter() - started,
                        probability=probability, variance=variance,
                        n_roots=aggregate.n_roots, hits=aggregate.hits,
                    ))
                if quality is not None and quality.is_met(
                        probability, variance, aggregate.hits,
                        aggregate.n_roots):
                    break
        finally:
            close_runner(runner)

        probability = smlss_point_estimate(aggregate, self.ratios)
        details = {
            "partition": self.partition,
            "ratios": self.ratios[1:],
            "landings": list(aggregate.landings),
            "skips": list(aggregate.skips),
            "skipping_detected": aggregate.total_skips > 0,
        }
        if self.record_trace:
            details["trace"] = trace
        return DurabilityEstimate(
            probability=probability,
            variance=smlss_variance(aggregate, self.ratios),
            n_roots=aggregate.n_roots, hits=aggregate.hits,
            steps=aggregate.steps, method=self.method_name,
            elapsed_seconds=time.perf_counter() - started,
            details=details,
        )

    def run_curve(self, query: DurabilityQuery,
                  thresholds: Optional[Sequence[float]] = None,
                  quality: Optional[QualityTarget] = None,
                  max_steps: Optional[int] = None,
                  max_roots: Optional[int] = None,
                  seed: Optional[int] = None) -> DurabilityCurve:
        """Answer the partition's whole boundary grid from one forest.

        The s-MLSS counterpart of :meth:`GMLSSSampler.run_curve`:
        boundary-crossing probabilities are read off the landing
        counters level by level (:func:`smlss_prefix_estimates`), valid
        under the same no-level-skipping assumption as the point
        estimate.  ``quality`` must hold at every level; it is
        evaluated on a geometric root-count schedule (the per-level
        variances read the whole per-root history, so checking every
        batch would cost quadratic time).  Budgets behave as in
        :meth:`run`.
        """
        levels, thresholds = prepare_curve_grid(
            self.partition.boundaries + (1.0,), thresholds, quality,
            max_steps, max_roots)
        runner = self._make_runner(query, seed)
        aggregate = ForestAggregate(self.partition.num_levels)
        next_check = max(2 * self.batch_roots, 100)
        started = time.perf_counter()

        try:
            done = False
            while not done:
                done = runner.accumulate(aggregate, self.batch_roots,
                                         max_steps=max_steps,
                                         max_roots=max_roots)
                if done or aggregate.n_roots == 0:
                    break
                if quality is not None and aggregate.n_roots >= next_check:
                    prefixes = smlss_prefix_estimates(aggregate, self.ratios)
                    variances = smlss_prefix_variances(aggregate,
                                                       self.ratios)
                    if all(quality.is_met(prefixes[i], variances[i],
                                          self._level_hits(aggregate, i),
                                          aggregate.n_roots)
                           for i in range(len(levels))):
                        break
                    next_check = max(next_check + 1,
                                     math.ceil(next_check * 1.5))
        finally:
            close_runner(runner)

        prefixes = smlss_prefix_estimates(aggregate, self.ratios)
        variances = smlss_prefix_variances(aggregate, self.ratios)
        elapsed = time.perf_counter() - started
        estimates = tuple(
            DurabilityEstimate(
                probability=prefixes[i], variance=variances[i],
                n_roots=aggregate.n_roots,
                hits=self._level_hits(aggregate, i),
                steps=aggregate.steps, method=self.method_name,
                elapsed_seconds=elapsed, details={"shared_pass": True},
            )
            for i in range(len(levels)))
        return DurabilityCurve(
            thresholds=thresholds, levels=levels, estimates=estimates,
            method=self.method_name, n_roots=aggregate.n_roots,
            steps=aggregate.steps, elapsed_seconds=elapsed,
            details={
                "partition": self.partition,
                "ratios": self.ratios[1:],
                "level_reach": aggregate.level_reach_counts(),
                "skipping_detected": aggregate.total_skips > 0,
            },
        )

    def _level_hits(self, aggregate: ForestAggregate, index: int) -> int:
        """Observations backing the ``index``-th curve level."""
        if index == aggregate.num_levels - 1:
            return aggregate.hits
        return aggregate.landings[index + 1]
