"""Simple Random Sampling — the standard Monte Carlo baseline (§2.2).

SRS simulates ``n`` independent sample paths, labels each by whether it
satisfies the query condition before the horizon, and returns the hit
fraction:

    tau_hat = sum(l(SP_i)) / n,     Var_hat = tau_hat (1 - tau_hat) / n.

A path stops as soon as it hits the target (the durability query only
asks about the *first* hitting time), so the cost of a successful path
is its hitting time, not the full horizon.

Two interchangeable backends run the simulation:

* ``"scalar"`` — the original per-path Python loop (works for any
  process);
* ``"vectorized"`` — whole cohorts of paths advance through
  :meth:`VectorizedProcess.step_batch` array operations; paths that hit
  the target drop out of the batch, so early stopping is preserved.

Both count cost identically (one ``g`` invocation per live path per
step) and sample the same distribution — batching merely reorders
independent draws — so estimates from either backend are exchangeable.
"""

from __future__ import annotations

import random
import time
from typing import Optional

import numpy as np

from ..processes.base import as_vectorized, resolve_backend
from .estimates import DurabilityEstimate, TracePoint
from .quality import QualityTarget
from .value_functions import TARGET_VALUE, DurabilityQuery, batch_values


def srs_variance(probability: float, n_paths: int) -> float:
    """The SRS variance estimator ``tau_hat (1 - tau_hat) / n``."""
    if n_paths <= 0:
        return 0.0
    return probability * (1.0 - probability) / n_paths


class SRSSampler:
    """Batched SRS with budget and quality-target stopping.

    Parameters
    ----------
    batch_roots:
        Number of paths to simulate between stopping-rule checks (and
        the cohort size of the vectorized backend).
    record_trace:
        When True, a :class:`TracePoint` is recorded at every check;
        the trace lands in ``estimate.details["trace"]`` (used for the
        convergence study, Figure 8).
    backend:
        ``"scalar"`` (default), ``"vectorized"``, or ``"auto"``
        (vectorized exactly when the process natively supports
        batching).  The engine resolves ``"auto"`` before constructing
        samplers.
    """

    method_name = "srs"

    def __init__(self, batch_roots: int = 500, record_trace: bool = False,
                 backend: str = "scalar"):
        if batch_roots < 1:
            raise ValueError(f"batch_roots must be >= 1, got {batch_roots}")
        self.batch_roots = batch_roots
        self.record_trace = record_trace
        self.backend = backend

    def run(self, query: DurabilityQuery,
            quality: Optional[QualityTarget] = None,
            max_steps: Optional[int] = None,
            max_roots: Optional[int] = None,
            seed: Optional[int] = None) -> DurabilityEstimate:
        """Estimate the query answer; stop on quality target or budget."""
        if quality is None and max_steps is None and max_roots is None:
            raise ValueError(
                "provide a quality target, max_steps or max_roots; "
                "otherwise the sampler would never stop"
            )
        if resolve_backend(self.backend, query.process) == "vectorized":
            return self._run_vectorized(query, quality=quality,
                                        max_steps=max_steps,
                                        max_roots=max_roots, seed=seed)
        rng = random.Random(seed)
        process = query.process
        step = process.step
        value_fn = query.value_function
        horizon = query.horizon

        n_paths = 0
        hits = 0
        steps = 0
        trace = []
        started = time.perf_counter()

        def make_estimate() -> DurabilityEstimate:
            probability = hits / n_paths if n_paths else 0.0
            return DurabilityEstimate(
                probability=probability,
                variance=srs_variance(probability, n_paths),
                n_roots=n_paths, hits=hits, steps=steps,
                method=self.method_name,
                elapsed_seconds=time.perf_counter() - started,
                details={"trace": trace} if self.record_trace else {},
            )

        done = False
        while not done:
            for _ in range(self.batch_roots):
                if max_roots is not None and n_paths >= max_roots:
                    done = True
                    break
                if max_steps is not None and steps >= max_steps:
                    done = True
                    break
                state = process.initial_state()
                t = 0
                while t < horizon:
                    t += 1
                    state = step(state, t, rng)
                    steps += 1
                    if value_fn(state, t) >= TARGET_VALUE:
                        hits += 1
                        break
                n_paths += 1
            if done or n_paths == 0:
                break
            probability = hits / n_paths
            variance = srs_variance(probability, n_paths)
            if self.record_trace:
                trace.append(TracePoint(
                    steps=steps,
                    elapsed_seconds=time.perf_counter() - started,
                    probability=probability, variance=variance,
                    n_roots=n_paths, hits=hits,
                ))
            if quality is not None and quality.is_met(
                    probability, variance, hits, n_paths):
                break

        return make_estimate()

    def _run_vectorized(self, query: DurabilityQuery,
                        quality: Optional[QualityTarget],
                        max_steps: Optional[int],
                        max_roots: Optional[int],
                        seed: Optional[int]) -> DurabilityEstimate:
        """Cohorts of paths advance as NumPy batches between checks.

        Budgets are enforced at cohort granularity: every started path
        runs to its hit or the horizon (truncating mid-flight would bias
        the hit fraction), so ``max_steps`` can be overshot by at most
        one cohort.  The cohort is shrunk when the remaining budget
        cannot fill it, keeping that overshoot small.
        """
        rng = np.random.default_rng(seed)
        process = as_vectorized(query.process)
        value_fn = query.value_function
        horizon = query.horizon

        n_paths = 0
        hits = 0
        steps = 0
        trace = []
        started = time.perf_counter()

        def make_estimate() -> DurabilityEstimate:
            probability = hits / n_paths if n_paths else 0.0
            return DurabilityEstimate(
                probability=probability,
                variance=srs_variance(probability, n_paths),
                n_roots=n_paths, hits=hits, steps=steps,
                method=self.method_name,
                elapsed_seconds=time.perf_counter() - started,
                details={"trace": trace} if self.record_trace else {},
            )

        while True:
            cohort = self.batch_roots
            if max_roots is not None:
                cohort = min(cohort, max_roots - n_paths)
            if max_steps is not None:
                if steps >= max_steps:
                    break
                cohort = min(cohort, (max_steps - steps) // horizon + 1)
            if cohort <= 0:
                break

            states = process.initial_states(cohort)
            t = 0
            while t < horizon and len(states):
                t += 1
                states = process.step_batch(states, t, rng)
                steps += len(states)
                values = batch_values(value_fn, states, t)
                hit = values >= TARGET_VALUE
                n_hit = int(np.count_nonzero(hit))
                if n_hit:
                    hits += n_hit
                    states = states[~hit]
            n_paths += cohort

            probability = hits / n_paths
            variance = srs_variance(probability, n_paths)
            if self.record_trace:
                trace.append(TracePoint(
                    steps=steps,
                    elapsed_seconds=time.perf_counter() - started,
                    probability=probability, variance=variance,
                    n_roots=n_paths, hits=hits,
                ))
            if quality is not None and quality.is_met(
                    probability, variance, hits, n_paths):
                break

        return make_estimate()
