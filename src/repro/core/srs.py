"""Simple Random Sampling — the standard Monte Carlo baseline (§2.2).

SRS simulates ``n`` independent sample paths, labels each by whether it
satisfies the query condition before the horizon, and returns the hit
fraction:

    tau_hat = sum(l(SP_i)) / n,     Var_hat = tau_hat (1 - tau_hat) / n.

A path stops as soon as it hits the target (the durability query only
asks about the *first* hitting time), so the cost of a successful path
is its hitting time, not the full horizon.

Two interchangeable backends run the simulation:

* ``"scalar"`` — the original per-path Python loop (works for any
  process);
* ``"vectorized"`` — whole cohorts of paths advance through
  :meth:`VectorizedProcess.step_batch` array operations; paths that hit
  the target drop out of the batch, so early stopping is preserved.

Both count cost identically (one ``g`` invocation per live path per
step) and sample the same distribution — batching merely reorders
independent draws — so estimates from either backend are exchangeable.
The vectorized loops step through :func:`repro.processes.base.
step_into`, so processes with the in-place ``step_batch(..., out=...)``
fast path overwrite their cohort buffer instead of allocating a fresh
state array every time step.

Besides the single-threshold :meth:`SRSSampler.run`, the sampler can
answer a whole *grid* of thresholds from one pass:
:meth:`SRSSampler.run_curve` records each path's running maximum score,
so the hit indicator for every grid level is read off the same paths
(see :class:`repro.core.estimates.DurabilityCurve`).
"""

from __future__ import annotations

import bisect
import random
import time
from typing import Optional, Sequence

import numpy as np

from ..processes.base import as_vectorized, resolve_backend, step_into
from .estimates import DurabilityCurve, DurabilityEstimate, TracePoint
from .pool import (CurveWork, DEFAULT_ROOTS_PER_TASK,
                   DEFAULT_TASKS_PER_ROUND, PathWork, RoundPipeline,
                   cut_tasks)
from .quality import QualityTarget
from .value_functions import TARGET_VALUE, DurabilityQuery, batch_values


def srs_variance(probability: float, n_paths: int) -> float:
    """The SRS variance estimator ``tau_hat (1 - tau_hat) / n``."""
    if n_paths <= 0:
        return 0.0
    return probability * (1.0 - probability) / n_paths


def validate_curve_levels(levels: Sequence[float]) -> tuple:
    """Validate a normalized curve grid: ascending, inside ``(0, 1]``."""
    values = tuple(float(v) for v in levels)
    if not values:
        raise ValueError("empty curve grid")
    for v in values:
        if not 0.0 < v <= TARGET_VALUE:
            raise ValueError(
                f"curve level {v} must lie in (0, {TARGET_VALUE}]"
            )
    for lo, hi in zip(values, values[1:]):
        if lo >= hi:
            raise ValueError(
                f"curve levels must be strictly ascending, got {lo} "
                f"before {hi}"
            )
    return values


def prepare_curve_grid(levels, thresholds,
                       quality: Optional[QualityTarget],
                       max_steps: Optional[int],
                       max_roots: Optional[int]) -> tuple:
    """Shared ``run_curve`` preamble for every sampler.

    Enforces the stopping-rule contract, validates the normalized grid
    and aligns the raw-threshold labels (defaulting to the levels
    themselves).  Returns ``(levels, thresholds)`` as tuples.
    """
    if quality is None and max_steps is None and max_roots is None:
        raise ValueError(
            "provide a quality target, max_steps or max_roots; "
            "otherwise the sampler would never stop"
        )
    levels = validate_curve_levels(levels)
    if thresholds is None:
        thresholds = levels
    thresholds = tuple(float(b) for b in thresholds)
    if len(thresholds) != len(levels):
        raise ValueError(
            f"{len(thresholds)} thresholds for {len(levels)} curve levels"
        )
    return levels, thresholds


def curve_quality_met(quality: QualityTarget, counts, n_paths: int) -> bool:
    """True when the stopping target holds at *every* grid level."""
    if n_paths == 0:
        return False
    for hits in counts:
        probability = hits / n_paths
        if not quality.is_met(probability, srs_variance(probability, n_paths),
                              hits, n_paths):
            return False
    return True


def build_srs_curve(thresholds, levels, counts, n_paths: int, steps: int,
                    elapsed: float) -> DurabilityCurve:
    """Fold shared-pass maxima counts into a :class:`DurabilityCurve`."""
    estimates = []
    for hits in counts:
        probability = hits / n_paths if n_paths else 0.0
        estimates.append(DurabilityEstimate(
            probability=probability,
            variance=srs_variance(probability, n_paths),
            n_roots=n_paths, hits=hits, steps=steps, method="srs",
            elapsed_seconds=elapsed, details={"shared_pass": True},
        ))
    return DurabilityCurve(
        thresholds=tuple(thresholds), levels=tuple(levels),
        estimates=tuple(estimates), method="srs", n_roots=n_paths,
        steps=steps, elapsed_seconds=elapsed,
    )


class SRSSampler:
    """Batched SRS with budget and quality-target stopping.

    Parameters
    ----------
    batch_roots:
        Number of paths to simulate between stopping-rule checks (and
        the cohort size of the vectorized backend).
    record_trace:
        When True, a :class:`TracePoint` is recorded at every check;
        the trace lands in ``estimate.details["trace"]`` (used for the
        convergence study, Figure 8).
    backend:
        ``"scalar"`` (default), ``"vectorized"``, or ``"auto"``
        (vectorized exactly when the process natively supports
        batching).  The engine resolves ``"auto"`` before constructing
        samplers.
    pool / roots_per_task / tasks_per_round:
        With a :class:`~repro.core.pool.WorkerPool`, paths shard over
        its workers in fixed-size tasks whose seeds derive from the
        task index, so pooled estimates are invariant under the worker
        count (see :mod:`repro.core.pool`).  Each stopping-rule round
        covers at least ``tasks_per_round`` tasks of
        ``roots_per_task`` paths.
    streamed:
        With a pool, pipeline rounds through a
        :class:`~repro.core.pool.RoundPipeline`: the next round's tasks
        are submitted speculatively while the current round's
        stragglers drain, and discarded unread if the stopping rule
        ends the run first — byte-identical results, better worker
        utilization.  ``False`` restores the per-round barrier.
    """

    method_name = "srs"

    def __init__(self, batch_roots: int = 500, record_trace: bool = False,
                 backend: str = "scalar", pool=None,
                 roots_per_task: Optional[int] = None,
                 tasks_per_round: Optional[int] = None,
                 streamed: bool = True):
        if batch_roots < 1:
            raise ValueError(f"batch_roots must be >= 1, got {batch_roots}")
        self.batch_roots = batch_roots
        self.record_trace = record_trace
        self.backend = backend
        self.pool = pool
        self.roots_per_task = roots_per_task or DEFAULT_ROOTS_PER_TASK
        self.tasks_per_round = tasks_per_round or DEFAULT_TASKS_PER_ROUND
        self.streamed = streamed

    def run(self, query: DurabilityQuery,
            quality: Optional[QualityTarget] = None,
            max_steps: Optional[int] = None,
            max_roots: Optional[int] = None,
            seed: Optional[int] = None) -> DurabilityEstimate:
        """Estimate the query answer; stop on quality target or budget."""
        if quality is None and max_steps is None and max_roots is None:
            raise ValueError(
                "provide a quality target, max_steps or max_roots; "
                "otherwise the sampler would never stop"
            )
        if self.pool is not None:
            return self._run_pooled(query, quality=quality,
                                    max_steps=max_steps,
                                    max_roots=max_roots, seed=seed)
        if resolve_backend(self.backend, query.process) == "vectorized":
            return self._run_vectorized(query, quality=quality,
                                        max_steps=max_steps,
                                        max_roots=max_roots, seed=seed)
        rng = random.Random(seed)
        process = query.process
        step = process.step
        value_fn = query.value_function
        horizon = query.horizon

        n_paths = 0
        hits = 0
        steps = 0
        trace = []
        started = time.perf_counter()

        def make_estimate() -> DurabilityEstimate:
            probability = hits / n_paths if n_paths else 0.0
            return DurabilityEstimate(
                probability=probability,
                variance=srs_variance(probability, n_paths),
                n_roots=n_paths, hits=hits, steps=steps,
                method=self.method_name,
                elapsed_seconds=time.perf_counter() - started,
                details={"trace": trace} if self.record_trace else {},
            )

        done = False
        while not done:
            for _ in range(self.batch_roots):
                if max_roots is not None and n_paths >= max_roots:
                    done = True
                    break
                if max_steps is not None and steps >= max_steps:
                    done = True
                    break
                state = process.initial_state()
                t = 0
                while t < horizon:
                    t += 1
                    state = step(state, t, rng)
                    steps += 1
                    if value_fn(state, t) >= TARGET_VALUE:
                        hits += 1
                        break
                n_paths += 1
            if done or n_paths == 0:
                break
            probability = hits / n_paths
            variance = srs_variance(probability, n_paths)
            if self.record_trace:
                trace.append(TracePoint(
                    steps=steps,
                    elapsed_seconds=time.perf_counter() - started,
                    probability=probability, variance=variance,
                    n_roots=n_paths, hits=hits,
                ))
            if quality is not None and quality.is_met(
                    probability, variance, hits, n_paths):
                break

        return make_estimate()

    def run_curve(self, query: DurabilityQuery, levels: Sequence[float],
                  thresholds: Optional[Sequence[float]] = None,
                  quality: Optional[QualityTarget] = None,
                  max_steps: Optional[int] = None,
                  max_roots: Optional[int] = None,
                  seed: Optional[int] = None) -> DurabilityCurve:
        """Answer a whole grid of value levels from one simulation pass.

        Instead of one run per threshold, every path records its
        *running maximum* value-function score; the estimate for level
        ``v`` is then the fraction of paths whose maximum reached ``v``
        — simultaneously, for every grid point, from the same paths.
        A path stops early only once it reaches the *top* level, so the
        pass costs about as much as a single run against the hardest
        threshold, not ``K`` runs.

        Parameters
        ----------
        query:
            The durability query; its value function defines the scale
            of ``levels`` (for a grid of raw thresholds, rebase the
            query onto the largest one — see
            :meth:`repro.core.value_functions.DurabilityQuery.with_threshold`).
        levels:
            Normalized grid, strictly ascending, each in ``(0, 1]``.
        thresholds:
            Optional raw-threshold labels for the result (defaults to
            ``levels``).
        quality:
            Stopping target, required to hold at *every* grid level
            (the rarest level is the binding one).
        max_steps / max_roots / seed:
            As in :meth:`run`; at least one stopping criterion must be
            given.
        """
        levels, thresholds = prepare_curve_grid(
            levels, thresholds, quality, max_steps, max_roots)
        if self.pool is not None:
            counts, n_paths, steps, elapsed = self._curve_pass_pooled(
                query, levels, quality, max_steps, max_roots, seed)
        elif resolve_backend(self.backend, query.process) == "vectorized":
            counts, n_paths, steps, elapsed = self._curve_pass_vectorized(
                query, levels, quality, max_steps, max_roots, seed)
        else:
            counts, n_paths, steps, elapsed = self._curve_pass_scalar(
                query, levels, quality, max_steps, max_roots, seed)
        return build_srs_curve(thresholds, levels, counts, n_paths, steps,
                               elapsed)

    def _curve_pass_scalar(self, query, levels, quality, max_steps,
                           max_roots, seed):
        """Per-path loop recording running maxima against the grid."""
        rng = random.Random(seed)
        process = query.process
        step = process.step
        value_fn = query.value_function
        horizon = query.horizon
        top = levels[-1]

        counts = [0] * len(levels)
        n_paths = 0
        steps = 0
        started = time.perf_counter()

        done = False
        while not done:
            for _ in range(self.batch_roots):
                if max_roots is not None and n_paths >= max_roots:
                    done = True
                    break
                if max_steps is not None and steps >= max_steps:
                    done = True
                    break
                state = process.initial_state()
                best = 0.0
                t = 0
                while t < horizon:
                    t += 1
                    state = step(state, t, rng)
                    steps += 1
                    value = value_fn(state, t)
                    if value > best:
                        best = value
                        if best >= top:
                            break
                # levels[j] <= best  <=>  the path hit threshold j.
                for j in range(bisect.bisect_right(levels, best)):
                    counts[j] += 1
                n_paths += 1
            if done or n_paths == 0:
                break
            if quality is not None and curve_quality_met(
                    quality, counts, n_paths):
                break
        return counts, n_paths, steps, time.perf_counter() - started

    def _curve_pass_vectorized(self, query, levels, quality, max_steps,
                               max_roots, seed):
        """Cohorts advance as NumPy batches, tracking per-path maxima."""
        rng = np.random.default_rng(seed)
        process = as_vectorized(query.process)
        value_fn = query.value_function
        horizon = query.horizon
        grid = np.asarray(levels, dtype=np.float64)
        top = levels[-1]

        counts = np.zeros(len(levels), dtype=np.int64)
        n_paths = 0
        steps = 0
        started = time.perf_counter()

        while True:
            cohort = self.batch_roots
            if max_roots is not None:
                cohort = min(cohort, max_roots - n_paths)
            if max_steps is not None:
                if steps >= max_steps:
                    break
                cohort = min(cohort, (max_steps - steps) // horizon + 1)
            if cohort <= 0:
                break

            states = process.initial_states(cohort)
            best = np.zeros(cohort, dtype=np.float64)
            topped = 0
            t = 0
            while t < horizon and len(states):
                t += 1
                states = step_into(process, states, t, rng)
                steps += len(states)
                np.maximum(best, batch_values(value_fn, states, t),
                           out=best)
                reached = best >= top
                n_reached = int(np.count_nonzero(reached))
                if n_reached:
                    topped += n_reached
                    keep = ~reached
                    states, best = states[keep], best[keep]
            # Paths that reached the top level hit every grid point;
            # survivors hit exactly the levels below their maximum.
            counts += topped
            if len(best):
                counts += (best[:, None] >= grid[None, :]).sum(axis=0)
            n_paths += cohort

            if quality is not None and curve_quality_met(
                    quality, counts, n_paths):
                break
        return [int(c) for c in counts], n_paths, steps, \
            time.perf_counter() - started

    def _round_cohort(self, n_paths: int, steps: int, horizon: int,
                      max_steps: Optional[int],
                      max_roots: Optional[int]) -> int:
        """Next pooled round's path budget under the stopping budgets.

        Shared by the point and curve pooled passes so their budget
        semantics cannot drift apart.  Non-positive means "stop".
        Unlike the single-process vectorized loop (cohort-granular by
        documented design), the pooled ``max_steps`` budget is
        *strict*: a path costs at most ``horizon`` steps, so admitting
        only ``remaining // horizon`` more paths guarantees pooled step
        counts never exceed the cap.
        """
        cohort = max(self.batch_roots,
                     self.roots_per_task * self.tasks_per_round)
        if max_roots is not None:
            cohort = min(cohort, max_roots - n_paths)
        if max_steps is not None:
            if steps >= max_steps:
                return 0
            cohort = min(cohort, (max_steps - steps) // horizon)
        return cohort

    def _run_pooled(self, query: DurabilityQuery,
                    quality: Optional[QualityTarget],
                    max_steps: Optional[int],
                    max_roots: Optional[int],
                    seed: Optional[int]) -> DurabilityEstimate:
        """Paths shard over the worker pool in fixed-size tasks.

        Rounds run quality checks between merges; with ``streamed``
        the next round's tasks are already in flight while this round's
        stragglers drain (see :class:`~repro.core.pool.RoundPipeline`).
        Task seeds come from :func:`~repro.core.pool.derive_task_seed`
        and results merge in task order, so the estimate is
        byte-identical for any ``n_workers`` and for both scheduling
        paths.
        """
        pool = self.pool
        backend = resolve_backend(self.backend, query.process)
        handle = pool.register(PathWork(query=query, backend=backend))
        rounds = RoundPipeline(pool, handle) if self.streamed else None
        horizon = query.horizon
        n_paths = 0
        hits = 0
        steps = 0
        task_index = 0
        trace = []
        started = time.perf_counter()
        try:
            while True:
                cohort = self._round_cohort(n_paths, steps, horizon,
                                            max_steps, max_roots)
                if cohort <= 0:
                    break
                tasks, task_index = cut_tasks(cohort, self.roots_per_task,
                                              seed, task_index)
                predicted = None
                if rounds is not None and max_steps is None:
                    # Under max_steps the next round depends on this
                    # round's measured spend, so there is nothing
                    # sound to speculate.
                    ahead = self._round_cohort(n_paths + cohort, steps,
                                               horizon, None, max_roots)
                    if ahead > 0:
                        predicted, _ = cut_tasks(
                            ahead, self.roots_per_task, seed, task_index)
                if rounds is not None:
                    results = rounds.run_round(tasks, predicted)
                else:
                    results = pool.run_tasks(handle, tasks)
                for task_n, task_hits, task_steps in results:
                    n_paths += task_n
                    hits += task_hits
                    steps += task_steps
                probability = hits / n_paths if n_paths else 0.0
                variance = srs_variance(probability, n_paths)
                if self.record_trace:
                    trace.append(TracePoint(
                        steps=steps,
                        elapsed_seconds=time.perf_counter() - started,
                        probability=probability, variance=variance,
                        n_roots=n_paths, hits=hits,
                    ))
                if quality is not None and quality.is_met(
                        probability, variance, hits, n_paths):
                    break
        finally:
            if rounds is not None:
                rounds.close()
            pool.unregister(handle)

        probability = hits / n_paths if n_paths else 0.0
        details = {"parallel": {"n_workers": pool.n_workers,
                                "mode": pool.mode,
                                "streamed": rounds is not None,
                                "tasks": task_index}}
        if self.record_trace:
            details["trace"] = trace
        return DurabilityEstimate(
            probability=probability,
            variance=srs_variance(probability, n_paths),
            n_roots=n_paths, hits=hits, steps=steps,
            method=self.method_name,
            elapsed_seconds=time.perf_counter() - started,
            details=details,
        )

    def _curve_pass_pooled(self, query, levels, quality, max_steps,
                           max_roots, seed):
        """Pooled running-maxima pass: per-level counts merge per task."""
        pool = self.pool
        backend = resolve_backend(self.backend, query.process)
        handle = pool.register(CurveWork(
            query=query, levels=tuple(levels), backend=backend))
        rounds = RoundPipeline(pool, handle) if self.streamed else None
        horizon = query.horizon
        counts = np.zeros(len(levels), dtype=np.int64)
        n_paths = 0
        steps = 0
        task_index = 0
        started = time.perf_counter()
        try:
            while True:
                cohort = self._round_cohort(n_paths, steps, horizon,
                                            max_steps, max_roots)
                if cohort <= 0:
                    break
                tasks, task_index = cut_tasks(cohort, self.roots_per_task,
                                              seed, task_index)
                predicted = None
                if rounds is not None and max_steps is None:
                    ahead = self._round_cohort(n_paths + cohort, steps,
                                               horizon, None, max_roots)
                    if ahead > 0:
                        predicted, _ = cut_tasks(
                            ahead, self.roots_per_task, seed, task_index)
                if rounds is not None:
                    results = rounds.run_round(tasks, predicted)
                else:
                    results = pool.run_tasks(handle, tasks)
                for task_counts, task_n, task_steps in results:
                    counts += np.asarray(task_counts, dtype=np.int64)
                    n_paths += task_n
                    steps += task_steps
                if quality is not None and curve_quality_met(
                        quality, [int(c) for c in counts], n_paths):
                    break
        finally:
            if rounds is not None:
                rounds.close()
            pool.unregister(handle)
        return [int(c) for c in counts], n_paths, steps, \
            time.perf_counter() - started

    def _run_vectorized(self, query: DurabilityQuery,
                        quality: Optional[QualityTarget],
                        max_steps: Optional[int],
                        max_roots: Optional[int],
                        seed: Optional[int]) -> DurabilityEstimate:
        """Cohorts of paths advance as NumPy batches between checks.

        Budgets are enforced at cohort granularity: every started path
        runs to its hit or the horizon (truncating mid-flight would bias
        the hit fraction), so ``max_steps`` can be overshot by at most
        one cohort.  The cohort is shrunk when the remaining budget
        cannot fill it, keeping that overshoot small.
        """
        rng = np.random.default_rng(seed)
        process = as_vectorized(query.process)
        value_fn = query.value_function
        horizon = query.horizon

        n_paths = 0
        hits = 0
        steps = 0
        trace = []
        started = time.perf_counter()

        def make_estimate() -> DurabilityEstimate:
            probability = hits / n_paths if n_paths else 0.0
            return DurabilityEstimate(
                probability=probability,
                variance=srs_variance(probability, n_paths),
                n_roots=n_paths, hits=hits, steps=steps,
                method=self.method_name,
                elapsed_seconds=time.perf_counter() - started,
                details={"trace": trace} if self.record_trace else {},
            )

        while True:
            cohort = self.batch_roots
            if max_roots is not None:
                cohort = min(cohort, max_roots - n_paths)
            if max_steps is not None:
                if steps >= max_steps:
                    break
                cohort = min(cohort, (max_steps - steps) // horizon + 1)
            if cohort <= 0:
                break

            states = process.initial_states(cohort)
            t = 0
            while t < horizon and len(states):
                t += 1
                states = step_into(process, states, t, rng)
                steps += len(states)
                values = batch_values(value_fn, states, t)
                hit = values >= TARGET_VALUE
                n_hit = int(np.count_nonzero(hit))
                if n_hit:
                    hits += n_hit
                    states = states[~hit]
            n_paths += cohort

            probability = hits / n_paths
            variance = srs_variance(probability, n_paths)
            if self.record_trace:
                trace.append(TracePoint(
                    steps=steps,
                    elapsed_seconds=time.perf_counter() - started,
                    probability=probability, variance=variance,
                    n_roots=n_paths, hits=hits,
                ))
            if quality is not None and quality.is_met(
                    probability, variance, hits, n_paths):
                break

        return make_estimate()
