"""Simple Random Sampling — the standard Monte Carlo baseline (§2.2).

SRS simulates ``n`` independent sample paths, labels each by whether it
satisfies the query condition before the horizon, and returns the hit
fraction:

    tau_hat = sum(l(SP_i)) / n,     Var_hat = tau_hat (1 - tau_hat) / n.

A path stops as soon as it hits the target (the durability query only
asks about the *first* hitting time), so the cost of a successful path
is its hitting time, not the full horizon.
"""

from __future__ import annotations

import random
import time
from typing import Optional

from .estimates import DurabilityEstimate, TracePoint
from .quality import QualityTarget
from .value_functions import TARGET_VALUE, DurabilityQuery


def srs_variance(probability: float, n_paths: int) -> float:
    """The SRS variance estimator ``tau_hat (1 - tau_hat) / n``."""
    if n_paths <= 0:
        return 0.0
    return probability * (1.0 - probability) / n_paths


class SRSSampler:
    """Batched SRS with budget and quality-target stopping.

    Parameters
    ----------
    batch_roots:
        Number of paths to simulate between stopping-rule checks.
    record_trace:
        When True, a :class:`TracePoint` is recorded at every check;
        the trace lands in ``estimate.details["trace"]`` (used for the
        convergence study, Figure 8).
    """

    method_name = "srs"

    def __init__(self, batch_roots: int = 500, record_trace: bool = False):
        if batch_roots < 1:
            raise ValueError(f"batch_roots must be >= 1, got {batch_roots}")
        self.batch_roots = batch_roots
        self.record_trace = record_trace

    def run(self, query: DurabilityQuery,
            quality: Optional[QualityTarget] = None,
            max_steps: Optional[int] = None,
            max_roots: Optional[int] = None,
            seed: Optional[int] = None) -> DurabilityEstimate:
        """Estimate the query answer; stop on quality target or budget."""
        if quality is None and max_steps is None and max_roots is None:
            raise ValueError(
                "provide a quality target, max_steps or max_roots; "
                "otherwise the sampler would never stop"
            )
        rng = random.Random(seed)
        process = query.process
        step = process.step
        value_fn = query.value_function
        horizon = query.horizon

        n_paths = 0
        hits = 0
        steps = 0
        trace = []
        started = time.perf_counter()

        def make_estimate() -> DurabilityEstimate:
            probability = hits / n_paths if n_paths else 0.0
            return DurabilityEstimate(
                probability=probability,
                variance=srs_variance(probability, n_paths),
                n_roots=n_paths, hits=hits, steps=steps,
                method=self.method_name,
                elapsed_seconds=time.perf_counter() - started,
                details={"trace": trace} if self.record_trace else {},
            )

        done = False
        while not done:
            for _ in range(self.batch_roots):
                if max_roots is not None and n_paths >= max_roots:
                    done = True
                    break
                if max_steps is not None and steps >= max_steps:
                    done = True
                    break
                state = process.initial_state()
                t = 0
                while t < horizon:
                    t += 1
                    state = step(state, t, rng)
                    steps += 1
                    if value_fn(state, t) >= TARGET_VALUE:
                        hits += 1
                        break
                n_paths += 1
            if done or n_paths == 0:
                break
            probability = hits / n_paths
            variance = srs_variance(probability, n_paths)
            if self.record_trace:
                trace.append(TracePoint(
                    steps=steps,
                    elapsed_seconds=time.perf_counter() - started,
                    probability=probability, variance=variance,
                    n_roots=n_paths, hits=hits,
                ))
            if quality is not None and quality.is_met(
                    probability, variance, hits, n_paths):
                break

        return make_estimate()
