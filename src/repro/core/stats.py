"""Small statistical utilities shared across the library.

Kept dependency-light on purpose: the normal quantile is implemented
directly (Acklam's rational approximation) so the core sampler stack
does not require scipy.
"""

from __future__ import annotations

import math
from typing import Sequence

# Coefficients of Acklam's inverse normal CDF approximation
# (relative error < 1.15e-9 over the full open interval).
_A = (-3.969683028665376e+01, 2.209460984245205e+02,
      -2.759285104469687e+02, 1.383577518672690e+02,
      -3.066479806614716e+01, 2.506628277459239e+00)
_B = (-5.447609879822406e+01, 1.615858368580409e+02,
      -1.556989798598866e+02, 6.680131188771972e+01,
      -1.328068155288572e+01)
_C = (-7.784894002430293e-03, -3.223964580411365e-01,
      -2.400758277161838e+00, -2.549732539343734e+00,
      4.374664141464968e+00, 2.938163982698783e+00)
_D = (7.784695709041462e-03, 3.224671290700398e-01,
      2.445134137142996e+00, 3.754408661907416e+00)
_P_LOW = 0.02425
_P_HIGH = 1.0 - _P_LOW


def normal_quantile(p: float) -> float:
    """Inverse standard normal CDF (percent point function)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return ((((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q
                  + _C[4]) * q + _C[5])
                / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0))
    if p > _P_HIGH:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -((((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q
                   + _C[4]) * q + _C[5])
                 / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0))
    q = p - 0.5
    r = q * q
    return ((((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r
              + _A[4]) * r + _A[5]) * q
            / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r
                + _B[4]) * r + 1.0))


def normal_cdf(x: float) -> float:
    """Standard normal CDF via the error function."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def critical_value(confidence: float) -> float:
    """Two-sided normal critical value ``z_{alpha/2}``.

    ``confidence = 0.95`` gives the familiar 1.96.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return normal_quantile(0.5 + confidence / 2.0)


def sample_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def sample_variance(values: Sequence[float]) -> float:
    """Unbiased (``n - 1``) sample variance; 0.0 for fewer than 2 values."""
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    return sum((v - mean) ** 2 for v in values) / (n - 1)
