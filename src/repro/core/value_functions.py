"""Value functions and durability queries (Sections 2.1 and 3).

A durability prediction query ``Q(q, s)`` asks for the probability that
the process reaches a state with ``q(x_t) = 1`` for some ``1 <= t <= s``.
MLSS additionally needs a heuristic *value function*
``f : X x T -> (0, 1]`` measuring how close a state is to satisfying the
query; ``f(x_t) = 1`` iff ``q(x_t) = 1``.  Unbiasedness never depends on
``f`` — only efficiency does.

The common practical case (and the one used throughout the paper's
experiments) is a threshold condition ``z(x_t) >= beta`` with the value
function ``f = min(z / beta, 1)``; :class:`ThresholdValueFunction`
implements it.  Arbitrary value functions are supported through the
plain callable protocol ``f(state, t) -> float``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..processes.base import State, StochasticProcess, batch_z_values

# A value function maps (state, t) to a score; >= 1.0 means the query
# condition is satisfied.
ValueFunction = Callable[[State, int], float]

#: Scores at or above this value count as hitting the query target.
TARGET_VALUE = 1.0


def batch_values(value_fn: ValueFunction, states: np.ndarray,
                 t: int) -> np.ndarray:
    """Evaluate a value function over a whole state array at time ``t``.

    Uses the value function's ``batch`` method when it has one (e.g.
    :meth:`ThresholdValueFunction.batch`); otherwise falls back to a
    row-wise scalar loop, which is always correct — the simulation side
    stays batched either way.
    """
    batch = getattr(value_fn, "batch", None)
    if batch is not None:
        return np.asarray(batch(states, t), dtype=np.float64)
    return np.asarray([value_fn(s, t) for s in states], dtype=np.float64)


class ThresholdValueFunction:
    """``f(x, t) = min(z(x) / beta, 1)`` for a threshold query ``z >= beta``.

    ``z`` is a real-valued evaluation of a state (e.g. the Queue 2
    backlog, the CPP surplus, a simulated stock price).  Negative or
    zero scores clamp to 0.0, which simply lands in the lowest level.

    Instances are picklable as long as ``z`` is (use module-level
    functions or small callable classes, not lambdas, if you need the
    parallel sampler).
    """

    def __init__(self, z: Callable[[State], float], beta: float):
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.z = z
        self.beta = beta

    def __call__(self, state: State, t: int) -> float:
        ratio = self.z(state) / self.beta
        if ratio >= TARGET_VALUE:
            return TARGET_VALUE
        if ratio <= 0.0:
            return 0.0
        return ratio

    def batch(self, states: np.ndarray, t: int) -> np.ndarray:
        """Vectorized evaluation: one score per state-array row.

        ``z`` is vectorized through :func:`repro.processes.base.
        batch_z_values` (explicit ``z.batch`` attribute, the
        ``register_batch_z`` registry, or a row-wise fallback); the
        clamp is element-wise identical to the scalar ``__call__``.
        """
        ratios = batch_z_values(self.z, states) / self.beta
        return np.clip(ratios, 0.0, TARGET_VALUE)

    def with_beta(self, beta: float) -> "ThresholdValueFunction":
        """The same state evaluation ``z`` against a different threshold.

        Used by the durability-curve machinery, which rebases a whole
        grid of thresholds onto the largest one so a single simulation
        pass covers them all.
        """
        return ThresholdValueFunction(self.z, beta)

    def __repr__(self) -> str:
        z_name = getattr(self.z, "__qualname__", repr(self.z))
        return f"ThresholdValueFunction(z={z_name}, beta={self.beta})"


@dataclass
class DurabilityQuery:
    """A durability prediction query ``Q(q, s)`` over a simulation model.

    Attributes
    ----------
    process:
        The step-wise simulation model ``g``.
    value_function:
        Heuristic ``f(state, t) -> float``; values ``>= 1`` satisfy the
        query condition.  For plain SRS the value function only needs to
        be correct at the target (``f >= 1`` iff ``q = 1``).
    horizon:
        The prescribed time horizon ``s`` (the query looks at
        ``t = 1 .. s``).
    name:
        Optional label used in reports.
    """

    process: StochasticProcess
    value_function: ValueFunction
    horizon: int
    name: str = field(default="")

    def __post_init__(self):
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")

    @classmethod
    def threshold(cls, process: StochasticProcess,
                  z: Callable[[State], float], beta: float, horizon: int,
                  name: str = "") -> "DurabilityQuery":
        """Build the common ``z(x_t) >= beta`` query."""
        return cls(process=process,
                   value_function=ThresholdValueFunction(z, beta),
                   horizon=horizon, name=name)

    def satisfied(self, state: State, t: int) -> bool:
        """The Boolean query function ``q`` derived from ``f``."""
        return self.value_function(state, t) >= TARGET_VALUE

    def initial_value(self) -> float:
        """Value of the initial state (used to validate level plans)."""
        return self.value_function(self.process.initial_state(), 0)

    def with_threshold(self, beta: float) -> "DurabilityQuery":
        """The same query asked against a different threshold ``beta``.

        Only defined for threshold queries (the value function must be a
        :class:`ThresholdValueFunction`); this is what lets the engine
        treat a grid of thresholds as variations of one query.
        """
        if not isinstance(self.value_function, ThresholdValueFunction):
            raise TypeError(
                "with_threshold requires a ThresholdValueFunction; "
                f"got {type(self.value_function).__name__}"
            )
        name = f"{self.name}@{beta:g}" if self.name else ""
        return DurabilityQuery(
            process=self.process,
            value_function=self.value_function.with_beta(beta),
            horizon=self.horizon, name=name)


def threshold_grid(thresholds) -> tuple:
    """Normalize a grid of raw thresholds for a one-pass curve.

    Returns ``(betas, levels)``: the thresholds sorted ascending and the
    same grid rescaled by the largest one, so ``levels[-1] == 1.0`` and
    each ``levels[j]`` is the value-function score at which the query
    ``z >= betas[j]`` is satisfied *under the rebased (largest)
    threshold*.  Thresholds must be positive and distinct.
    """
    betas = sorted(float(b) for b in thresholds)
    if not betas:
        raise ValueError("empty threshold grid")
    if betas[0] <= 0.0:
        raise ValueError(f"thresholds must be positive, got {betas[0]}")
    for lo, hi in zip(betas, betas[1:]):
        if lo == hi:
            raise ValueError(f"duplicate threshold {lo}")
    beta_max = betas[-1]
    levels = tuple(b / beta_max for b in betas)
    return tuple(betas), levels
