"""Closed-form variance results from the paper (Eq. 11-13).

Three analytical pieces support the optimizer and the ablation benches:

* the *balanced growth* variance of s-MLSS from branching-process
  theory (Eq. 12-13): with ``m`` levels and equal advancement
  probabilities ``p = tau^(1/m)``,

      Var(tau_hat) = m (1 - p) p^(2m - 1) / N_0;

* the exact variance of the two-level g-MLSS estimator with level
  skipping (Eq. 11);
* helper comparisons against the SRS variance ``tau (1 - tau) / N_0``.
"""

from __future__ import annotations

import math


def balanced_advancement_probability(tau: float, num_levels: int) -> float:
    """The balanced-growth advancement probability ``p = tau^(1/m)``."""
    if not 0.0 < tau < 1.0:
        raise ValueError(f"tau must be in (0, 1), got {tau}")
    if num_levels < 1:
        raise ValueError(f"num_levels must be >= 1, got {num_levels}")
    return tau ** (1.0 / num_levels)


def balanced_growth_variance(tau: float, num_levels: int,
                             n_roots: int) -> float:
    """Eq. 13: s-MLSS variance under balanced growth."""
    if n_roots < 1:
        raise ValueError(f"n_roots must be >= 1, got {n_roots}")
    p = balanced_advancement_probability(tau, num_levels)
    return num_levels * (1.0 - p) * p ** (2 * num_levels - 1) / n_roots


def srs_variance_formula(tau: float, n_roots: int) -> float:
    """The SRS variance ``tau (1 - tau) / n`` for comparison."""
    if n_roots < 1:
        raise ValueError(f"n_roots must be >= 1, got {n_roots}")
    return tau * (1.0 - tau) / n_roots


def variance_reduction_factor(tau: float, num_levels: int) -> float:
    """SRS-to-MLSS variance ratio at equal root counts (theory).

    Values above 1 mean MLSS needs fewer root paths for the same
    precision (ignoring the extra per-root simulation cost of
    splitting, which Eq. 15 accounts for separately).
    """
    p = balanced_advancement_probability(tau, num_levels)
    mlss = num_levels * (1.0 - p) * p ** (2 * num_levels - 1)
    srs = tau * (1.0 - tau)
    return srs / mlss


def two_level_skip_variance(p01: float, p12: float, p02: float,
                            var_offspring_hits: float, n_roots: int,
                            ratio: int) -> float:
    """Eq. 11: variance of the two-level g-MLSS estimator with skipping.

    ``p01`` — probability a root lands in ``L_1``; ``p12`` —
    probability a split offspring crosses into the target; ``p02`` —
    probability a root skips straight to the target;
    ``var_offspring_hits`` — ``Var(N_2^<1>)``, the per-split variance of
    target hits.
    """
    if n_roots < 1:
        raise ValueError(f"n_roots must be >= 1, got {n_roots}")
    if ratio < 1:
        raise ValueError(f"ratio must be >= 1, got {ratio}")
    for name, p in (("p01", p01), ("p12", p12), ("p02", p02)):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {p}")
    term_non_skip = p12 * p12 * p01 * (1.0 - p01) / n_roots
    term_offspring = p01 * var_offspring_hits / (n_roots * ratio * ratio)
    term_skip = p02 * (1.0 - p02) / n_roots
    return term_non_skip + term_offspring + term_skip


def optimal_num_levels(tau: float, max_levels: int = 64) -> int:
    """Theory-guided level count minimising variance*cost.

    Under balanced growth, the per-root simulation cost grows roughly
    with the expected number of path segments ``sum_i (r p)^i``; with
    the customary choice ``r ~ 1/p`` the product of Eq. 13 with that
    cost is minimised near ``p = e^-2`` (L'Ecuyer et al. 2006), i.e.

        m* ~ -ln(tau) / 2.

    We search the integer neighbourhood explicitly and return the best.
    """
    if not 0.0 < tau < 1.0:
        raise ValueError(f"tau must be in (0, 1), got {tau}")

    def objective(m: int) -> float:
        p = tau ** (1.0 / m)
        variance = m * (1.0 - p) * p ** (2 * m - 1)
        # Cost model: with r ~ 1/p each level keeps the expected number
        # of active segments constant, so per-root cost scales with m.
        return variance * m

    best = min(range(1, max_levels + 1), key=objective)
    return best


def suggest_ratios(pi_hats, max_ratio: int = 8) -> list:
    """Per-level splitting ratios from advancement estimates.

    The paper's future-work question — "how to optimally allocate
    splitting ratios across sample paths" — has a classical first-order
    answer from branching-process theory: keep the expected population
    constant by splitting ``r_i ~ 1/p_i`` at each level.  Given the
    measured advancement probabilities ``[pi_1, ..., pi_m]`` (e.g. from
    ``gmlss_pi_hats``), this returns ratios for the splittable levels
    ``L_1 .. L_{m-1}`` — the ratio applied when *entering* level ``i``
    is matched to the advancement *out of* it, ``pi_{i+1}``.

    Levels with no observed advancement get ``max_ratio`` (they are the
    obstacles).  Usable directly as the ``ratio`` argument of
    :class:`repro.core.gmlss.GMLSSSampler`.
    """
    if max_ratio < 1:
        raise ValueError(f"max_ratio must be >= 1, got {max_ratio}")
    pis = list(pi_hats)
    if len(pis) < 2:
        return []
    ratios = []
    for pi in pis[1:]:  # advancement out of L_1 .. L_{m-1}
        if pi <= 0.0:
            ratios.append(max_ratio)
        else:
            ratios.append(max(1, min(max_ratio, round(1.0 / pi))))
    return ratios


def balanced_boundaries_from_survival(survival, num_levels: int) -> list:
    """Place boundaries at equal conditional-advancement survival levels.

    ``survival`` maps a value ``v in (0, 1]`` to an estimate of
    ``Pr[max_t f(X_t) >= v]``.  Boundaries are chosen so that the
    survival at consecutive boundaries forms a geometric ladder from 1
    down to ``survival(1.0)`` — the balanced-growth rule (Eq. 12) —
    by bisection on the (monotone) survival function.
    """
    if num_levels < 1:
        raise ValueError(f"num_levels must be >= 1, got {num_levels}")
    tau = survival(1.0)
    if not 0.0 < tau < 1.0:
        raise ValueError(
            f"survival at the target must be in (0, 1), got {tau}"
        )
    boundaries = []
    for i in range(1, num_levels):
        goal = tau ** (i / num_levels)
        lo, hi = 0.0, 1.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if survival(mid) >= goal:
                lo = mid
            else:
                hi = mid
        boundaries.append(0.5 * (lo + hi))
    # De-duplicate pathological plateaus while preserving order.
    unique = []
    for b in boundaries:
        if not unique or b > unique[-1] + 1e-12:
            if 0.0 < b < 1.0:
                unique.append(b)
    return unique


def curve_refined_boundaries(survival, grid, num_levels: int) -> list:
    """A balanced ladder refined *around* a mandatory boundary grid.

    The curve-aware analogue of
    :func:`balanced_boundaries_from_survival`: the caller's normalized
    threshold grid must appear verbatim in the plan (each grid level is
    a curve read-out point), and the remaining ``num_levels - 1 -
    len(grid)`` refinement boundaries are distributed into the gaps
    between consecutive grid levels (including below the first and
    above the last) proportionally to each gap's survival drop
    ``log(S(lo)/S(hi))`` — the gaps where advancement is hardest get
    the most intermediate levels — then placed inside each gap as a
    geometric survival ladder by bisection.

    Returns the full ascending boundary list (grid plus refinements).
    ``grid`` must be strictly ascending values in ``(0, 1)``.
    """
    if num_levels < 1:
        raise ValueError(f"num_levels must be >= 1, got {num_levels}")
    grid = [float(g) for g in grid]
    for lo, hi in zip(grid, grid[1:]):
        if lo >= hi:
            raise ValueError(
                f"grid must be strictly ascending, got {lo} before {hi}")
    if grid and not (0.0 < grid[0] and grid[-1] < 1.0):
        raise ValueError("grid levels must lie strictly in (0, 1)")
    if not grid:
        return balanced_boundaries_from_survival(survival, num_levels)

    extra = max(num_levels - 1 - len(grid), 0)
    # Gap g spans (edges[g], edges[g+1]) in value space; survival is 1
    # at the bottom edge (value 0) by construction.
    edges = [0.0] + grid + [1.0]
    s_edges = [1.0] + [max(survival(g), 1e-300) for g in grid] \
        + [max(survival(1.0), 1e-300)]
    drops = [max(math.log(s_edges[i] / s_edges[i + 1]), 0.0)
             for i in range(len(s_edges) - 1)]
    total_drop = sum(drops)
    # Largest-remainder apportionment of the refinement budget over
    # gaps; deterministic tie-break by gap index.
    if total_drop > 0.0:
        quotas = [extra * d / total_drop for d in drops]
    else:
        quotas = [extra / len(drops)] * len(drops)
    alloc = [int(q) for q in quotas]
    remainders = sorted(range(len(quotas)),
                        key=lambda g: (alloc[g] + 1 - quotas[g], g))
    for g in remainders[:extra - sum(alloc)]:
        alloc[g] += 1

    refinements = []
    for g, count in enumerate(alloc):
        if count < 1:
            continue
        lo_v, hi_v = edges[g], edges[g + 1]
        s_lo, s_hi = s_edges[g], s_edges[g + 1]
        if s_hi >= s_lo:
            continue  # no survival drop to ladder over
        for j in range(1, count + 1):
            goal = s_lo * (s_hi / s_lo) ** (j / (count + 1))
            lo, hi = lo_v, hi_v
            for _ in range(60):
                mid = 0.5 * (lo + hi)
                if survival(mid) >= goal:
                    lo = mid
                else:
                    hi = mid
            refinements.append(0.5 * (lo + hi))
    # Grid levels always survive; refinements crowding a grid level
    # (or each other, on survival plateaus) are the duplicates dropped.
    kept = []
    for b in sorted(refinements):
        if not 0.0 < b < 1.0:
            continue
        if any(abs(b - g) <= 1e-9 for g in grid):
            continue
        if kept and b <= kept[-1] + 1e-12:
            continue
        kept.append(b)
    return sorted(grid + kept)
