"""In-DBMS durability query pipeline (sqlite3 standing in for PostgreSQL)."""

from .factory import build_process, default_z, state_value, supported_kinds
from .paths import (hitting_fraction, materialize_paths, path_count,
                    path_series, value_quantiles)
from .plan_store import PlanStore, persistable
from .procedures import DurabilityDB
from .schema import create_schema, migrate_level_plans, table_names

__all__ = [
    "DurabilityDB", "PlanStore", "build_process", "create_schema",
    "default_z", "hitting_fraction", "materialize_paths",
    "migrate_level_plans", "path_count", "path_series", "persistable",
    "state_value", "supported_kinds", "table_names", "value_quantiles",
]
