"""(De)serialisation of simulation models for database storage.

Each supported model *kind* maps to a builder that reconstructs the
process from its JSON parameter blob, plus the default real-valued
evaluation ``z`` the paper uses for that model (Queue 2 backlog, CPP
surplus, walk position, ...).  This is what lets the stored-procedure
layer rebuild ``g`` from a table row.
"""

from __future__ import annotations

from typing import Callable

from ..processes.ar import ARProcess
from ..processes.base import StochasticProcess
from ..processes.cpp import CompoundPoissonProcess
from ..processes.gbm import GBMProcess
from ..processes.markov_chain import MarkovChainProcess
from ..processes.queueing import TandemQueueProcess
from ..processes.random_walk import GaussianWalkProcess, RandomWalkProcess
from ..processes.volatile import ImpulseProcess


def _build_queue(params: dict) -> StochasticProcess:
    return TandemQueueProcess(
        arrival_rate=params.get("arrival_rate", 0.5),
        mean_service1=params.get("mean_service1", 2.0),
        mean_service2=params.get("mean_service2", 2.0),
    )


def _build_cpp(params: dict) -> StochasticProcess:
    return CompoundPoissonProcess(
        initial_surplus=params.get("initial_surplus", 15.0),
        premium_rate=params.get("premium_rate", 4.5),
        jump_rate=params.get("jump_rate", 0.8),
        jump_low=params.get("jump_low", 5.0),
        jump_high=params.get("jump_high", 10.0),
    )


def _build_random_walk(params: dict) -> StochasticProcess:
    return RandomWalkProcess(
        p_up=params.get("p_up", 0.5),
        p_down=params.get("p_down"),
        start=params.get("start", 0),
    )


def _build_gaussian_walk(params: dict) -> StochasticProcess:
    return GaussianWalkProcess(
        drift=params.get("drift", 0.0),
        sigma=params.get("sigma", 1.0),
        start=params.get("start", 0.0),
    )


def _build_ar(params: dict) -> StochasticProcess:
    return ARProcess(
        coefficients=params["coefficients"],
        sigma=params.get("sigma", 1.0),
        initial_values=params.get("initial_values"),
    )


def _build_markov(params: dict) -> StochasticProcess:
    return MarkovChainProcess(
        transition_matrix=params["transition_matrix"],
        start=params.get("start", 0),
        values=params.get("values"),
    )


def _build_gbm(params: dict) -> StochasticProcess:
    return GBMProcess(
        start_price=params.get("start_price", 520.0),
        mu=params.get("mu", 0.00082),
        sigma=params.get("sigma", 0.015),
    )


def _wrap_impulse(base: StochasticProcess, params: dict) -> StochasticProcess:
    impulse = params.get("impulse")
    if impulse is None:
        return base
    return ImpulseProcess(
        base,
        impulse=impulse["magnitude"],
        probability=impulse["probability"],
        active_after=impulse["active_after"],
    )


_BUILDERS: dict = {
    "queue": _build_queue,
    "cpp": _build_cpp,
    "random_walk": _build_random_walk,
    "gaussian_walk": _build_gaussian_walk,
    "ar": _build_ar,
    "markov": _build_markov,
    "gbm": _build_gbm,
}

_DEFAULT_Z: dict = {
    "queue": TandemQueueProcess.queue2_length,
    "cpp": CompoundPoissonProcess.surplus,
    "random_walk": RandomWalkProcess.position,
    "gaussian_walk": GaussianWalkProcess.position,
    "ar": ARProcess.current_value,
    "gbm": GBMProcess.price,
}


def supported_kinds() -> tuple:
    return tuple(sorted(_BUILDERS))


def build_process(kind: str, params: dict) -> StochasticProcess:
    """Reconstruct a process from its stored kind and parameters.

    Any kind accepts an optional ``impulse`` sub-object
    (``{"magnitude", "probability", "active_after"}``) producing the
    volatile variant of Section 6.2.
    """
    builder = _BUILDERS.get(kind)
    if builder is None:
        raise ValueError(
            f"unknown model kind {kind!r}; supported: {supported_kinds()}"
        )
    return _wrap_impulse(builder(params), params)


def default_z(kind: str) -> Callable:
    """The model kind's canonical state evaluation ``z``."""
    z = _DEFAULT_Z.get(kind)
    if z is None:
        raise ValueError(
            f"model kind {kind!r} has no default z; supported: "
            f"{tuple(sorted(_DEFAULT_Z))}"
        )
    return z


def state_value(kind: str, state) -> float:
    """Evaluate ``z`` for a state of the given kind (path materialisation)."""
    return default_z(kind)(state)
