"""Sample-path materialisation and inspection (Section 6.4).

"A nice byproduct of utilizing simulation models is that we also
produce a set of concrete sample paths alongside the point estimate...
we can materialize sample paths generated from MLSS simulations as
separate database tables, which can be further used for visualizations
or other analysis."  This module stores simulated paths in the
``sample_paths`` table and answers the obvious follow-up queries
(per-time quantiles, hit summaries) in SQL.
"""

from __future__ import annotations

import random
import sqlite3
from typing import Optional

from ..core.value_functions import DurabilityQuery
from .factory import state_value


def materialize_paths(connection: sqlite3.Connection, run_id: int,
                      query: DurabilityQuery, kind: str, n_paths: int,
                      rng: Optional[random.Random] = None) -> int:
    """Simulate ``n_paths`` full paths and store their ``z`` values.

    Paths run to the full horizon (no early stopping) so downstream
    visualisation sees complete possible worlds.  Returns the number of
    rows inserted.
    """
    if n_paths < 1:
        raise ValueError(f"n_paths must be >= 1, got {n_paths}")
    if rng is None:
        rng = random.Random()
    process = query.process
    rows = []
    for path_id in range(n_paths):
        state = process.initial_state()
        rows.append((run_id, path_id, 0, state_value(kind, state)))
        for t in range(1, query.horizon + 1):
            state = process.step(state, t, rng)
            rows.append((run_id, path_id, t, state_value(kind, state)))
    with connection:
        connection.executemany(
            "INSERT INTO sample_paths (run_id, path_id, t, value)"
            " VALUES (?, ?, ?, ?)", rows)
    return len(rows)


def path_count(connection: sqlite3.Connection, run_id: int) -> int:
    row = connection.execute(
        "SELECT COUNT(DISTINCT path_id) FROM sample_paths WHERE run_id = ?",
        (run_id,)).fetchone()
    return int(row[0])


def value_quantiles(connection: sqlite3.Connection, run_id: int, t: int,
                    quantiles=(0.1, 0.5, 0.9)) -> list:
    """Cross-path value quantiles at time ``t`` (computed in SQL order)."""
    values = [row[0] for row in connection.execute(
        "SELECT value FROM sample_paths WHERE run_id = ? AND t = ?"
        " ORDER BY value", (run_id, t)).fetchall()]
    if not values:
        raise ValueError(f"no materialised values for run {run_id} at t={t}")
    results = []
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        index = min(int(q * len(values)), len(values) - 1)
        results.append(values[index])
    return results


def hitting_fraction(connection: sqlite3.Connection, run_id: int,
                     threshold: float) -> float:
    """Fraction of materialised paths that ever reach ``threshold``.

    A pure-SQL durability check over the possible worlds — the kind of
    follow-up analysis path materialisation exists for.
    """
    row = connection.execute(
        "SELECT COUNT(DISTINCT path_id) * 1.0 / "
        " (SELECT COUNT(DISTINCT path_id) FROM sample_paths"
        "  WHERE run_id = :run)"
        " FROM sample_paths WHERE run_id = :run AND value >= :threshold"
        " AND t >= 1",
        {"run": run_id, "threshold": threshold}).fetchone()
    return float(row[0] or 0.0)


def path_series(connection: sqlite3.Connection, run_id: int,
                path_id: int) -> list:
    """One materialised path as ``[(t, value), ...]``."""
    rows = connection.execute(
        "SELECT t, value FROM sample_paths WHERE run_id = ? AND path_id = ?"
        " ORDER BY t", (run_id, path_id)).fetchall()
    return [(row[0], row[1]) for row in rows]
