"""Persistent level-plan storage: ``PlanCache`` entries in sqlite.

The :class:`~repro.engine.cache.PlanCache` amortizes plan search across
repeated query shapes, but it is process-local and reactive: a restart
throws away every plan, and the first user of each shape after boot
eats the full greedy search on the hot path.  :class:`PlanStore` maps
cache entries onto the ``level_plans`` table of the in-DBMS schema
(:mod:`repro.db.schema`), so plans survive restarts and can be shared
across engine workers pointing at one database file.

Mapping
-------
One cache entry becomes one row:

``shape_key``
    The full :meth:`PlanCache.key_for` tuple — ``(kind, process
    family, horizon, initial bucket, threshold key)`` — encoded with
    ``repr`` and decoded with :func:`ast.literal_eval` (keys are nested
    tuples of scalars and strings, so the round trip is exact,
    including float reprs).  ``UNIQUE``: a re-learned plan replaces its
    row.
``kind``
    The key's kind component alone (``"greedy"``, ``("balanced", n)``,
    or a grid-shaped kind from
    :func:`~repro.engine.cache.grid_plan_kind`), stored redundantly for
    inspection with plain SQL.
``boundaries`` / ``ratio`` / ``score``
    The plan itself.  Boundaries are a JSON array of floats — JSON
    floats round-trip Python floats exactly, so a loaded plan is
    bit-identical to the stored one (the byte-identity contract of
    warm-started answers rests on this).
``source``
    ``"plan_cache"`` for store-written rows; legacy query-scoped rows
    keep their original source and a NULL ``shape_key`` (the store
    never loads them).

Only *symbolic* keys are persisted: a key component carrying an
``@id:`` or ``@self:`` object-identity marker (lambdas, bound methods,
matrix-parameterised processes — see
:func:`~repro.engine.cache._callable_identity`) is meaningless in
another process, so :meth:`PlanStore.save` skips it and counts the
skip.  This is the single known persistence limit: plans for
object-identity-keyed shapes stay process-local by design.

Concurrency: one sqlite writer.  The store serialises its own access
with a lock and opens its connection with ``check_same_thread=False``
(engine write-through happens on executor threads), but cross-process
write concurrency is sqlite's file lock — deploy one writing tier per
database file.

Durability and corruption
-------------------------

The store is a cache of re-computable state, so it fails *soft* in
both directions.  Writes: file-backed connections run in WAL mode, and
a failed ``save`` (disk full, locked database, injected fault) is
counted in ``write_errors`` and reported as ``False`` — the plan stays
cached in memory and the answer path never sees the exception.  Reads:
every row is written with a content checksum over its plan columns;
a row whose checksum mismatches — or whose ``shape_key`` or
``boundaries`` no longer decode — is **quarantined** (counted in
``quarantined``, skipped, never raised), so one corrupt row cannot
crash hydration or poison a byte-identity contract.  Rows from
pre-checksum files carry a NULL checksum and load unvalidated.
"""

from __future__ import annotations

import ast
import hashlib
import json
import sqlite3
import threading
from typing import Optional

from ..core.levels import LevelPartition
from .schema import create_schema

#: Optional fault-injection hook (see :mod:`repro.faults`): a callable
#: ``hook("store.write", store=..., key=...)`` or ``None``, consulted
#: inside the save transaction — raising ``sqlite3.Error`` from it
#: exercises the soft-fail write path.
fault_hook = None

#: Substrings that mark a key component as object-identity-based and
#: therefore meaningless outside the process that built it.
_IDENTITY_MARKERS = ("@id:", "@self:")


def _contains_identity(component) -> bool:
    if isinstance(component, str):
        return any(marker in component for marker in _IDENTITY_MARKERS)
    if isinstance(component, (tuple, list)):
        return any(_contains_identity(item) for item in component)
    return False


def persistable(key) -> bool:
    """True when a plan-cache key survives a process restart.

    Keys are symbolic except where :mod:`repro.engine.cache` fell back
    to object identity (``@id:`` / ``@self:`` markers); those ids name
    objects of the *current* process only, so rows keyed by them could
    never be matched again.
    """
    return not _contains_identity(key)


def encode_key(key) -> str:
    """Serialize a plan-cache key (nested tuples of scalars) to text."""
    return repr(key)


def decode_key(text: str):
    """Inverse of :func:`encode_key`; raises ValueError on junk."""
    return ast.literal_eval(text)


def row_checksum(shape_key: str, boundaries: str, ratio, score) -> str:
    """Content checksum over one row's plan columns, as stored.

    Computed from the serialized *text* forms (plus the numeric ratio
    and score exactly as sqlite returns them), so save and load hash
    identical material without re-encoding.
    """
    material = repr((shape_key, boundaries, int(ratio), float(score)))
    return hashlib.blake2b(material.encode("utf-8"),
                           digest_size=16).hexdigest()


class PlanStore:
    """Sqlite-backed persistence for :class:`PlanCache` entries.

    Parameters
    ----------
    path:
        Database file (created if missing; schema applied
        idempotently).  Ignored when ``connection`` is given.
    connection:
        An existing sqlite3 connection to share (e.g. a
        :class:`~repro.db.procedures.DurabilityDB`'s); the store then
        does not own it and :meth:`close` leaves it open.
    """

    def __init__(self, path: str = ":memory:",
                 connection: Optional[sqlite3.Connection] = None):
        if connection is not None:
            self.connection = connection
            self._owns_connection = False
        else:
            self.connection = sqlite3.connect(
                path, check_same_thread=False)
            self._owns_connection = True
        self.path = path if connection is None else None
        if self._owns_connection and path != ":memory:":
            # WAL survives a crashed writer with at worst the last
            # transaction lost, and lets hydrating readers proceed
            # while a save commits.  Best-effort: some filesystems
            # refuse WAL, and the store works (less robustly) without.
            try:
                self.connection.execute("PRAGMA journal_mode=WAL")
            except sqlite3.Error:
                pass
        create_schema(self.connection)
        self.saves = 0
        self.skipped = 0
        self.loads = 0
        self.quarantined = 0
        self.write_errors = 0
        # One lock serialises every statement: write-through happens
        # from whichever thread ran the plan search (serve executor
        # threads included), and sqlite connections are not themselves
        # thread-safe for interleaved use.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def save(self, key, partition: LevelPartition, ratio: int = 3,
             score: float = float("inf")) -> bool:
        """Persist one plan under its cache key (upsert).

        Returns False (and counts the skip) for keys that are not
        :func:`persistable`, and False (counting ``write_errors``) on
        any sqlite failure — persistence is an optimization, so a
        failed write must never surface on the answer path; the plan
        simply stays memory-only.  True otherwise.
        """
        if not persistable(key):
            self.skipped += 1
            return False
        boundaries = json.dumps(list(partition.boundaries))
        shape_key = encode_key(key)
        checksum = row_checksum(shape_key, boundaries, ratio, score)
        # Delete-then-insert rather than upsert: the AUTOINCREMENT
        # plan_id then grows monotonically with every save, giving an
        # exact recency order for load_all (datetime('now') only has
        # one-second resolution, which ties under bursts of saves).
        try:
            with self._lock, self.connection:
                if fault_hook is not None:
                    fault_hook("store.write", store=self, key=key)
                self.connection.execute(
                    "DELETE FROM level_plans WHERE shape_key = ?",
                    (shape_key,))
                self.connection.execute(
                    """
                    INSERT INTO level_plans
                        (query_id, shape_key, kind, boundaries, ratio,
                         score, source, updated_at, checksum)
                    VALUES (NULL, ?, ?, ?, ?, ?, 'plan_cache',
                            datetime('now'), ?)
                    """,
                    (shape_key, encode_key(key[0]), boundaries,
                     int(ratio), float(score), checksum))
        except sqlite3.Error:
            self.write_errors += 1
            return False
        self.saves += 1
        return True

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def load(self, key):
        """The stored ``(partition, kind, score)`` for a key, or None.

        A corrupt row — boundaries that no longer decode, or a content
        checksum mismatch — is quarantined (counted, treated as a
        miss), never raised: the caller falls back to a fresh plan
        search exactly as on a true miss.
        """
        if not persistable(key):
            return None
        shape_key = encode_key(key)
        with self._lock:
            row = self.connection.execute(
                "SELECT boundaries, ratio, score, checksum "
                "FROM level_plans WHERE shape_key = ?",
                (shape_key,)).fetchone()
        if row is None:
            return None
        decoded = self._decode_row(shape_key, *row)
        if decoded is None:
            return None
        partition, score = decoded
        self.loads += 1
        return partition, key[0], score

    def _decode_row(self, shape_key, boundaries, ratio, score,
                    checksum):
        """``(partition, score)`` for one raw row, or None (quarantined).

        Validates the stored checksum when present (NULL-checksum rows
        predate checksumming and load unvalidated), then decodes the
        boundaries JSON into a :class:`LevelPartition` — which itself
        re-validates the plan invariants (sortedness, open interval).
        """
        try:
            if checksum is not None and checksum != row_checksum(
                    shape_key, boundaries, ratio, score):
                raise ValueError("plan row checksum mismatch")
            partition = LevelPartition(tuple(json.loads(boundaries)))
            return partition, float(score)
        except (ValueError, SyntaxError, TypeError):
            self.quarantined += 1
            return None

    def load_all(self) -> list:
        """Every stored plan as ``(key, partition, kind, score)``.

        Ordered least-recently-updated first (save order — plan_id is
        monotone in save time, see :meth:`save`), so a cache hydrating
        in order leaves the most recently learned plans at the MRU end.
        Rows whose key no longer decodes, whose boundaries are junk,
        or whose checksum mismatches are quarantined (counted in
        ``quarantined``), never fatal — one corrupt row cannot stop
        hydration of the rest.
        """
        with self._lock:
            rows = self.connection.execute(
                "SELECT shape_key, boundaries, ratio, score, checksum "
                "FROM level_plans WHERE shape_key IS NOT NULL "
                "ORDER BY plan_id ASC").fetchall()
        plans = []
        for shape_key, boundaries, ratio, score, checksum in rows:
            try:
                key = decode_key(shape_key)
            except (ValueError, SyntaxError, TypeError):
                self.quarantined += 1
                continue
            decoded = self._decode_row(shape_key, boundaries, ratio,
                                       score, checksum)
            if decoded is None:
                continue
            partition, score_value = decoded
            plans.append((key, partition, key[0], score_value))
        self.loads += len(plans)
        return plans

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            row = self.connection.execute(
                "SELECT COUNT(*) FROM level_plans "
                "WHERE shape_key IS NOT NULL").fetchone()
        return int(row[0])

    def stats(self) -> dict:
        return {
            "plans": len(self),
            "saves": self.saves,
            "skipped": self.skipped,
            "loads": self.loads,
            "quarantined": self.quarantined,
            "write_errors": self.write_errors,
            "path": self.path,
        }

    def close(self) -> None:
        if self._owns_connection:
            self.connection.close()

    def __repr__(self) -> str:
        return (f"PlanStore(path={self.path!r}, plans={len(self)}, "
                f"saves={self.saves})")
