"""Stored-procedure-style query answering inside the DBMS (Section 6.4).

:class:`DurabilityDB` is the end-to-end pipeline the paper demonstrates
with PostgreSQL: register a predictive model (its parameters land in a
table), register durability queries over it, then answer them with SRS
or MLSS running *against the stored parameters* — the sampler rebuilds
the simulation procedure from the database row, exactly like a stored
procedure reading its model table.  Estimates are logged, and sample
paths can be materialised into a table for later inspection.
"""

from __future__ import annotations

import json
import random
import sqlite3
import time
from typing import Optional

from ..core.engine import answer_durability_query
from ..core.estimates import DurabilityEstimate
from ..core.levels import LevelPartition
from ..core.quality import QualityTarget
from ..core.value_functions import DurabilityQuery
from .factory import build_process, default_z
from .paths import materialize_paths
from .schema import create_schema


class DurabilityDB:
    """A durability-query warehouse over sqlite3.

    Parameters
    ----------
    path:
        Database file; the default keeps everything in memory.
    """

    def __init__(self, path: str = ":memory:"):
        self.connection = sqlite3.connect(path)
        self.connection.row_factory = sqlite3.Row
        create_schema(self.connection)
        self._plan_store = None

    def plan_store(self):
        """A :class:`~repro.db.plan_store.PlanStore` over this database.

        Shares the warehouse's connection (and therefore its file), so
        ``PlanCache(store=db.plan_store())`` persists engine plans next
        to the registered models and logged estimates.  Lazily built
        and cached; closing the warehouse closes it too.
        """
        if self._plan_store is None:
            from .plan_store import PlanStore
            self._plan_store = PlanStore(connection=self.connection)
        return self._plan_store

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "DurabilityDB":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_model(self, name: str, kind: str, params: dict) -> int:
        """Store a model's parameters; returns its ``model_id``."""
        build_process(kind, params)  # validate before storing
        with self.connection:
            cursor = self.connection.execute(
                "INSERT INTO models (name, kind, params) VALUES (?, ?, ?)",
                (name, kind, json.dumps(params)),
            )
        return int(cursor.lastrowid)

    def register_query(self, name: str, model_id: int, horizon: int,
                       threshold: float) -> int:
        """Store a threshold durability query; returns its ``query_id``."""
        row = self.connection.execute(
            "SELECT model_id FROM models WHERE model_id = ?",
            (model_id,)).fetchone()
        if row is None:
            raise ValueError(f"no model with id {model_id}")
        with self.connection:
            cursor = self.connection.execute(
                "INSERT INTO queries (model_id, name, horizon, threshold)"
                " VALUES (?, ?, ?, ?)",
                (model_id, name, horizon, threshold),
            )
        return int(cursor.lastrowid)

    def register_plan(self, query_id: int, boundaries, ratio: int = 3,
                      source: str = "manual") -> int:
        """Store a level plan for MLSS runs; returns its ``plan_id``."""
        plan = LevelPartition(boundaries)  # validate
        with self.connection:
            cursor = self.connection.execute(
                "INSERT INTO level_plans (query_id, boundaries, ratio,"
                " source) VALUES (?, ?, ?, ?)",
                (query_id, json.dumps(list(plan.boundaries)), ratio, source),
            )
        return int(cursor.lastrowid)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------

    def load_query(self, query_id: int) -> DurabilityQuery:
        """Rebuild the executable query from its stored rows."""
        row = self.connection.execute(
            "SELECT q.horizon, q.threshold, q.name, m.kind, m.params"
            " FROM queries q JOIN models m ON m.model_id = q.model_id"
            " WHERE q.query_id = ?", (query_id,)).fetchone()
        if row is None:
            raise ValueError(f"no query with id {query_id}")
        process = build_process(row["kind"], json.loads(row["params"]))
        return DurabilityQuery.threshold(
            process, default_z(row["kind"]), beta=row["threshold"],
            horizon=row["horizon"], name=row["name"])

    def load_plan(self, plan_id: int) -> tuple:
        """Rebuild ``(LevelPartition, ratio)`` from a stored plan."""
        row = self.connection.execute(
            "SELECT boundaries, ratio FROM level_plans WHERE plan_id = ?",
            (plan_id,)).fetchone()
        if row is None:
            raise ValueError(f"no plan with id {plan_id}")
        return LevelPartition(json.loads(row["boundaries"])), row["ratio"]

    # ------------------------------------------------------------------
    # The stored procedure: answer a registered query
    # ------------------------------------------------------------------

    def answer_query(self, query_id: int, method: str = "gmlss",
                     plan_id: Optional[int] = None,
                     quality: Optional[QualityTarget] = None,
                     max_steps: Optional[int] = None,
                     max_roots: Optional[int] = None,
                     seed: Optional[int] = None,
                     num_levels: Optional[int] = None,
                     materialize: int = 0) -> DurabilityEstimate:
        """Run a sampler over the stored model and log the estimate.

        ``materialize`` > 0 additionally simulates that many sample
        paths and stores them in ``sample_paths`` under the run id.
        """
        query = self.load_query(query_id)
        partition = None
        ratio = 3
        if plan_id is not None:
            partition, ratio = self.load_plan(plan_id)
        estimate = answer_durability_query(
            query, method=method, partition=partition, ratio=ratio,
            num_levels=num_levels, quality=quality, max_steps=max_steps,
            max_roots=max_roots, seed=seed)
        run_id = self._record_estimate(query_id, estimate, seed)
        estimate.details["run_id"] = run_id
        if materialize > 0:
            kind = self.connection.execute(
                "SELECT m.kind FROM queries q JOIN models m"
                " ON m.model_id = q.model_id WHERE q.query_id = ?",
                (query_id,)).fetchone()["kind"]
            materialize_paths(
                self.connection, run_id, query, kind, n_paths=materialize,
                rng=random.Random(seed))
        return estimate

    def _record_estimate(self, query_id: int,
                         estimate: DurabilityEstimate,
                         seed: Optional[int]) -> int:
        with self.connection:
            cursor = self.connection.execute(
                "INSERT INTO estimates (query_id, method, probability,"
                " variance, n_roots, hits, steps, seconds, seed)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (query_id, estimate.method, estimate.probability,
                 estimate.variance, estimate.n_roots, estimate.hits,
                 estimate.steps, estimate.elapsed_seconds, seed),
            )
        return int(cursor.lastrowid)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def estimates_for(self, query_id: int) -> list:
        """All logged runs of a query, newest first."""
        rows = self.connection.execute(
            "SELECT * FROM estimates WHERE query_id = ?"
            " ORDER BY run_id DESC", (query_id,)).fetchall()
        return [dict(row) for row in rows]

    def best_estimate(self, query_id: int) -> Optional[dict]:
        """The logged run with the smallest variance, if any."""
        row = self.connection.execute(
            "SELECT * FROM estimates WHERE query_id = ?"
            " ORDER BY variance ASC, run_id DESC LIMIT 1",
            (query_id,)).fetchone()
        return dict(row) if row is not None else None
