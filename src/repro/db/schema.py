"""Relational schema for the in-DBMS query pipeline (Section 6.4).

The paper moves the whole durability-query pipeline inside a DBMS
(PostgreSQL in the paper; sqlite3 here — see DESIGN.md): predictive
model parameters live in a table, the samplers run as stored-procedure
style functions over them, estimates are recorded, and sample paths can
be materialised for inspection ("users can look into these possible
worlds").

Tables
------
``models``        — registered simulation models (kind + JSON params).
``queries``       — durability queries over models (horizon, threshold).
``level_plans``   — partition plans usable by MLSS runs.
``estimates``     — one row per query run: answer, variance, cost.
``sample_paths``  — materialised simulated paths (run, path, t, value).
"""

from __future__ import annotations

import sqlite3

SCHEMA_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS models (
        model_id   INTEGER PRIMARY KEY AUTOINCREMENT,
        name       TEXT NOT NULL UNIQUE,
        kind       TEXT NOT NULL,
        params     TEXT NOT NULL,
        created_at TEXT NOT NULL DEFAULT (datetime('now'))
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS queries (
        query_id   INTEGER PRIMARY KEY AUTOINCREMENT,
        model_id   INTEGER NOT NULL REFERENCES models(model_id),
        name       TEXT NOT NULL UNIQUE,
        horizon    INTEGER NOT NULL CHECK (horizon >= 1),
        threshold  REAL NOT NULL,
        created_at TEXT NOT NULL DEFAULT (datetime('now'))
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS level_plans (
        plan_id    INTEGER PRIMARY KEY AUTOINCREMENT,
        query_id   INTEGER REFERENCES queries(query_id),
        shape_key  TEXT UNIQUE,
        kind       TEXT,
        boundaries TEXT NOT NULL,
        ratio      INTEGER NOT NULL DEFAULT 3,
        score      REAL,
        source     TEXT NOT NULL DEFAULT 'manual',
        updated_at TEXT NOT NULL DEFAULT (datetime('now')),
        checksum   TEXT
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS estimates (
        run_id        INTEGER PRIMARY KEY AUTOINCREMENT,
        query_id      INTEGER NOT NULL REFERENCES queries(query_id),
        method        TEXT NOT NULL,
        probability   REAL NOT NULL,
        variance      REAL NOT NULL,
        n_roots       INTEGER NOT NULL,
        hits          INTEGER NOT NULL,
        steps         INTEGER NOT NULL,
        seconds       REAL NOT NULL,
        seed          INTEGER,
        created_at    TEXT NOT NULL DEFAULT (datetime('now'))
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS sample_paths (
        run_id   INTEGER NOT NULL,
        path_id  INTEGER NOT NULL,
        t        INTEGER NOT NULL,
        value    REAL NOT NULL,
        PRIMARY KEY (run_id, path_id, t)
    )
    """,
)

INDEX_STATEMENTS = (
    "CREATE INDEX IF NOT EXISTS idx_estimates_query"
    " ON estimates(query_id)",
    "CREATE INDEX IF NOT EXISTS idx_paths_run"
    " ON sample_paths(run_id)",
)


def _level_plans_columns(connection: sqlite3.Connection) -> dict:
    """``{name: notnull}`` for the existing level_plans table (or {})."""
    rows = connection.execute(
        "PRAGMA table_info(level_plans)").fetchall()
    return {row[1]: bool(row[3]) for row in rows}


def migrate_level_plans(connection: sqlite3.Connection) -> bool:
    """Upgrade a pre-plan-store ``level_plans`` table in place.

    Earlier revisions of the schema required ``query_id`` (plans only
    existed as children of registered queries) and carried no
    shape-key, kind, score or timestamp columns, so a
    :class:`~repro.db.plan_store.PlanStore` could not write rows into
    them.  The migration rebuilds the table in the new shape, keeping
    every existing row (``shape_key`` stays NULL for legacy
    query-scoped plans, which the plan store simply never loads).
    Returns True when a rebuild happened; idempotent otherwise.
    """
    columns = _level_plans_columns(connection)
    if not columns:
        return False
    if "shape_key" in columns and not columns.get("query_id", False):
        return False
    with connection:
        connection.execute(
            "ALTER TABLE level_plans RENAME TO level_plans_legacy")
        connection.execute(SCHEMA_STATEMENTS[2])
        connection.execute(
            "INSERT INTO level_plans "
            "(plan_id, query_id, boundaries, ratio, source) "
            "SELECT plan_id, query_id, boundaries, ratio, source "
            "FROM level_plans_legacy")
        connection.execute("DROP TABLE level_plans_legacy")
    return True


def ensure_plan_checksums(connection: sqlite3.Connection) -> bool:
    """Add the ``checksum`` column to a pre-checksum ``level_plans``.

    Existing rows get a NULL checksum, which the plan store accepts
    without validation (legacy rows stay loadable); rows written from
    now on carry a content checksum it verifies on every load.
    Returns True when the column was added; idempotent otherwise.
    """
    columns = _level_plans_columns(connection)
    if not columns or "checksum" in columns:
        return False
    with connection:
        connection.execute(
            "ALTER TABLE level_plans ADD COLUMN checksum TEXT")
    return True


def create_schema(connection: sqlite3.Connection) -> None:
    """Create all tables and indexes (idempotent; migrates old files)."""
    migrate_level_plans(connection)
    ensure_plan_checksums(connection)
    with connection:
        for statement in SCHEMA_STATEMENTS + INDEX_STATEMENTS:
            connection.execute(statement)


def table_names(connection: sqlite3.Connection) -> set:
    rows = connection.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table'"
    ).fetchall()
    return {row[0] for row in rows}
