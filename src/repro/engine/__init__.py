"""Service-shaped query answering: engine, policies, plan caching.

The :mod:`repro.core` layer answers one query at a time.  This
subpackage wraps it in a stateful service API built for multi-query
workloads:

* :class:`DurabilityEngine` — ``answer`` / ``answer_batch`` /
  ``durability_curve`` over a shared plan cache and the vectorized
  simulation backend;
* :class:`ExecutionPolicy` — an immutable, serializable "how to run
  it" object (method, backend, ratio, budgets, quality target, seed
  policy), reusable across thousands of queries;
* :class:`PlanCache` — memoized level plans keyed by (process family,
  horizon, initial value, threshold bucket), so repeated query shapes
  skip the greedy plan search.

``repro.answer_durability_query`` remains as a thin one-shot wrapper
over a private engine instance.
"""

from .cache import CachedPlan, PlanCache, grid_plan_kind, process_family
from .policy import (ExecutionPolicy, ParallelPolicy, quality_from_dict,
                     quality_to_dict)
from .service import (DurabilityEngine, UnservableGridError, plan_kind,
                      resolve_plan)

__all__ = [
    "CachedPlan", "DurabilityEngine", "ExecutionPolicy", "ParallelPolicy",
    "PlanCache",
    "UnservableGridError",
    "grid_plan_kind", "plan_kind", "process_family", "quality_from_dict",
    "quality_to_dict",
    "resolve_plan",
]
