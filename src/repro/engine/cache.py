"""Plan caching: amortize level-plan search across repeated queries.

The greedy search (Algorithm 1) and the balanced-growth pilot both burn
tens of thousands of simulation steps to pick a partition plan.  For the
service workloads this package targets — ranking durable stocks,
screening server fleets, sweeping threshold grids — the *same shape* of
query arrives over and over: one process family, one horizon, thresholds
in a narrow band.  A plan found once is a good plan for all of them, so
:class:`PlanCache` memoizes plans under a deliberately coarse key:

``(kind, process family, horizon, initial-value bucket, threshold
bucket)``

* **kind** separates greedy plans from balanced plans (which are
  per-level-count);
* **process family** is the process class plus its scalar constructor
  parameters — two ``RandomWalkProcess(p_up=0.35)`` instances share
  plans, while non-scalar components (matrices, nested models) fall
  back to object identity;
* **initial-value bucket** quantizes the initial state's value-function
  score (default 0.05-wide buckets);
* **threshold bucket** quantizes ``log2(beta)`` of a threshold query
  (default quarter-octave buckets), so nearby thresholds — whose
  *normalized* dynamics are nearly identical — share a plan.  The
  ``z`` evaluation's identity is part of the bucket, so different state
  scores never collide.

Sharing a plan across a bucket is always *safe*: MLSS is unbiased under
any plan (Proposition 2); a slightly-off plan costs only efficiency.
Cached plans are re-pruned against each query's actual initial value
before use.

Eviction is LRU with a bounded entry count; ``hits``/``misses``/
``evictions`` counters make cache effectiveness (and capacity
pressure) observable (:meth:`PlanCache.stats`).
"""

from __future__ import annotations

import math
import threading
import types
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from ..core.levels import LevelPartition
from ..core.value_functions import DurabilityQuery, ThresholdValueFunction
from ..processes.base import StochasticProcess

_SCALAR_TYPES = (int, float, str, bool, type(None))


def process_family(process) -> tuple:
    """A hashable key identifying a process *family*, not an instance.

    Built from the class path and the scalar constructor attributes, so
    two instances configured identically share plans.  Nested processes
    (an :class:`~repro.processes.volatile.ImpulseProcess` base, say)
    recurse structurally, so two identically-configured wrappers share
    plans too.  Anything else non-scalar (transition matrices, nested
    models, arrays) is replaced by the component's ``id`` — distinct
    complex processes never collide, at the price of cache sharing only
    through the same object (the common service pattern anyway).

    Underscore-prefixed attributes are skipped: they hold values
    *derived* from the public parameters (pre-computed constants,
    lazily-built adapters), so they add no discrimination but can make
    keys unstable (some are created or replaced after first use).
    """
    cls = type(process)
    params = []
    for name in sorted(vars(process)):
        if name.startswith("_"):
            continue
        value = vars(process)[name]
        if isinstance(value, _SCALAR_TYPES):
            params.append((name, value))
        elif isinstance(value, tuple) and all(
                isinstance(v, _SCALAR_TYPES) for v in value):
            params.append((name, value))
        elif isinstance(value, StochasticProcess):
            params.append((name, process_family(value)))
        else:
            params.append((name, f"@id:{id(value)}"))
    return (cls.__module__, cls.__qualname__, tuple(params))


def grid_plan_kind(base: object, grid) -> tuple:
    """A grid-shaped :class:`PlanCache` kind for curve-aware plans.

    Curve-aware plans (see
    :func:`repro.core.variance.curve_refined_boundaries`) are built
    *for a specific normalized read-out grid* — reusing one for a
    different grid would serve a curve from boundaries that do not
    contain its read-out levels.  Embedding the grid in the kind keeps
    curve plans from colliding with point plans or with each other;
    levels are rounded to 9 decimals so float repr jitter cannot split
    one grid over several keys.
    """
    return (base, "grid", tuple(round(float(g), 9) for g in grid))


def _callable_identity(fn) -> str:
    """A key component for a state evaluation / value function.

    Only *named* plain functions (including staticmethods like
    ``RandomWalkProcess.position``) get a purely symbolic identity, so
    equal-by-construction callables share plans.  Everything whose
    symbol does not pin down behaviour — lambdas and closures (their
    ``__qualname__`` collides across loop iterations), callable class
    instances (per-instance parameters), bound methods (per-object
    state) — includes an object ``id``, trading cache sharing for never
    reusing a plan across genuinely different scores.  The ids stay
    valid because cache entries pin their objects (see
    :attr:`CachedPlan.pins`).
    """
    if isinstance(fn, types.MethodType):
        owner = fn.__self__
        return (f"{type(owner).__module__}.{type(owner).__qualname__}"
                f".{fn.__name__}@self:{id(owner)}")
    qualname = getattr(fn, "__qualname__", None)
    if (isinstance(fn, (types.FunctionType, types.BuiltinFunctionType))
            and qualname and "<" not in qualname):
        return f"{getattr(fn, '__module__', '?')}.{qualname}"
    name = qualname or f"{type(fn).__module__}.{type(fn).__qualname__}"
    return f"{name}@id:{id(fn)}"


@dataclass
class CachedPlan:
    """A memoized level plan plus the metadata that produced it."""

    partition: LevelPartition
    kind: object
    score: float = math.inf
    #: Strong references to the objects whose ``id`` appears in this
    #: entry's key (process, value function).  Pinning them for the
    #: entry's lifetime guarantees a reused address can never alias an
    #: old key — id-based keys are identity-based, not address-based.
    pins: tuple = field(default=(), repr=False)
    #: Where the plan came from: ``"search"`` (found by this process's
    #: own plan search), ``"store"`` (hydrated from a persistent
    #: :class:`~repro.db.plan_store.PlanStore`), or ``"warmed"``
    #: (pre-computed by the proactive :class:`~repro.forecast.warmer.
    #: PlanWarmer` before any query needed it).  Surfaces through
    #: ``details["plan_source"]`` / ``details["plan_origin"]``.
    origin: str = "search"


class PlanCache:
    """LRU cache of level-partition plans keyed by query shape.

    Parameters
    ----------
    max_entries:
        LRU capacity; the least-recently-used plan is evicted beyond it.
    value_bucket:
        Width of the initial-value quantization buckets.
    threshold_buckets_per_octave:
        Resolution of the ``log2(beta)`` threshold quantization; higher
        means less sharing between nearby thresholds.
    store:
        Optional persistent backing
        (:class:`~repro.db.plan_store.PlanStore`).  Plans stored there
        are loaded on construction (entries carry ``origin="store"``,
        so answers resolved from them report ``plan_source:
        "store"``), and every :meth:`put` of a persistable key writes
        through, so learned plans survive restarts.  Keys carrying
        object-identity markers stay memory-only (the store skips
        them).
    """

    def __init__(self, max_entries: int = 256, value_bucket: float = 0.05,
                 threshold_buckets_per_octave: int = 4, store=None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if value_bucket <= 0:
            raise ValueError(
                f"value_bucket must be > 0, got {value_bucket}")
        if threshold_buckets_per_octave < 1:
            raise ValueError(
                f"threshold_buckets_per_octave must be >= 1, got "
                f"{threshold_buckets_per_octave}")
        self.max_entries = max_entries
        self.value_bucket = value_bucket
        self.threshold_buckets_per_octave = threshold_buckets_per_octave
        self.store = store
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # One engine (and its plan cache) may be driven from several
        # threads at once — batch dispatch, services, or worker-pool
        # orchestration.  All LRU mutation (lookup reordering, insert,
        # eviction) and counter updates happen under this lock;
        # OrderedDict.move_to_end + eviction are not atomic on their
        # own.  (Worker *processes* each hold their own cache — plans
        # are process-local by design.)
        self._lock = threading.RLock()
        if store is not None:
            self._hydrate(store)

    def _hydrate(self, store) -> None:
        """Load every persisted plan (oldest first, so recent = MRU).

        Persisted keys are purely symbolic (the store refuses
        identity-marked ones), so hydrated entries need no pins; their
        keys can be matched by any structurally-equal future query.
        """
        with self._lock:
            for key, partition, kind, score in store.load_all():
                self._entries[key] = CachedPlan(
                    partition=partition, kind=kind, score=score,
                    origin="store")
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    def key_for(self, query: DurabilityQuery, kind: object = "greedy",
                initial_value: Optional[float] = None):
        """The cache key a query maps to (exposed for inspection).

        ``initial_value`` lets callers that already evaluated the
        query's initial state (a model invocation) avoid a second one.
        """
        value_fn = query.value_function
        if isinstance(value_fn, ThresholdValueFunction):
            threshold_key = (
                _callable_identity(value_fn.z),
                round(math.log2(value_fn.beta)
                      * self.threshold_buckets_per_octave),
            )
        else:
            threshold_key = (_callable_identity(value_fn),)
        if initial_value is None:
            initial_value = query.initial_value()
        initial_bucket = round(initial_value / self.value_bucket)
        return (kind, process_family(query.process), query.horizon,
                initial_bucket, threshold_key)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, query: DurabilityQuery,
            kind: object = "greedy") -> Optional[CachedPlan]:
        """Return the cached plan for this query shape, or None.

        A hit refreshes the entry's LRU position and re-prunes the plan
        against the query's actual initial value (bucket neighbours can
        differ slightly).
        """
        initial_value = query.initial_value()
        key = self.key_for(query, kind, initial_value)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        pruned = entry.partition.pruned_above(initial_value)
        if pruned == entry.partition:
            return entry
        return CachedPlan(partition=pruned, kind=entry.kind,
                          score=entry.score, pins=entry.pins,
                          origin=entry.origin)

    def peek(self, query: DurabilityQuery,
             kind: object = "greedy") -> Optional[CachedPlan]:
        """The raw entry for a query shape, without counters or LRU.

        Provenance introspection only (e.g. "did that hit come from
        the persistent store?"): no hit/miss accounting, no recency
        update, no re-pruning.
        """
        key = self.key_for(query, kind)
        with self._lock:
            return self._entries.get(key)

    def put(self, query: DurabilityQuery, partition: LevelPartition,
            kind: object = "greedy", score: float = math.inf,
            origin: str = "search") -> None:
        """Memoize a plan for this query shape (LRU-evicting).

        With a persistent :attr:`store` attached, the entry is also
        written through (for persistable keys), so it survives
        restarts.
        """
        key = self.key_for(query, kind)
        with self._lock:
            self._entries[key] = CachedPlan(
                partition=partition, kind=kind, score=score,
                pins=(query.process, query.value_function),
                origin=origin)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        if self.store is not None:
            self.store.save(key, partition, score=score)

    def retag(self, query: DurabilityQuery, kind: object = "greedy",
              origin: str = "warmed") -> bool:
        """Relabel an entry's provenance in place (no counters).

        Used by the proactive warmer: a plan it computed went through
        the ordinary search-then-:meth:`put` path (``origin
        "search"``), but future hits should be attributable to warming.
        Returns False when the shape is not cached.
        """
        key = self.key_for(query, kind)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            entry.origin = origin
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict:
        """Hit/miss counters and occupancy, for service observability."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
            }

    def __repr__(self) -> str:
        return (f"PlanCache(entries={len(self._entries)}, "
                f"hits={self.hits}, misses={self.misses})")
