"""Execution policies: *how* to answer a query, separated from *what*.

A :class:`repro.core.value_functions.DurabilityQuery` says what to ask —
process, condition, horizon.  An :class:`ExecutionPolicy` says how to
run it — estimation method, simulation backend, splitting ratio,
stopping rule (quality target and/or budgets), plan-search knobs and
seed policy.  Separating the two makes policies reusable (one policy
drives thousands of screening queries), comparable (swap methods on the
same queries) and serializable (ship a policy in a job spec or config
file via :meth:`ExecutionPolicy.to_dict` /
:meth:`ExecutionPolicy.from_dict`).

Policies are immutable; derive variants with
:meth:`ExecutionPolicy.replace`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Optional

from ..core.quality import (ConfidenceIntervalTarget, NeverTarget,
                            QualityTarget, RelativeErrorTarget)

#: Schema version stamped into :meth:`ExecutionPolicy.to_dict` ("v").
POLICY_SCHEMA_VERSION = 1

METHODS = ("srs", "smlss", "gmlss", "auto")
BACKENDS = ("scalar", "vectorized", "auto")
POOL_MODES = ("fork", "spawn", "thread", "inline")

#: Stride between derived per-query seeds in batch runs (a prime, so
#: derived streams never collide for realistic batch sizes).
_SEED_STRIDE = 1_000_003
_SEED_MOD = 2 ** 31


def quality_to_dict(quality: Optional[QualityTarget]) -> Optional[dict]:
    """Serialize a quality target to a plain-JSON dict (or None)."""
    if quality is None:
        return None
    if isinstance(quality, ConfidenceIntervalTarget):
        return {"kind": "ci", "half_width": quality.half_width,
                "confidence": quality.confidence,
                "relative": quality.relative,
                "min_hits": quality.min_hits,
                "min_roots": quality.min_roots}
    if isinstance(quality, RelativeErrorTarget):
        return {"kind": "re", "target": quality.target,
                "min_hits": quality.min_hits,
                "min_roots": quality.min_roots}
    if isinstance(quality, NeverTarget):
        return {"kind": "never"}
    raise TypeError(
        f"cannot serialize quality target {type(quality).__name__}; "
        f"use one of the built-in targets or extend quality_to_dict"
    )


def quality_from_dict(data: Optional[dict]) -> Optional[QualityTarget]:
    """Inverse of :func:`quality_to_dict`."""
    if data is None:
        return None
    kind = data.get("kind")
    fields = {k: v for k, v in data.items() if k != "kind"}
    if kind == "ci":
        return ConfidenceIntervalTarget(**fields)
    if kind == "re":
        return RelativeErrorTarget(**fields)
    if kind == "never":
        return NeverTarget()
    raise ValueError(f"unknown quality target kind {kind!r}")


@dataclass(frozen=True)
class ParallelPolicy:
    """How to spread simulation over a persistent worker pool.

    Attaching one of these to :attr:`ExecutionPolicy.parallel` makes
    the engine run samplers and fleet screens over a
    :class:`~repro.core.pool.WorkerPool` (owned by the engine, reused
    across calls).  Results are **invariant under** ``n_workers`` and
    ``pool``: work decomposes into fixed-size tasks whose seeds derive
    from the task index, so parallelism changes latency, not answers.

    Attributes
    ----------
    n_workers:
        Worker process count; ``None`` means ``os.cpu_count()``.
        ``1`` falls back to the inline (no-process) mode.
    roots_per_task:
        Root trees / SRS paths per work descriptor.
    tasks_per_round:
        Minimum tasks per stopping-rule round — a constant (never
        derived from ``n_workers``), sized so a round can keep several
        workers busy.
    members_per_task:
        Fleet members per slice in fused fleet passes.
    pool:
        ``"fork"`` (default), ``"spawn"``, ``"thread"`` (worker
        threads sharing the parent address space — no startup or
        pickling cost; the NumPy kernels release the GIL) or
        ``"inline"``.  Where fork is unavailable, ``"fork"`` falls
        back to ``"thread"``.
    streamed:
        Pipeline pooled rounds (speculative next-round submission;
        see :class:`~repro.core.pool.RoundPipeline`).  Results are
        byte-identical either way; ``False`` restores the per-round
        barrier.
    max_worker_restarts:
        Supervision budget: how many dead (or deadline-overrunning)
        workers the pool may respawn per burst of work before falling
        back to the abort-with-cleanup path.  Recovery re-runs only
        the dead worker's in-flight tasks, byte-identically (task
        seeds are structural).  ``0`` restores the historical
        any-death-aborts behavior; the default keeps engine runs alive
        through occasional worker crashes.
    task_retry_limit:
        How many times one task may be re-submitted after worker
        deaths before the run aborts anyway (poison-pill guard).
    task_timeout_seconds:
        Optional per-task deadline; an overrunning process worker is
        terminated and recovered like a crash.  ``None`` disables it.
    """

    n_workers: Optional[int] = None
    roots_per_task: int = 256
    tasks_per_round: int = 8
    members_per_task: int = 32
    pool: str = "fork"
    streamed: bool = True
    max_worker_restarts: int = 2
    task_retry_limit: int = 2
    task_timeout_seconds: Optional[float] = None

    def validate(self) -> "ParallelPolicy":
        if self.n_workers is not None and self.n_workers < 1:
            raise ValueError(
                f"n_workers must be >= 1, got {self.n_workers}")
        if self.roots_per_task < 1:
            raise ValueError(
                f"roots_per_task must be >= 1, got {self.roots_per_task}")
        if self.tasks_per_round < 1:
            raise ValueError(
                f"tasks_per_round must be >= 1, got "
                f"{self.tasks_per_round}")
        if self.members_per_task < 1:
            raise ValueError(
                f"members_per_task must be >= 1, got "
                f"{self.members_per_task}")
        if self.pool not in POOL_MODES:
            raise ValueError(
                f"unknown pool mode {self.pool!r}; choose from "
                f"{POOL_MODES}")
        if self.max_worker_restarts < 0:
            raise ValueError(
                f"max_worker_restarts must be >= 0, got "
                f"{self.max_worker_restarts}")
        if self.task_retry_limit < 0:
            raise ValueError(
                f"task_retry_limit must be >= 0, got "
                f"{self.task_retry_limit}")
        if self.task_timeout_seconds is not None \
                and self.task_timeout_seconds <= 0:
            raise ValueError(
                f"task_timeout_seconds must be > 0, got "
                f"{self.task_timeout_seconds}")
        return self

    def to_dict(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "roots_per_task": self.roots_per_task,
            "tasks_per_round": self.tasks_per_round,
            "members_per_task": self.members_per_task,
            "pool": self.pool,
            "streamed": self.streamed,
            "max_worker_restarts": self.max_worker_restarts,
            "task_retry_limit": self.task_retry_limit,
            "task_timeout_seconds": self.task_timeout_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ParallelPolicy":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ParallelPolicy fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}")
        return cls(**data)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How the engine should answer queries.

    Attributes
    ----------
    method:
        ``"srs"``, ``"smlss"``, ``"gmlss"`` or ``"auto"`` (g-MLSS with
        an automatically searched plan).
    backend:
        Simulation backend: ``"auto"``, ``"vectorized"`` or
        ``"scalar"`` (see :func:`repro.processes.base.resolve_backend`).
    ratio:
        Splitting ratio ``r`` — an int, or a per-level sequence.
    num_levels:
        When set, MLSS plans come from the balanced-growth pilot with
        this many levels instead of the greedy search.
    trial_steps:
        Per-trial budget of the greedy plan search.
    quality / max_steps / max_roots:
        The stopping rule; at least one must be set (enforced by
        :meth:`validate` before any simulation runs).
    seed:
        Base seed.  Single queries use it directly; batch members get
        deterministic derived seeds via :meth:`seed_for`.
    record_trace:
        Record convergence snapshots in estimate details.
    use_plan_cache:
        Consult/populate the engine's :class:`~repro.engine.cache.
        PlanCache` for MLSS plans.
    fuse:
        Allow ``answer_batch`` to fuse same-family queries over
        *different* process objects into one shared simulation frontier
        (see :class:`repro.processes.base.FusedBatch`).  Disable to
        force the per-process cohort behaviour (e.g. for A/B
        measurement; estimates are exchangeable either way).
    parallel:
        A :class:`ParallelPolicy` spreading simulation over the
        engine's persistent worker pool, or ``None`` (default) for
        single-process execution.  Parallel results are invariant
        under the worker count.
    sampler_options:
        Extra keyword arguments for the sampler constructor.
    """

    method: str = "auto"
    backend: str = "auto"
    ratio: object = 3
    num_levels: Optional[int] = None
    trial_steps: int = 20000
    quality: Optional[QualityTarget] = None
    max_steps: Optional[int] = None
    max_roots: Optional[int] = None
    seed: Optional[int] = None
    record_trace: bool = False
    use_plan_cache: bool = True
    fuse: bool = True
    parallel: Optional[ParallelPolicy] = None
    sampler_options: Optional[dict] = None

    # ------------------------------------------------------------------
    # Validation / derivation
    # ------------------------------------------------------------------

    def validate(self) -> "ExecutionPolicy":
        """Check the policy is runnable; returns self for chaining.

        Raises a ``ValueError`` for unknown methods/backends and — the
        documented stopping-rule contract — when ``quality``,
        ``max_steps`` and ``max_roots`` are all ``None`` (the sampler
        would never stop).  The engine validates *before* any plan
        search, so a bad policy fails fast instead of after an
        expensive search.
        """
        if self.method not in METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; choose from {METHODS}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}")
        if (self.quality is None and self.max_steps is None
                and self.max_roots is None):
            raise ValueError(
                "the policy has no stopping rule: provide a quality "
                "target, max_steps or max_roots (at least one must be "
                "given; otherwise the sampler would never stop)"
            )
        if self.trial_steps < 1:
            raise ValueError(
                f"trial_steps must be >= 1, got {self.trial_steps}")
        if self.num_levels is not None and self.num_levels < 1:
            raise ValueError(
                f"num_levels must be >= 1, got {self.num_levels}")
        if self.parallel is not None:
            self.parallel.validate()
        return self

    def replace(self, **overrides) -> "ExecutionPolicy":
        """A copy of this policy with some fields overridden."""
        return dataclasses.replace(self, **overrides)

    def seed_for(self, index: int) -> Optional[int]:
        """Deterministic per-member seed for batch position ``index``.

        ``seed_for(0) == seed``, so a batch of one reproduces the
        single-query run exactly; ``None`` stays ``None`` (fresh
        entropy per member).
        """
        if self.seed is None:
            return None
        return (self.seed + index * _SEED_STRIDE) % _SEED_MOD

    def derive_seed(self, material) -> Optional[int]:
        """Deterministic seed derived from *what* is being answered.

        ``material`` is any ``repr``-stable description of the work —
        the engine passes a structural digest of the query (process
        family, horizon, state evaluation, threshold).  Deriving seeds
        from content rather than batch position makes batch answers
        independent of batch *composition*: the same query seeds the
        same stream whether it runs alone, grouped, or reordered.
        ``None`` stays ``None`` (fresh entropy).
        """
        if self.seed is None:
            return None
        digest = hashlib.blake2b(
            repr((self.seed, material)).encode("utf-8"),
            digest_size=8).digest()
        return int.from_bytes(digest, "big") % _SEED_MOD

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """A plain-JSON representation (inverse of :meth:`from_dict`).

        The document carries a schema version stamp ``"v"`` so wire
        clients and stored configs fail loudly (rather than silently
        misread) when the policy schema evolves.
        """
        ratio = self.ratio
        if not isinstance(ratio, int):
            ratio = list(ratio)
        return {
            "v": POLICY_SCHEMA_VERSION,
            "method": self.method,
            "backend": self.backend,
            "ratio": ratio,
            "num_levels": self.num_levels,
            "trial_steps": self.trial_steps,
            "quality": quality_to_dict(self.quality),
            "max_steps": self.max_steps,
            "max_roots": self.max_roots,
            "seed": self.seed,
            "record_trace": self.record_trace,
            "use_plan_cache": self.use_plan_cache,
            "fuse": self.fuse,
            "parallel": self.parallel.to_dict()
            if self.parallel is not None else None,
            "sampler_options": dict(self.sampler_options)
            if self.sampler_options else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionPolicy":
        """Rebuild a policy from :meth:`to_dict` output.

        Accepts partial documents (missing fields keep their defaults).
        Unknown keys are rejected so config typos fail loudly, and the
        optional ``"v"`` version stamp is validated: a document from a
        newer schema raises instead of being silently misread.
        """
        data = dict(data)
        version = data.pop("v", POLICY_SCHEMA_VERSION)
        if version != POLICY_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported ExecutionPolicy schema version {version!r};"
                f" this build reads v{POLICY_SCHEMA_VERSION}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ExecutionPolicy fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}")
        fields = dict(data)
        if "quality" in fields:
            fields["quality"] = quality_from_dict(fields["quality"])
        if isinstance(fields.get("parallel"), dict):
            fields["parallel"] = ParallelPolicy.from_dict(
                fields["parallel"])
        if isinstance(fields.get("ratio"), list):
            fields["ratio"] = tuple(fields["ratio"])
        return cls(**fields)
