"""The stateful query-answering service: :class:`DurabilityEngine`.

``answer_durability_query`` answers one query from scratch: plan search,
simulation, estimate.  The engine keeps the same pipeline but amortizes
work across queries, which is what the paper's headline scenarios
(ranking durable stocks, screening server fleets against SLA
thresholds, charting ``Pr[hit <= horizon]`` against a threshold grid)
actually need:

* :meth:`DurabilityEngine.answer` — one query, with level plans
  memoized in a :class:`~repro.engine.cache.PlanCache` so repeated
  query shapes skip the greedy search entirely;
* :meth:`DurabilityEngine.answer_batch` — many queries; compatible ones
  (same horizon and state evaluation, different thresholds) are grouped
  into *cohorts* that share a single simulation pass through the
  vectorized backend.  Grouping is **structural**: queries over the
  same process object share a curve pass, and queries over *different
  processes of one fusible family* (a fleet with per-entity
  parameters) share a fused SRS screening pass — the whole fleet
  advances as one :class:`~repro.processes.base.FusedBatch` frontier,
  one ``step_batch`` per time step (see
  :func:`repro.core.fleet.screen_fleet`).  The rest run individually
  (with plan caching).  Cost accounting is unchanged throughout: a
  shared or fused pass still counts one invocation of ``g`` per live
  path per time step, attributed to the entity that owns the path;
* :meth:`DurabilityEngine.durability_curve` — an entire threshold grid
  from **one** pass: running path maxima under SRS, per-level root
  records (prefix products of Eq. 8) under MLSS — a measured order of
  magnitude cheaper than one run per threshold at the same
  per-threshold accuracy (see ``benchmarks/bench_engine_api.py``).

"What to ask" stays in :class:`~repro.core.value_functions.
DurabilityQuery`; "how to run it" lives in an immutable, serializable
:class:`~repro.engine.policy.ExecutionPolicy` that the engine holds as
a default and accepts per call (plus keyword overrides)::

    engine = DurabilityEngine(ExecutionPolicy(max_steps=500_000, seed=7))
    estimate = engine.answer(query)                       # default policy
    fast = engine.answer(query, max_steps=50_000)         # override
    curve = engine.durability_curve(query, thresholds=range(10, 26))
    answers = engine.answer_batch(queries)                # cohorts + cache
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
from typing import Optional, Sequence

from ..core.balanced import balanced_growth_partition
from ..core.estimates import DurabilityCurve, DurabilityEstimate
from ..core.fleet import (FleetThresholdValue, cluster_members_by_initial,
                          validate_grids, screen_fleet,
                          screen_fleet_curves, screen_fleet_mlss)
from ..core.forest import LevelPlanError
from ..core.gmlss import GMLSSSampler
from ..core.greedy import adaptive_greedy_partition
from ..core.levels import LevelPartition, uniform_partition
from ..core.pool import WorkerPool
from ..core.smlss import SMLSSSampler
from ..core.srs import SRSSampler
from ..core.value_functions import (DurabilityQuery, ThresholdValueFunction,
                                    threshold_grid)
from ..processes.base import FusedBatch, StochasticProcess, resolve_backend
from .cache import PlanCache, _callable_identity, grid_plan_kind
from .policy import ExecutionPolicy


class UnservableGridError(ValueError):
    """A threshold grid the MLSS curve pass cannot serve.

    Raised when a normalized grid level does not exceed the initial
    state's value (splitting boundaries must); distinct from other
    ``ValueError``s so batch cohorting can fall back on exactly this
    case without masking real configuration errors.
    """


def plan_kind(num_levels: Optional[int], grid=None):
    """The :class:`PlanCache` kind a plan resolution files under.

    The single mapping from policy shape to cache kind — balanced
    pilots are per-level-count, greedy plans share one kind, and a
    read-out ``grid`` wraps either in a grid-shaped kind
    (:func:`~repro.engine.cache.grid_plan_kind`).  Shared by
    :func:`resolve_plan`, the engine's provenance introspection and
    the proactive warmer, so "which cache entry would this query use?"
    has exactly one answer.
    """
    base = "greedy" if num_levels is None else ("balanced", num_levels)
    return grid_plan_kind(base, grid) if grid else base


def resolve_plan(query: DurabilityQuery,
                 partition: Optional[LevelPartition],
                 num_levels: Optional[int],
                 ratio, trial_steps: int,
                 seed: Optional[int],
                 backend: str = "scalar",
                 plan_cache: Optional[PlanCache] = None,
                 pool=None,
                 grid=None):
    """Choose the level plan: explicit > cached > balanced pilot > greedy.

    The single source of truth for plan precedence (also behind the
    stateless ``repro.core.engine.resolve_partition``).  Returns
    ``(partition, search_details_or_None, cache_status_or_None,
    cache_origin_or_None)``; ``cache_status`` is ``"hit"``/``"miss"``
    when a plan cache participated, and ``cache_origin`` reports where
    a hit entry came from (``"search"``, ``"store"``, ``"warmed"`` —
    see :attr:`~repro.engine.cache.CachedPlan.origin`).  Pilot
    simulations (balanced-growth pilots and greedy candidate trials)
    run on the requested backend; with ``pool`` (a
    :class:`~repro.core.pool.WorkerPool`) they shard over its workers
    and — because trial and pilot seeds are structural — return exactly
    the plan the parent-only search would.

    ``grid`` makes the resolution *curve-aware*: a strictly ascending
    tuple of normalized threshold levels that must appear verbatim in
    the plan (a ``durability_curve``'s read-out boundaries).  The
    balanced pilot distributes its remaining boundaries into the
    survival gaps between grid levels; the greedy search seeds its
    plan with the grid and only adds refinements that beat serving the
    grid as-is.  Curve-aware plans are cached under grid-shaped keys
    (:func:`~repro.engine.cache.grid_plan_kind`), so they never
    collide with point plans.
    """
    initial_value = query.initial_value()
    if partition is not None:
        return partition.pruned_above(initial_value), None, None, None
    grid = tuple(float(g) for g in grid) if grid else None
    hits_before = plan_cache.hits if plan_cache is not None else 0
    if num_levels is not None:
        plan = balanced_growth_partition(
            query, num_levels,
            pilot_paths=max(trial_steps // query.horizon, 200),
            seed=seed, backend=backend, plan_cache=plan_cache,
            pool=pool, grid=grid,
            cache_kind=(grid_plan_kind(("balanced", num_levels), grid)
                        if grid else None))
        search_details = None
    else:
        result = adaptive_greedy_partition(
            query, ratio=ratio, trial_steps=trial_steps, seed=seed,
            backend=backend, plan_cache=plan_cache, pool=pool, grid=grid,
            cache_kind=(grid_plan_kind("greedy", grid)
                        if grid else None))
        plan = result.partition
        search_details = {
            "search_steps": result.search_steps,
            "search_rounds": result.num_rounds,
            "pooled_estimate": result.pooled_estimate,
            "pooled_roots": result.pooled_roots,
            "partition": result.partition,
            "from_cache": result.from_cache,
        }
    cache_status = None
    cache_origin = None
    if plan_cache is not None:
        cache_status = "hit" if plan_cache.hits > hits_before else "miss"
        entry = plan_cache.peek(query, plan_kind(num_levels, grid))
        if entry is not None:
            cache_origin = entry.origin
    return plan, search_details, cache_status, cache_origin


class DurabilityEngine:
    """A stateful durability-prediction query service.

    **Concurrency:** one engine may be driven by many threads at once
    (the serving tier runs every request on an executor thread).  The
    shared mutable state is the :class:`PlanCache` (internally locked),
    and the lazily created :class:`WorkerPool` (thread-safe task
    streams; creation/teardown single-flighted under ``_pool_lock``,
    so concurrent first calls build exactly one pool and
    :meth:`close` is idempotent and safe against in-progress
    ``_get_pool`` calls).  Estimates themselves are per-call values —
    nothing is shared between two in-flight ``answer`` calls beyond
    those two structures.

    Parameters
    ----------
    policy:
        Default :class:`ExecutionPolicy` for all calls; every entry
        point also takes a per-call policy and/or keyword overrides.
    plan_cache:
        The :class:`PlanCache` that memoizes level plans across calls;
        a fresh bounded cache by default.  Pass a shared instance to
        pool plans across engines, or one built with ``store=`` (a
        :class:`~repro.db.plan_store.PlanStore`) to persist plans
        across restarts — answers resolved from a persisted plan
        report ``details["plan_source"] == "store"``.
    workload_log:
        Optional :class:`~repro.forecast.log.WorkloadLog` (any object
        with its ``record`` signature).  Every public entry point —
        :meth:`answer`, :meth:`answer_batch`, :meth:`durability_curve`,
        :meth:`durability_curves` — appends one arrival record per
        query answered, tagged with the measured plan-search cost, so
        forecasters can predict tomorrow's shapes and the
        :class:`~repro.forecast.warmer.PlanWarmer` can rank them.
        Nested internal calls (batch cohorts answering through
        ``durability_curve``) are not double-counted.
    """

    def __init__(self, policy: Optional[ExecutionPolicy] = None,
                 plan_cache: Optional[PlanCache] = None,
                 workload_log=None):
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.workload_log = workload_log
        self._pool: Optional[WorkerPool] = None
        self._pool_config = None
        # Engines may be driven from several threads (the same reason
        # PlanCache locks its LRU); pool creation/teardown must not
        # race or two pools could be built and one leak its workers.
        self._pool_lock = threading.Lock()
        # Re-entrancy guard for workload recording: answer_batch
        # cohorts answer through durability_curve / answer, but an
        # arrival must be logged once, at the entry point the caller
        # used.  Thread-local, because one engine serves many threads.
        self._recording = threading.local()

    # ------------------------------------------------------------------
    # Policy plumbing
    # ------------------------------------------------------------------

    def _resolve_policy(self, policy: Optional[ExecutionPolicy],
                        overrides: dict) -> ExecutionPolicy:
        base = policy if policy is not None else self.policy
        if overrides:
            base = base.replace(**overrides)
        return base.validate()

    def cache_stats(self) -> dict:
        """Plan-cache hit/miss counters (service observability)."""
        return self.plan_cache.stats()

    # ------------------------------------------------------------------
    # Workload recording
    # ------------------------------------------------------------------

    def _record_start(self) -> bool:
        """Claim the arrival-recording slot for this entry point.

        Returns True when this call is the outermost public entry
        point and a workload log is attached — exactly the calls that
        should append arrival records.  Cohort internals that re-enter
        ``answer``/``durability_curve`` find the slot taken and stay
        silent, so one user-visible query is one arrival.
        """
        if self.workload_log is None:
            return False
        if getattr(self._recording, "active", False):
            return False
        self._recording.active = True
        return True

    def _record_end(self) -> None:
        self._recording.active = False

    @staticmethod
    def _search_steps(details) -> int:
        """Measured plan-search cost carried by an estimate's details."""
        search = (details or {}).get("plan_search") or {}
        return int(search.get("search_steps", 0) or 0)

    def _record_arrival(self, query, grid=None, details=None) -> None:
        self.workload_log.record(
            query, grid=grid, search_steps=self._search_steps(details))

    # ------------------------------------------------------------------
    # Worker-pool lifecycle
    # ------------------------------------------------------------------

    def _get_pool(self, policy: ExecutionPolicy) -> Optional[WorkerPool]:
        """The engine-owned persistent pool for this policy, if any.

        Created on first parallel call and reused across queries —
        that persistence (workers, registered substrates, shared
        counter blocks) is the whole point of the pool.  A policy
        asking for a different worker count or pool mode replaces it.
        """
        parallel = policy.parallel
        if parallel is None:
            return None
        config = (parallel.n_workers, parallel.pool,
                  parallel.max_worker_restarts, parallel.task_retry_limit,
                  parallel.task_timeout_seconds)
        with self._pool_lock:
            if self._pool is not None and (self._pool.closed
                                           or self._pool_config != config):
                self._pool.close()
                self._pool = None
                self._pool_config = None
            if self._pool is None:
                self._pool = WorkerPool(
                    n_workers=parallel.n_workers, pool=parallel.pool,
                    max_worker_restarts=parallel.max_worker_restarts,
                    task_retry_limit=parallel.task_retry_limit,
                    task_timeout_seconds=parallel.task_timeout_seconds)
                self._pool_config = config
            return self._pool

    def close(self) -> None:
        """Shut down the engine's worker pool (idempotent).

        The engine remains usable afterwards — the next parallel call
        simply starts a fresh pool.
        """
        with self._pool_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None
                self._pool_config = None

    def resilience_stats(self) -> dict:
        """Supervision counters of the current pool (zeros when none).

        ``worker_restarts`` / ``tasks_recovered`` count workers the
        pool supervisor respawned and in-flight tasks it re-ran
        deterministically (see :mod:`repro.core.pool`); the serving
        tier surfaces them in ``/metrics``.
        """
        with self._pool_lock:
            pool = self._pool
            if pool is None:
                return {"worker_restarts": 0, "tasks_recovered": 0}
            return {"worker_restarts": pool.worker_restarts,
                    "tasks_recovered": pool.tasks_recovered}

    def __enter__(self) -> "DurabilityEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Single query
    # ------------------------------------------------------------------

    def answer(self, query: DurabilityQuery,
               policy: Optional[ExecutionPolicy] = None,
               partition: Optional[LevelPartition] = None,
               **overrides) -> DurabilityEstimate:
        """Answer one durability query under the resolved policy.

        ``partition`` short-circuits plan resolution with an explicit
        plan (pruned against the initial state, as always); otherwise
        MLSS plans come from the cache, the balanced pilot
        (``policy.num_levels``) or the greedy search, in that order of
        preference.
        """
        policy = self._resolve_policy(policy, overrides)
        recording = self._record_start()
        try:
            sampler, sampler_backend, extra = self._build_sampler(
                query, policy, partition)
            estimate = sampler.run(
                query, quality=policy.quality, max_steps=policy.max_steps,
                max_roots=policy.max_roots, seed=policy.seed)
            estimate.details["backend"] = sampler_backend
            estimate.details.update(extra)
            if recording:
                self._record_arrival(query, details=estimate.details)
            return estimate
        finally:
            if recording:
                self._record_end()

    def _sampler_options(self, query: DurabilityQuery,
                         policy: ExecutionPolicy):
        """Resolve backend and sampler constructor options once.

        Returns ``(options, backend, sampler_backend)``; the single
        place `answer` and `durability_curve` share, so sampler
        construction cannot drift between entry points.
        """
        backend = resolve_backend(policy.backend, query.process)
        options = dict(policy.sampler_options or {})
        options.setdefault("record_trace", policy.record_trace)
        options.setdefault("backend", backend)
        parallel = policy.parallel
        if parallel is not None:
            options.setdefault("pool", self._get_pool(policy))
            options.setdefault("roots_per_task", parallel.roots_per_task)
            options.setdefault("tasks_per_round",
                               parallel.tasks_per_round)
            options.setdefault("streamed", parallel.streamed)
        # A sampler_options override may pick a different backend than
        # the policy; report what the sampler actually ran.
        sampler_backend = resolve_backend(options["backend"], query.process)
        return options, backend, sampler_backend

    @staticmethod
    def _mlss_class(method: str):
        return SMLSSSampler if method == "smlss" else GMLSSSampler

    def _build_sampler(self, query: DurabilityQuery,
                       policy: ExecutionPolicy,
                       partition: Optional[LevelPartition]):
        """One construction path for every method and backend.

        Returns ``(sampler, resolved_backend, extra_details)`` — builds
        options, resolves the plan and picks the sampler class, so no
        per-method branch repeats the boilerplate.
        """
        options, backend, sampler_backend = self._sampler_options(
            query, policy)
        if policy.method == "srs":
            return SRSSampler(**options), sampler_backend, {}

        plan, search_details, cache_status, cache_origin = \
            self._resolve_plan(query, partition, policy, backend)
        extra = {}
        if search_details is not None:
            extra["plan_search"] = search_details
        if cache_status is not None:
            extra["plan_cache"] = cache_status
        if partition is not None:
            extra["plan_source"] = "explicit"
        elif cache_status == "hit":
            # A hit on a store-hydrated entry is the persistence layer
            # paying off — report it as its own source so restarts are
            # observable; warmed/search-born entries stay "cache".
            extra["plan_source"] = ("store" if cache_origin == "store"
                                    else "cache")
            extra["plan_origin"] = cache_origin
        else:
            extra["plan_source"] = "search"
        sampler = self._mlss_class(policy.method)(
            plan, ratio=policy.ratio, **options)
        return sampler, sampler_backend, extra

    def _resolve_plan(self, query: DurabilityQuery,
                      partition: Optional[LevelPartition],
                      policy: ExecutionPolicy, backend: str):
        """Plan precedence from :func:`resolve_plan`, plus the cache.

        With :attr:`ExecutionPolicy.parallel` set, plan search (greedy
        candidate trials, balanced pilots) shards over the engine's
        persistent pool — the cold-query path parallelizes along with
        the sampling it feeds.
        """
        cache = self.plan_cache if policy.use_plan_cache else None
        return resolve_plan(
            query, partition, policy.num_levels, policy.ratio,
            policy.trial_steps, policy.seed, backend=backend,
            plan_cache=cache, pool=self._get_pool(policy))

    def warm_plan(self, query: DurabilityQuery,
                  policy: Optional[ExecutionPolicy] = None,
                  thresholds=None, **overrides) -> dict:
        """Resolve (and memoize) a query's level plan without sampling.

        The proactive warmer's entry point: runs exactly the plan
        resolution a future :meth:`answer` (or, with ``thresholds``, a
        curve-aware :meth:`durability_curve`) would run — same policy,
        same seed, same cache kind — so the warmed plan is the very
        plan the on-path search would have found, and the later answer
        is byte-identical to the cold-search one.  A freshly learned
        plan is retagged ``origin="warmed"`` (and, with a persistent
        store attached to the cache, written through).

        Returns a report dict: ``warmable`` (False for SRS policies,
        disabled caches, grids that need no search), ``cache_status``,
        ``origin``, ``search_steps`` spent, and the cache ``kind``.
        """
        policy = self._resolve_policy(policy, overrides)
        if policy.method == "srs":
            return {"warmable": False, "reason": "srs_needs_no_plan",
                    "search_steps": 0}
        if not policy.use_plan_cache:
            return {"warmable": False, "reason": "plan_cache_disabled",
                    "search_steps": 0}
        target = query
        grid = None
        if thresholds:
            betas, levels = threshold_grid(thresholds)
            target = query.with_threshold(betas[-1])
            initial_value = target.initial_value()
            if any(level <= initial_value and level < 1.0
                   for level in levels):
                return {"warmable": False, "reason": "unservable_grid",
                        "search_steps": 0}
            interior = tuple(levels[:-1])
            if (policy.num_levels is None
                    or policy.num_levels <= len(interior) + 1):
                # The read-out grid *is* the plan — nothing to search,
                # nothing worth persisting.
                return {"warmable": False, "reason": "grid_is_plan",
                        "search_steps": 0}
            grid = interior
        backend = resolve_backend(policy.backend, target.process)
        kind = plan_kind(policy.num_levels, grid)
        _, search_details, cache_status, origin = resolve_plan(
            target, None, policy.num_levels, policy.ratio,
            policy.trial_steps, policy.seed, backend=backend,
            plan_cache=self.plan_cache, pool=self._get_pool(policy),
            grid=grid)
        search_steps = (search_details or {}).get("search_steps", 0)
        if cache_status == "miss":
            self.plan_cache.retag(target, kind, "warmed")
            origin = "warmed"
            if search_details is None:
                # Balanced pilots are not step-metered; charge the
                # trial budget so sweep accounting stays conservative.
                search_steps = policy.trial_steps
        return {"warmable": True, "kind": kind,
                "cache_status": cache_status, "origin": origin,
                "search_steps": int(search_steps)}

    # ------------------------------------------------------------------
    # Threshold grids: one pass, many answers
    # ------------------------------------------------------------------

    def durability_curve(self, query: DurabilityQuery, thresholds,
                         policy: Optional[ExecutionPolicy] = None,
                         **overrides) -> DurabilityCurve:
        """Answer ``Pr[z >= beta_j within the horizon]`` for a whole grid.

        One simulation pass covers every threshold: under SRS each path
        records its running maximum score, under MLSS the normalized
        grid *is* the level partition and the answers are the prefix
        products of the splitting decomposition.  The pass costs about
        as much as a single run against the hardest threshold — not
        ``K`` runs — at matched per-threshold accuracy (estimates share
        paths, so they are correlated across thresholds but
        individually unbiased).

        ``query`` must be a threshold query (its ``value_function`` a
        :class:`ThresholdValueFunction`); its own ``beta`` is ignored in
        favour of the grid.  MLSS methods additionally need every
        normalized threshold to exceed the initial state's score — use
        ``method="srs"`` for grids that straddle the starting value.
        Convergence traces (``record_trace``) are not recorded for
        curve passes.
        """
        policy = self._resolve_policy(policy, overrides)
        recording = self._record_start()
        try:
            curve = self._curve_impl(query, thresholds, policy)
            if recording:
                self._record_arrival(query, grid=curve.thresholds,
                                     details=curve.details)
            return curve
        finally:
            if recording:
                self._record_end()

    def _curve_impl(self, query: DurabilityQuery, thresholds,
                    policy: ExecutionPolicy) -> DurabilityCurve:
        """The curve pass behind :meth:`durability_curve` (resolved
        policy, no workload recording)."""
        if not isinstance(query.value_function, ThresholdValueFunction):
            raise TypeError(
                "durability_curve needs a threshold query (value_function "
                f"must be a ThresholdValueFunction, got "
                f"{type(query.value_function).__name__})"
            )
        betas, levels = threshold_grid(thresholds)
        base_query = query.with_threshold(betas[-1])
        options, backend, sampler_backend = self._sampler_options(
            query, policy)

        if policy.method == "srs":
            curve = SRSSampler(**options).run_curve(
                base_query, levels, thresholds=betas,
                quality=policy.quality, max_steps=policy.max_steps,
                max_roots=policy.max_roots, seed=policy.seed)
        else:
            initial_value = base_query.initial_value()
            blocked = [beta for beta, level in zip(betas, levels)
                       if level <= initial_value and level < 1.0]
            if blocked:
                raise UnservableGridError(
                    f"thresholds {blocked} normalize to at most the "
                    f"initial state's value {initial_value:.4g}; MLSS "
                    f"boundaries must exceed it — drop them or use "
                    f"method='srs'"
                )
            interior = tuple(levels[:-1])
            partition = LevelPartition(interior)
            plan_source = "grid"
            cache_status = None
            cache_origin = None
            if (policy.num_levels is not None
                    and policy.num_levels > len(interior) + 1):
                # Curve-aware plan: the policy asks for more levels than
                # the read-out grid alone provides, so the balanced
                # pilot places the extra boundaries into the survival
                # gaps *between* grid levels (grid-shaped cache keys —
                # see resolve_plan).  The grid itself always survives,
                # so every read-out level stays a boundary.
                cache = self.plan_cache if policy.use_plan_cache else None
                partition, _, cache_status, cache_origin = resolve_plan(
                    base_query, None, policy.num_levels, policy.ratio,
                    policy.trial_steps, policy.seed, backend=backend,
                    plan_cache=cache, pool=self._get_pool(policy),
                    grid=interior)
                plan_source = "curve_aware"
            sampler = self._mlss_class(policy.method)(
                partition, ratio=policy.ratio, **options)
            if partition.boundaries != interior:
                curve = self._run_refined_curve(sampler, base_query,
                                                betas, levels, policy)
            else:
                curve = sampler.run_curve(
                    base_query, thresholds=betas, quality=policy.quality,
                    max_steps=policy.max_steps,
                    max_roots=policy.max_roots, seed=policy.seed)
            curve.details["plan_source"] = plan_source
            if cache_status is not None:
                curve.details["plan_cache"] = cache_status
            if cache_status == "hit" and cache_origin is not None:
                curve.details["plan_origin"] = cache_origin
        curve.details["backend"] = sampler_backend
        return curve

    def _run_refined_curve(self, sampler, base_query, betas, levels,
                           policy: ExecutionPolicy) -> DurabilityCurve:
        """Run a refined (curve-aware) plan and subset to the grid.

        The sampler's partition holds the read-out grid *plus*
        refinement boundaries; one forest answers all of them at once.
        Refinement boundaries get raw-threshold labels of ``level ×
        top`` for the intermediate curve, then only the requested
        grid's estimates are kept — callers never see the refinement
        levels, they only pay (and benefit from) their splitting.
        """
        label = dict(zip(levels, betas))
        top = betas[-1]
        full_labels = tuple(label.get(b, b * top)
                            for b in sampler.partition.boundaries) + (top,)
        full = sampler.run_curve(
            base_query, thresholds=full_labels, quality=policy.quality,
            max_steps=policy.max_steps, max_roots=policy.max_roots,
            seed=policy.seed)
        kept = [(label[level], level, estimate)
                for level, estimate in zip(full.levels, full.estimates)
                if level in label]
        return DurabilityCurve(
            thresholds=tuple(beta for beta, _, _ in kept),
            levels=tuple(level for _, level, _ in kept),
            estimates=tuple(estimate for _, _, estimate in kept),
            method=full.method, n_roots=full.n_roots, steps=full.steps,
            elapsed_seconds=full.elapsed_seconds,
            details=dict(full.details))

    # ------------------------------------------------------------------
    # Batches: cohort grouping + shared passes
    # ------------------------------------------------------------------

    @staticmethod
    def _z_identity(z):
        """A stable-ish identity for a state evaluation ``z``.

        Delegates to :func:`repro.engine.cache._callable_identity` (the
        single home of the named-function-vs-object-identity logic):
        named plain functions — the staticmethod ``z`` evaluations
        every substrate ships — are identified symbolically, so two
        instances of one family share it; lambdas, closures and bound
        methods fall back to object identity, trading sharing for
        never conflating genuinely different scores.
        """
        return _callable_identity(z)

    @classmethod
    def _cohort_key(cls, query: DurabilityQuery):
        """Grouping key: queries differing only in threshold — or only
        in threshold *and* same-family process parameters — share it.

        ``None`` means the query cannot join a cohort (non-threshold
        value function).  The process component is **structural**: a
        fusible process contributes its
        :meth:`~repro.processes.base.StochasticProcess.fusion_key`, so
        a fleet of per-entity GBM/AR/queue parameterisations lands in
        one cohort; non-fusible processes fall back to object identity,
        which still groups "the same model, many thresholds".
        """
        value_fn = query.value_function
        if not isinstance(value_fn, ThresholdValueFunction):
            return None
        fusion = query.process.fusion_key()
        process_key = (("family",) + fusion if fusion is not None
                       else ("object", id(query.process)))
        return (process_key, query.horizon, cls._z_identity(value_fn.z))

    @staticmethod
    def _process_digest(process):
        """A repr-stable digest of a process *instance* for seeding.

        Class path plus every scalar (and tuple-of-scalar) public
        attribute, recursing into nested processes — so two same-family
        entities with different parameters derive *different* seed
        streams (identical streams across a fleet would correlate the
        entities' hit indicators and silently inflate the variance of
        fleet-level aggregates).  Complex attributes (matrices, nested
        models) contribute their name only: their content has no
        repr-stable form, and colliding streams across genuinely
        different complex processes costs correlation, not bias.
        """
        params = []
        for name in sorted(vars(process)):
            if name.startswith("_"):
                continue
            value = vars(process)[name]
            if isinstance(value, (int, float, str, bool, type(None))):
                params.append((name, value))
            elif isinstance(value, tuple) and all(
                    isinstance(v, (int, float, str, bool, type(None)))
                    for v in value):
                params.append((name, value))
            elif isinstance(value, StochasticProcess):
                params.append(
                    (name, DurabilityEngine._process_digest(value)))
            else:
                params.append((name, "@opaque"))
        return (type(process).__module__, type(process).__qualname__,
                tuple(params))

    @classmethod
    def _seed_material(cls, query: DurabilityQuery):
        """Structural digest of a query for content-derived seeding.

        Built from the process instance's parameter digest, horizon,
        state evaluation and threshold — everything that identifies
        *what* is asked, and nothing that identifies *where in a
        batch* it was asked.  See :meth:`ExecutionPolicy.derive_seed`.
        """
        value_fn = query.value_function
        if isinstance(value_fn, ThresholdValueFunction):
            z_part = cls._z_identity(value_fn.z)
            beta = value_fn.beta
        else:
            z_part = cls._z_identity(value_fn)
            beta = None
        return (cls._process_digest(query.process), query.horizon,
                z_part, beta)

    def answer_batch(self, queries: Sequence[DurabilityQuery],
                     policy: Optional[ExecutionPolicy] = None,
                     **overrides) -> list:
        """Answer many queries, sharing work wherever possible.

        Compatible queries — same horizon and state evaluation ``z``,
        thresholds free to differ — form *cohorts*:

        * members over the **same process object** are answered by one
          :meth:`durability_curve` pass (one shared simulation through
          the vectorized backend);
        * members over **different processes of one fusible family**
          (``policy.fuse``, SRS screening) are answered by one *fused*
          pass — the whole fleet advances through a single
          :class:`~repro.processes.base.FusedBatch` frontier, one
          ``step_batch`` per time step, with per-entity parameters and
          thresholds broadcast per row (see
          :func:`repro.core.fleet.screen_fleet`).

        Remaining queries run individually, still sharing the engine's
        plan cache.  Returns estimates in input order; cohort members
        carry ``details["cohort_size"]`` and a ``details["cohort_id"]``
        identifying their shared pass (fused members additionally
        ``details["fused"]``).

        Per-query seeds are derived deterministically from
        ``policy.seed`` and the query's *structure* (process family,
        horizon, evaluation, threshold) — never its batch position — so
        a query's answer does not depend on what else happened to be in
        the batch or in what order.
        """
        policy = self._resolve_policy(policy, overrides)
        queries = list(queries)
        recording = self._record_start()
        try:
            results = self._answer_batch_impl(queries, policy)
            if recording:
                for query, estimate in zip(queries, results):
                    self._record_arrival(
                        query, details=getattr(estimate, "details", None))
            return results
        finally:
            if recording:
                self._record_end()

    def _answer_batch_impl(self, queries, policy) -> list:
        """Cohort grouping + dispatch behind :meth:`answer_batch`."""
        results: list = [None] * len(queries)

        groups: dict = {}
        for index, query in enumerate(queries):
            key = self._cohort_key(query)
            if key is None:
                self._answer_single(queries, results, index, policy)
                continue
            groups.setdefault(key, []).append(index)

        # One id per actual shared pass (curve or fused frontier), so
        # details["cohort_id"] uniquely attributes simulation work.
        cohort_ids = itertools.count()
        for members in groups.values():
            if len(members) < 2:
                for index in members:
                    self._answer_single(queries, results, index, policy)
                continue
            distinct = {id(queries[index].process) for index in members}
            if len(distinct) == 1:
                self._answer_cohort(queries, results, members, policy,
                                    next(cohort_ids))
            elif self._can_fuse(queries, members, policy):
                self._answer_fleet(queries, results, members, policy,
                                   next(cohort_ids))
            elif self._can_fuse_mlss(policy):
                self._answer_fleet_mlss(queries, results, members, policy,
                                        cohort_ids)
            else:
                # Same family but fusion unavailable for this policy:
                # regroup per process object (the pre-fusion cohorts).
                self._answer_by_process(queries, results, members, policy,
                                        cohort_ids)
        return results

    def _answer_single(self, queries, results, index, policy) -> None:
        query = queries[index]
        member_policy = policy.replace(
            seed=policy.derive_seed(self._seed_material(query)))
        results[index] = self.answer(query, policy=member_policy)

    @staticmethod
    def _can_fuse(queries, members, policy: ExecutionPolicy) -> bool:
        """Fused screening applies to SRS passes on batched backends.

        The fused frontier is an SRS pass (per-entity plans for MLSS
        over *different* initial values are out of scope), and an
        explicit ``backend="scalar"`` request is honoured by not
        fusing.  The cohort key already guarantees the members share a
        non-None fusion key.
        """
        return (policy.fuse and policy.method == "srs"
                and policy.backend != "scalar")

    @staticmethod
    def _can_fuse_mlss(policy: ExecutionPolicy) -> bool:
        """Fused *splitting-forest* screening for rare-event fleets.

        Needs an explicit shared plan shape (``policy.num_levels`` —
        the fleet shares one normalized partition; per-entity plan
        search over a fused forest is out of scope) and the g-MLSS
        estimator (its per-member folds need no per-member no-skipping
        guarantees).
        """
        return (policy.fuse and policy.method == "gmlss"
                and policy.backend != "scalar"
                and policy.num_levels is not None)

    def _answer_by_process(self, queries, results, members, policy,
                           cohort_ids) -> None:
        """Per-process-object sub-cohorts of one structural group.

        Each sub-cohort is its own shared pass, so each draws its own
        id from the batch-wide ``cohort_ids`` counter.
        """
        by_process: dict = {}
        for index in members:
            by_process.setdefault(id(queries[index].process),
                                  []).append(index)
        for sub_members in by_process.values():
            if len(sub_members) < 2:
                for index in sub_members:
                    self._answer_single(queries, results, index, policy)
            else:
                self._answer_cohort(queries, results, sub_members, policy,
                                    next(cohort_ids))

    def _answer_cohort(self, queries, results, members, policy,
                       cohort_id) -> None:
        """One shared curve pass for a group of same-process queries."""
        betas = {}
        for index in members:
            beta = queries[index].value_function.beta
            betas.setdefault(beta, []).append(index)
        lead = queries[members[0]]
        cohort_policy = policy.replace(seed=policy.derive_seed(
            (self._seed_material(lead.with_threshold(max(betas))),
             tuple(sorted(betas)))))
        try:
            curve = self.durability_curve(
                lead, sorted(betas), policy=cohort_policy)
        except UnservableGridError:
            # MLSS grids that straddle the initial value fall back to
            # individual answers (which surface each member's own
            # error, if any); other errors propagate unmasked.
            for index in members:
                self._answer_single(queries, results, index, policy)
            return
        for beta, indices in betas.items():
            shared = curve.estimate_at(beta)
            for index in indices:
                # Each member gets its own estimate object (and details
                # dict), so callers can tag results independently; the
                # details schema matches individually-answered queries.
                estimate = dataclasses.replace(
                    shared, details=dict(shared.details))
                estimate.details["backend"] = curve.details["backend"]
                estimate.details["cohort_size"] = len(members)
                estimate.details["cohort_id"] = cohort_id
                results[index] = estimate

    def _fleet_pool_options(self, policy: ExecutionPolicy) -> dict:
        """Pool keywords shared by every fused fleet entry point."""
        parallel = policy.parallel
        if parallel is None:
            return {}
        return {"pool": self._get_pool(policy),
                "members_per_task": parallel.members_per_task}

    def _answer_fleet(self, queries, results, members, policy,
                      cohort_id) -> None:
        """One fused screening pass for same-family, multi-process
        members (see :func:`repro.core.fleet.screen_fleet`)."""
        fleet = [queries[index] for index in members]
        fused = FusedBatch([query.process for query in fleet])
        betas = [query.value_function.beta for query in fleet]
        seed = policy.derive_seed(
            (fused.key, fleet[0].horizon,
             self._z_identity(fleet[0].value_function.z),
             tuple(sorted(betas))))
        options = dict(policy.sampler_options or {})
        estimates = screen_fleet(
            fused, fleet[0].value_function.z, betas, fleet[0].horizon,
            quality=policy.quality, max_steps=policy.max_steps,
            max_roots=policy.max_roots,
            batch_roots=options.get("batch_roots", 500), seed=seed,
            **self._fleet_pool_options(policy))
        for index, estimate in zip(members, estimates):
            estimate.details["backend"] = "vectorized"
            estimate.details["cohort_size"] = len(members)
            estimate.details["cohort_id"] = cohort_id
            results[index] = estimate

    def _answer_fleet_mlss(self, queries, results, members, policy,
                           cohort_ids) -> None:
        """Clustered fused *splitting-forest* passes for a rare-event fleet.

        Members are clustered by normalized initial score
        (:func:`~repro.core.fleet.cluster_members_by_initial`): each
        cluster runs its own fused forest under a normalized uniform
        plan with ``policy.num_levels`` levels, pruned against only
        *its* worst member — so a member far below the fleet's worst
        keeps its lower ladder instead of inheriting a stripped shared
        plan.  Plans only change efficiency, never bias (Proposition
        2), so clustering is always sound.  Root allocation inside each
        forest is variance-directed per member
        (``sampler_options["adaptive"]``, default True).  Clusters
        whose plan degenerates (a member already at/above a boundary's
        reach) fall back to per-process answers.
        """
        fleet = [queries[index] for index in members]
        betas = [query.value_function.beta for query in fleet]
        z = fleet[0].value_function.z
        fused_all = FusedBatch([query.process for query in fleet])
        rows = fused_all.initial_states(fused_all.n_members)
        scores = FleetThresholdValue(z, betas).batch(rows, 0)
        options = dict(policy.sampler_options or {})
        clusters = cluster_members_by_initial(
            scores.tolist(), tolerance=options.get("cluster_tolerance",
                                                   0.1))
        for cluster_index, local in enumerate(clusters):
            cluster_members = [members[i] for i in local]
            cluster_fleet = [fleet[i] for i in local]
            cluster_betas = [betas[i] for i in local]
            fused = FusedBatch(
                [query.process for query in cluster_fleet])
            initial = float(max(scores[i] for i in local))
            partition = uniform_partition(policy.num_levels) \
                .pruned_above(initial)
            # Seeds stay structural: a cluster's stream depends on what
            # it contains, never on batch position or sibling clusters.
            seed = policy.derive_seed(
                (fused.key, cluster_fleet[0].horizon,
                 self._z_identity(z), tuple(sorted(cluster_betas)),
                 "mlss"))
            try:
                estimates = screen_fleet_mlss(
                    fused, z, cluster_betas, partition,
                    cluster_fleet[0].horizon,
                    ratio=policy.ratio, quality=policy.quality,
                    max_steps=policy.max_steps,
                    max_roots=policy.max_roots,
                    batch_roots=options.get("batch_roots", 100),
                    bootstrap_rounds=options.get("bootstrap_rounds", 200),
                    seed=seed, adaptive=options.get("adaptive", True),
                    **self._fleet_pool_options(policy))
            except LevelPlanError:
                self._answer_by_process(queries, results,
                                        cluster_members, policy,
                                        cohort_ids)
                continue
            cohort_id = next(cohort_ids)
            for index, estimate in zip(cluster_members, estimates):
                estimate.details["backend"] = "vectorized"
                estimate.details["cohort_size"] = len(cluster_members)
                estimate.details["cohort_id"] = cohort_id
                estimate.details["fleet_cluster"] = cluster_index
                estimate.details["fleet_clusters"] = len(clusters)
                estimate.details["plan_source"] = "uniform"
                results[index] = estimate

    # ------------------------------------------------------------------
    # Fleet curves: every member's whole grid, one fused pass
    # ------------------------------------------------------------------

    @staticmethod
    def _normalize_curve_grids(queries, thresholds) -> list:
        """Per-query raw grids from a shared grid or per-query grids."""
        thresholds = list(thresholds)
        if thresholds and all(hasattr(grid, "__iter__")
                              and not isinstance(grid, str)
                              for grid in thresholds):
            if len(thresholds) != len(queries):
                raise ValueError(
                    f"{len(thresholds)} threshold grids for "
                    f"{len(queries)} queries")
            grids = thresholds
        else:
            grids = [thresholds] * len(queries)
        return validate_grids(grids, len(queries))

    def durability_curves(self, queries: Sequence[DurabilityQuery],
                          thresholds,
                          policy: Optional[ExecutionPolicy] = None,
                          **overrides) -> list:
        """Whole durability curves for many queries, fused when possible.

        ``thresholds`` is either one ascending raw grid shared by every
        query or a sequence of per-query grids (one per query; lengths
        may differ).  Queries over *different processes of one fusible
        family* (SRS method, batched backend, ``policy.fuse``) are
        answered by a single fused running-maxima pass —
        :func:`repro.core.fleet.screen_fleet_curves` — in which every
        member's whole grid rides the shared frontier; everything else
        falls back to per-query :meth:`durability_curve` passes.
        Returns one :class:`DurabilityCurve` per query, in input order;
        fused members carry ``details["cohort_id"]`` /
        ``details["cohort_size"]``.

        Seeds derive from query structure plus grid, so answers are
        independent of batch composition and order.
        """
        policy = self._resolve_policy(policy, overrides)
        queries = list(queries)
        for query in queries:
            if not isinstance(query.value_function,
                              ThresholdValueFunction):
                raise TypeError(
                    "durability_curves needs threshold queries "
                    "(value_function must be a ThresholdValueFunction, "
                    f"got {type(query.value_function).__name__})"
                )
        grids = self._normalize_curve_grids(queries, thresholds)
        recording = self._record_start()
        try:
            results = self._curves_impl(queries, grids, policy)
            if recording:
                for query, grid, curve in zip(queries, grids, results):
                    self._record_arrival(
                        query, grid=grid,
                        details=getattr(curve, "details", None))
            return results
        finally:
            if recording:
                self._record_end()

    def _curves_impl(self, queries, grids, policy) -> list:
        """Fused-vs-single dispatch behind :meth:`durability_curves`."""
        results: list = [None] * len(queries)

        groups: dict = {}
        for index, query in enumerate(queries):
            groups.setdefault(self._cohort_key(query), []).append(index)

        cohort_ids = itertools.count()
        for members in groups.values():
            distinct = {id(queries[index].process) for index in members}
            if (len(members) >= 2 and len(distinct) == len(members)
                    and self._can_fuse(queries, members, policy)):
                self._curves_fleet(queries, grids, results, members,
                                   policy, next(cohort_ids))
            else:
                for index in members:
                    self._curve_single(queries, grids, results, index,
                                       policy)
        return results

    def _curve_single(self, queries, grids, results, index,
                      policy) -> None:
        query = queries[index]
        member_policy = policy.replace(seed=policy.derive_seed(
            (self._seed_material(query.with_threshold(grids[index][-1])),
             grids[index])))
        results[index] = self.durability_curve(query, grids[index],
                                               policy=member_policy)

    def _curves_fleet(self, queries, grids, results, members, policy,
                      cohort_id) -> None:
        """One fused running-maxima pass answering every member's grid."""
        fleet = [queries[index] for index in members]
        fused = FusedBatch([query.process for query in fleet])
        member_grids = [grids[index] for index in members]
        z = fleet[0].value_function.z
        seed = policy.derive_seed(
            (fused.key, fleet[0].horizon, self._z_identity(z),
             tuple(member_grids), "curves"))
        options = dict(policy.sampler_options or {})
        curves = screen_fleet_curves(
            fused, z, member_grids, fleet[0].horizon,
            quality=policy.quality, max_steps=policy.max_steps,
            max_roots=policy.max_roots,
            batch_roots=options.get("batch_roots", 500), seed=seed,
            **self._fleet_pool_options(policy))
        for index, curve in zip(members, curves):
            curve.details["backend"] = "vectorized"
            curve.details["cohort_size"] = len(members)
            curve.details["cohort_id"] = cohort_id
            results[index] = curve
