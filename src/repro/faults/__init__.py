"""Deterministic fault injection for resilience testing.

Faults here are *schedules*, not probabilities: a
:class:`~repro.faults.plan.FaultPlan` names the exact call indices at
which each fault site fires (worker kills at dispatch, task delays,
plan-store write failures, transient serve errors), so every injected
run is reproducible and every test can assert precisely what happened.
:func:`~repro.faults.plan.inject` installs a plan into the hooked
modules for the duration of a ``with`` block.
"""

from .plan import SITES, FaultPlan, InjectedFault, inject

__all__ = ["SITES", "FaultPlan", "InjectedFault", "inject"]
