"""Deterministic fault schedules and their injection hooks.

A :class:`FaultPlan` is a *schedule*, not a probability: each fault
site carries an explicit set of 0-based call indices at which to fire.
The i-th time a site is consulted, the plan either injects (index in
the schedule) or does nothing — so two runs with the same plan and the
same call sequence inject the same faults at the same points, and a
test can assert exactly what was injected (:attr:`FaultPlan.fired`).

Sites
-----
``pool.dispatch``
    Consulted by :class:`~repro.core.pool.WorkerPool` in the parent,
    right after handing a task to a worker.  Scheduled indices SIGKILL
    that worker (:meth:`WorkerPool.kill_worker`) — mid-round worker
    death, the supervisor's recovery path.  Thread/inline pools have
    no killable process; the kill is skipped (and not counted).
``pool.task``
    Consulted inside the executing worker before running a task.
    Scheduled indices sleep ``delay_seconds`` — a straggler, which
    exercises deadline handling without wall-clock assertions.
``store.write``
    Consulted by :meth:`~repro.db.plan_store.PlanStore.save` inside
    its transaction.  Scheduled indices raise ``sqlite3.OperationalError``
    — the store must soft-fail (count, return False), never crash the
    answer path.
``serve.request``
    Consulted by the serving tier before routing a data-plane request.
    Scheduled indices raise :class:`InjectedFault`; the server turns
    it into a structured 503 ``transient`` reply with ``Retry-After``
    — never a protocol error — which retrying clients must absorb.

Use :func:`inject` to install a plan into every hooked module for the
duration of a ``with`` block:

    plan = FaultPlan(worker_kills=(2, 5))
    with inject(plan):
        estimate = sampler.run(query, n_roots=600, seed=7)
    assert plan.fired["pool.dispatch"] == 2

Schedules can also be drawn from a seed (:meth:`FaultPlan.seeded`) so
stress harnesses get varied-but-reproducible fault patterns.
"""

from __future__ import annotations

import contextlib
import sqlite3
import threading
import time

import numpy as np

#: The four hook sites, in the order seeded schedules draw them.
SITES = ("pool.dispatch", "pool.task", "store.write", "serve.request")


class InjectedFault(Exception):
    """A deliberately injected transient failure (serve.request site)."""


class FaultPlan:
    """A deterministic, thread-safe schedule of faults per site.

    Parameters
    ----------
    worker_kills / task_delays / store_write_errors / serve_errors:
        Iterables of 0-based call indices at which the corresponding
        site injects (see module docstring for what each site does).
    delay_seconds:
        Sleep length for ``pool.task`` delay injections.
    """

    def __init__(self, worker_kills=(), task_delays=(),
                 store_write_errors=(), serve_errors=(),
                 delay_seconds: float = 0.05):
        if delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {delay_seconds}")
        self.schedule = {
            "pool.dispatch": frozenset(int(i) for i in worker_kills),
            "pool.task": frozenset(int(i) for i in task_delays),
            "store.write": frozenset(int(i) for i in store_write_errors),
            "serve.request": frozenset(int(i) for i in serve_errors),
        }
        for site, indices in self.schedule.items():
            if any(index < 0 for index in indices):
                raise ValueError(
                    f"{site} schedule has a negative index: "
                    f"{sorted(indices)}")
        self.delay_seconds = delay_seconds
        #: Calls seen per site (every consultation, injected or not).
        self.calls = {site: 0 for site in SITES}
        #: Faults actually injected per site.
        self.fired = {site: 0 for site in SITES}
        # Sites are consulted from many threads (pool parent thread,
        # worker threads in thread mode, serve executor threads), so
        # the counters need a lock.  Process-mode workers consult a
        # *copy* of the plan (fork) or none at all (spawn re-imports
        # with hooks unset) — only parent-side counters are observable
        # either way, which is why kills and store/serve faults (all
        # parent-side) are the sites tests assert on.
        self._lock = threading.Lock()

    @classmethod
    def seeded(cls, seed: int, calls_per_site: int = 32,
               rate: float = 0.1, delay_seconds: float = 0.05
               ) -> "FaultPlan":
        """Draw one schedule per site from a seeded generator.

        Each site gets ``round(rate * calls_per_site)`` distinct
        indices in ``[0, calls_per_site)``.  Same seed, same plan —
        reproducible stress runs without hand-written schedules.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        rng = np.random.default_rng(seed)
        count = int(round(rate * calls_per_site))
        picks = [sorted(int(i) for i in
                        rng.choice(calls_per_site, size=count,
                                   replace=False))
                 if count else []
                 for _ in SITES]
        return cls(worker_kills=picks[0], task_delays=picks[1],
                   store_write_errors=picks[2], serve_errors=picks[3],
                   delay_seconds=delay_seconds)

    def _step(self, site: str) -> bool:
        """Advance the site's call counter; True when this call fires."""
        with self._lock:
            index = self.calls[site]
            self.calls[site] = index + 1
            fire = index in self.schedule[site]
            if fire:
                self.fired[site] += 1
            return fire

    def hook(self, site: str, **context) -> None:
        """The callable installed at every ``fault_hook`` slot."""
        if site not in self.schedule:
            return
        if site == "pool.dispatch":
            if not self._step(site):
                return
            pool = context["pool"]
            try:
                pool.kill_worker(context["worker_id"])
            except ValueError:
                # Thread/inline pools have no process to kill; undo
                # the fired count so tests can assert exact kills.
                with self._lock:
                    self.fired[site] -= 1
        elif site == "pool.task":
            if self._step(site):
                time.sleep(self.delay_seconds)
        elif site == "store.write":
            if self._step(site):
                raise sqlite3.OperationalError(
                    "injected plan-store write failure")
        elif site == "serve.request":
            if self._step(site):
                raise InjectedFault(
                    f"injected transient serve fault "
                    f"(call {self.calls[site] - 1})")


@contextlib.contextmanager
def inject(plan: FaultPlan):
    """Install ``plan.hook`` at every fault site for a ``with`` block.

    Installs into :mod:`repro.core.pool`, :mod:`repro.db.plan_store`
    and — when it is importable — :mod:`repro.serve.server`; previous
    hooks are restored on exit, exception or not.  Nesting installs
    the innermost plan (hooks do not chain).
    """
    from ..core import pool as pool_module
    from ..db import plan_store as store_module
    try:
        from ..serve import server as server_module
    except ImportError:  # pragma: no cover - serve tier always ships
        server_module = None
    saved = (pool_module.fault_hook, store_module.fault_hook,
             server_module.fault_hook if server_module else None)
    pool_module.fault_hook = plan.hook
    store_module.fault_hook = plan.hook
    if server_module is not None:
        server_module.fault_hook = plan.hook
    try:
        yield plan
    finally:
        pool_module.fault_hook = saved[0]
        store_module.fault_hook = saved[1]
        if server_module is not None:
            server_module.fault_hook = saved[2]
