"""Workload forecasting + proactive plan warming.

The plan cache and plan store make plan search an *amortized* cost;
this subpackage makes it a *background* one.  Three pieces, layered on
the engine (never the other way around):

* :class:`~repro.forecast.log.WorkloadLog` — append-only arrival
  records of query shapes (process family, horizon bucket, threshold
  bucket, grid length), fed by ``DurabilityEngine(workload_log=...)``;
* :class:`~repro.forecast.forecasters.Forecaster` implementations —
  constant / moving-average / linear predictors of next-window
  per-shape arrival counts behind one ``forecast(series)`` interface;
* :class:`~repro.forecast.warmer.PlanWarmer` — ranks forecast shapes
  by predicted arrivals × measured search cost and runs the plan
  search for the top-K uncached ones in idle cycles, budgeted and
  abortable, so the first real query of a predicted shape starts from
  a warm (and, with a store, persisted) plan.
"""

from .forecasters import (FORECASTERS, ConstantForecaster, Forecaster,
                          LastValueForecaster, LinearForecaster,
                          MovingAverageForecaster, make_forecaster)
from .log import QueryShape, WorkloadLog, shape_of
from .warmer import PlanWarmer

__all__ = [
    "FORECASTERS", "ConstantForecaster", "Forecaster",
    "LastValueForecaster", "LinearForecaster", "MovingAverageForecaster",
    "PlanWarmer", "QueryShape", "WorkloadLog", "make_forecaster",
    "shape_of",
]
