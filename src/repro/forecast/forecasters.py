"""Per-shape arrival forecasters behind one uniform interface.

A forecaster answers exactly one question: *given a shape's per-window
arrival series, how many arrivals land in the next window?*  Keeping
the contract that small (``forecast(series) -> float``) lets the
:class:`~repro.forecast.warmer.PlanWarmer` treat prediction as a
pluggable policy, and lets the property tests score every
implementation against the same one-step-ahead baseline.

Three implementations cover the regimes a serving workload actually
shows (cf. the query-time-prediction literature, e.g. arXiv:1408.6589
— simple well-matched estimators beat elaborate mismatched ones):

* :class:`ConstantForecaster` — the all-history mean; optimal for
  stationary arrivals, where every window is an equally good sample.
* :class:`MovingAverageForecaster` — a trailing-window mean; tracks
  bursty/regime-switching arrivals without letting ancient history
  drag the estimate.
* :class:`LinearForecaster` — least-squares trend extrapolation
  (clamped at zero); the only one that can *lead* a ramp instead of
  lagging it.

:class:`LastValueForecaster` is the naive persistence baseline each of
the above must beat-or-match on its own regime.  All are univariate
and per-shape: no cross-shape correlation is modelled (a known limit,
documented in the ROADMAP).
"""

from __future__ import annotations

from typing import Sequence


class Forecaster:
    """Uniform interface: predict next-window arrivals from a series."""

    name = "base"

    def forecast(self, series: Sequence[float]) -> float:
        """Predicted arrival count for the window after ``series``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LastValueForecaster(Forecaster):
    """Naive persistence: the next window looks like the last one."""

    name = "last_value"

    def forecast(self, series: Sequence[float]) -> float:
        return float(series[-1]) if series else 0.0


class ConstantForecaster(Forecaster):
    """The all-history mean — the right answer for stationary arrivals."""

    name = "constant"

    def forecast(self, series: Sequence[float]) -> float:
        if not series:
            return 0.0
        return float(sum(series)) / len(series)


class MovingAverageForecaster(Forecaster):
    """Mean of the trailing ``window`` windows — tracks regime shifts."""

    name = "moving_average"

    def __init__(self, window: int = 8):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)

    def forecast(self, series: Sequence[float]) -> float:
        if not series:
            return 0.0
        tail = series[-self.window:]
        return float(sum(tail)) / len(tail)

    def __repr__(self) -> str:
        return f"MovingAverageForecaster(window={self.window})"


class LinearForecaster(Forecaster):
    """Least-squares trend over the trailing window, extrapolated one
    step and clamped at zero (arrival counts cannot be negative)."""

    name = "linear"

    def __init__(self, window: int = 16):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.window = int(window)

    def forecast(self, series: Sequence[float]) -> float:
        if not series:
            return 0.0
        tail = [float(y) for y in series[-self.window:]]
        n = len(tail)
        if n == 1:
            return max(tail[0], 0.0)
        # Closed-form OLS over x = 0..n-1; predict at x = n.
        x_mean = (n - 1) / 2.0
        y_mean = sum(tail) / n
        ss_xx = sum((i - x_mean) ** 2 for i in range(n))
        ss_xy = sum((i - x_mean) * (y - y_mean)
                    for i, y in enumerate(tail))
        slope = ss_xy / ss_xx
        intercept = y_mean - slope * x_mean
        return max(intercept + slope * n, 0.0)

    def __repr__(self) -> str:
        return f"LinearForecaster(window={self.window})"


FORECASTERS = {
    "constant": ConstantForecaster,
    "moving_average": MovingAverageForecaster,
    "linear": LinearForecaster,
    "last_value": LastValueForecaster,
}


def make_forecaster(name: str, **kwargs) -> Forecaster:
    """Build a forecaster by registry name (the ServeConfig knob)."""
    try:
        cls = FORECASTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown forecaster {name!r}; expected one of "
            f"{sorted(FORECASTERS)}") from None
    return cls(**kwargs)
