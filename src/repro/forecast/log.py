"""The workload log: append-only arrival records of query *shapes*.

Forecasting a durability workload does not need the full queries — it
needs to know *which shapes* arrive and *when*.  A shape
(:class:`QueryShape`) is the same coarse abstraction the plan cache
keys on: process family, horizon bucket, threshold bucket, grid
length.  Two queries of one shape share a level plan, so predicting a
shape's next-window arrival count is exactly the information the
:class:`~repro.forecast.warmer.PlanWarmer` needs to decide which plans
to pre-compute.

:class:`WorkloadLog` is fed by the engine's public entry points
(``DurabilityEngine(workload_log=...)``): one arrival record per query
answered, stamped with arrival time and the measured plan-search cost
that query paid (zero on cache hits).  Per shape it also retains the
most recent *exemplar* — an actual query object (plus its raw
threshold grid, for curves) — because ranking shapes is done on
buckets but *warming* one needs a real query to search a plan for.

Bucketing is pure arithmetic over the record's fields, so the
per-window arrival series a forecaster sees is a set property of the
records: stable under any insertion order (asserted by the property
tests).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.value_functions import DurabilityQuery, ThresholdValueFunction
from ..engine.cache import process_family

#: Quarter-octave log2 bucketing — the same resolution the plan cache
#: uses for thresholds, so one shape maps into one cache neighbourhood.
_BUCKETS_PER_OCTAVE = 4


def _log2_bucket(value: float) -> int:
    return round(math.log2(max(float(value), 1e-12))
                 * _BUCKETS_PER_OCTAVE)


@dataclass(frozen=True)
class QueryShape:
    """The coarse identity of a query for forecasting purposes."""

    family: tuple
    horizon_bucket: int
    threshold_bucket: Optional[int]
    grid_length: int


def shape_of(query: DurabilityQuery, grid=None) -> QueryShape:
    """Map a query (and optional raw threshold grid) to its shape."""
    value_fn = query.value_function
    if isinstance(value_fn, ThresholdValueFunction):
        threshold_bucket = _log2_bucket(value_fn.beta)
    else:
        threshold_bucket = None
    return QueryShape(
        family=process_family(query.process),
        horizon_bucket=_log2_bucket(query.horizon),
        threshold_bucket=threshold_bucket,
        grid_length=len(grid) if grid else 0,
    )


@dataclass(frozen=True)
class _Arrival:
    at: float
    shape: QueryShape
    search_steps: int


class WorkloadLog:
    """Append-only, bounded log of query-shape arrivals.

    Parameters
    ----------
    window_seconds:
        Width of the arrival-count windows forecasters predict over.
    max_records:
        Retention bound; the oldest arrivals fall off first (per-shape
        exemplars and search costs are kept regardless — they are
        state, not history).
    clock:
        Arrival timestamp source (wall time by default; injectable for
        deterministic tests).
    """

    def __init__(self, window_seconds: float = 60.0,
                 max_records: int = 100_000,
                 clock: Callable[[], float] = time.time):
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be > 0, got {window_seconds}")
        if max_records < 1:
            raise ValueError(
                f"max_records must be >= 1, got {max_records}")
        self.window_seconds = float(window_seconds)
        self.max_records = int(max_records)
        self._clock = clock
        self._records: deque = deque(maxlen=self.max_records)
        self._exemplars: dict = {}
        self._search_costs: dict = {}
        self.total_recorded = 0
        self._lock = threading.Lock()

    def now(self) -> float:
        return self._clock()

    def _window(self, at: float) -> int:
        return int(at // self.window_seconds)

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------

    def record(self, query: DurabilityQuery, grid=None,
               at: Optional[float] = None,
               search_steps: int = 0) -> QueryShape:
        """Append one arrival; returns the shape it was filed under.

        ``search_steps`` is the plan-search cost this arrival actually
        paid; the log keeps the most recent *non-zero* cost per shape
        as its measured search cost (later arrivals hit the cache and
        pay zero, which says nothing about what a cold search costs).
        """
        shape = shape_of(query, grid)
        arrival = _Arrival(
            at=self._clock() if at is None else float(at),
            shape=shape, search_steps=int(search_steps))
        with self._lock:
            self._records.append(arrival)
            self.total_recorded += 1
            self._exemplars[shape] = (
                query, tuple(float(g) for g in grid) if grid else None)
            if arrival.search_steps > 0:
                self._search_costs[shape] = arrival.search_steps
        return shape

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------

    def shapes(self) -> list:
        """Every shape with retained state, in first-seen order."""
        with self._lock:
            return list(self._exemplars)

    def exemplar(self, shape: QueryShape):
        """The latest ``(query, grid_or_None)`` seen for a shape."""
        with self._lock:
            return self._exemplars.get(shape)

    def search_cost(self, shape: QueryShape, default: int = 0) -> int:
        """Most recent measured plan-search cost for a shape."""
        with self._lock:
            return self._search_costs.get(shape, default)

    def series(self, shape: QueryShape,
               until: Optional[float] = None) -> list:
        """Per-window arrival counts for one shape.

        Runs from the shape's first retained arrival through ``until``
        (default: the latest arrival in the whole log), with explicit
        zeros for empty windows — a forecaster must see the silence
        between bursts.  Pure set arithmetic over the records, so the
        result is independent of insertion order.
        """
        with self._lock:
            records = list(self._records)
        mine = [record for record in records if record.shape == shape]
        if not mine:
            return []
        first = min(self._window(record.at) for record in mine)
        if until is None:
            last = max(self._window(record.at) for record in records)
        else:
            last = self._window(float(until))
        counts = [0] * max(last - first + 1, 0)
        for record in mine:
            index = self._window(record.at) - first
            if 0 <= index < len(counts):
                counts[index] += 1
        return counts

    def arrivals_since(self, at: float) -> dict:
        """``{shape: count}`` of arrivals at or after a timestamp."""
        with self._lock:
            records = list(self._records)
        seen: dict = {}
        for record in records:
            if record.at >= at:
                seen[record.shape] = seen.get(record.shape, 0) + 1
        return seen

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def stats(self) -> dict:
        with self._lock:
            return {
                "records": len(self._records),
                "total_recorded": self.total_recorded,
                "shapes": len(self._exemplars),
                "window_seconds": self.window_seconds,
                "max_records": self.max_records,
            }

    def __repr__(self) -> str:
        return (f"WorkloadLog(records={len(self)}, "
                f"shapes={len(self._exemplars)}, "
                f"window_seconds={self.window_seconds})")
