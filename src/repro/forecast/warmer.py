"""The proactive plan warmer: spend idle cycles on tomorrow's queries.

The plan cache (and, through its store, the plan *database*) is
reactive: a plan exists because some query already paid the search for
it.  :class:`PlanWarmer` closes the loop with the workload log — it
forecasts which shapes arrive in the next window, ranks them by
``predicted arrivals × measured search cost`` (the step budget a warm
plan saves), and runs the plan search for the top-K *uncached* shapes
before any query needs them.

Warming goes through :meth:`DurabilityEngine.warm_plan` — exactly the
resolution a live query would run, same policy and seed — so a warmed
answer is byte-identical to the cold-search answer it replaces, and
write-through persistence applies when the cache has a store.

A sweep is built to lose every race against real traffic:

* **idle-gated** — ``idle_check`` (the serving tier wires the
  admission controller's "nothing in flight, nothing queued") is
  consulted before the sweep and again between shapes; traffic
  arriving mid-sweep aborts it after the current shape;
* **budgeted** — at most ``step_budget`` simulation steps per sweep,
  measured in the same hardware-independent step units as everything
  else;
* **single-flighted** — a sweep that finds another in progress skips;
* **abortable** — :meth:`abort` (server shutdown) stops the sweep at
  the next shape boundary.

Forecast accuracy is scored online: each sweep records the set of
shapes it predicted hot, and the next sweep checks which of them
actually arrived — the hit rate lands in :meth:`stats` and therefore
in ``/metrics``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from .forecasters import Forecaster, MovingAverageForecaster
from .log import WorkloadLog


class PlanWarmer:
    """Forecast-driven background plan search over an engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.service.DurabilityEngine` whose
        cache (and store) receives the warmed plans.
    log:
        The :class:`WorkloadLog` the engine feeds.
    forecaster:
        Next-window arrival predictor; trailing-mean by default.
    top_k:
        Maximum plans warmed per sweep.
    step_budget:
        Maximum simulation steps one sweep may spend.
    idle_check:
        Zero-argument callable; False pauses warming (checked before
        the sweep and between shapes).  ``None`` means always idle.
    interval_seconds:
        Minimum spacing between sweeps for :meth:`maybe_sweep`.
    """

    def __init__(self, engine, log: WorkloadLog,
                 forecaster: Optional[Forecaster] = None,
                 top_k: int = 8, step_budget: int = 200_000,
                 idle_check: Optional[Callable[[], bool]] = None,
                 interval_seconds: float = 5.0, enabled: bool = True,
                 clock: Callable[[], float] = time.monotonic):
        self.engine = engine
        self.log = log
        self.forecaster = (forecaster if forecaster is not None
                           else MovingAverageForecaster())
        self.top_k = int(top_k)
        self.step_budget = int(step_budget)
        self.idle_check = idle_check
        self.interval_seconds = float(interval_seconds)
        self.enabled = bool(enabled)
        self._clock = clock
        self._sweep_lock = threading.Lock()
        self._abort = threading.Event()
        self._closed = False
        self._next_allowed = 0.0
        self._predicted: set = set()
        self._last_sweep_wall: Optional[float] = None
        self.plans_warmed = 0
        self.sweep_steps = 0
        self.sweeps = 0
        self.sweeps_skipped = 0
        self.warm_errors = 0
        self.forecast_hits = 0
        self.forecast_misses = 0
        self._last_result: dict = {}

    # ------------------------------------------------------------------
    # Ranking
    # ------------------------------------------------------------------

    def rank(self) -> list:
        """Shapes by descending ``predicted × cost`` warming value.

        Returns ``(shape, predicted_arrivals, search_cost, score)``
        tuples.  Shapes with no measured search cost are charged the
        engine policy's ``trial_steps`` (the floor a cold greedy search
        costs); shapes predicted silent still appear (score 0) so a
        forced sweep can warm them when there is nothing better.
        """
        default_cost = int(self.engine.policy.trial_steps)
        ranked = []
        for shape in self.log.shapes():
            predicted = float(
                self.forecaster.forecast(self.log.series(shape)))
            cost = self.log.search_cost(shape, default=default_cost)
            ranked.append((shape, predicted, cost, predicted * cost))
        ranked.sort(key=lambda item: item[3], reverse=True)
        return ranked

    # ------------------------------------------------------------------
    # Sweeping
    # ------------------------------------------------------------------

    def _score_forecasts(self, wall_now: float) -> None:
        """Grade the previous sweep's predictions against reality."""
        if self._last_sweep_wall is None:
            return
        arrived = self.log.arrivals_since(self._last_sweep_wall)
        for shape in self._predicted:
            if shape in arrived:
                self.forecast_hits += 1
            else:
                self.forecast_misses += 1

    def _idle(self) -> bool:
        if self.idle_check is None:
            return True
        try:
            return bool(self.idle_check())
        except Exception:
            return False

    def sweep(self, force: bool = False) -> dict:
        """Run one warming sweep; returns its report.

        ``force`` bypasses the enabled flag and the idle gate (used by
        tests and the benchmark's explicit warm phase) but never the
        step budget or the single-flight lock.
        """
        if self._closed or (not force and not self.enabled):
            self.sweeps_skipped += 1
            return {"skipped": "disabled"}
        if not self._sweep_lock.acquire(blocking=False):
            self.sweeps_skipped += 1
            return {"skipped": "concurrent_sweep"}
        try:
            return self._sweep_locked(force)
        finally:
            self._sweep_lock.release()

    def _sweep_locked(self, force: bool) -> dict:
        wall_now = self.log.now()
        self._score_forecasts(wall_now)
        ranked = self.rank()
        self._predicted = {shape for shape, predicted, _, _ in ranked
                           if predicted > 0}
        self._last_sweep_wall = wall_now
        warmed = []
        steps = 0
        considered = 0
        aborted = False
        for shape, predicted, cost, score in ranked:
            if len(warmed) >= self.top_k or steps >= self.step_budget:
                break
            if self._abort.is_set() or (not force and not self._idle()):
                aborted = True
                break
            exemplar = self.log.exemplar(shape)
            if exemplar is None:
                continue
            query, grid = exemplar
            considered += 1
            try:
                report = self.engine.warm_plan(query, thresholds=grid)
            except Exception:
                self.warm_errors += 1
                continue
            steps += int(report.get("search_steps", 0))
            if report.get("warmable") and \
                    report.get("cache_status") == "miss":
                warmed.append(shape)
        self.sweeps += 1
        self.plans_warmed += len(warmed)
        self.sweep_steps += steps
        self._last_result = {
            "warmed": len(warmed),
            "considered": considered,
            "steps": steps,
            "aborted": aborted,
            "predicted_hot": len(self._predicted),
        }
        return dict(self._last_result)

    def maybe_sweep(self, submit=None) -> bool:
        """Sweep if enabled, idle, and the interval elapsed.

        The watchdog's entry point: cheap enough to call every sample.
        With ``submit`` (an ``Executor.submit``-shaped callable) the
        sweep runs off-thread — the serving tier must never block its
        event loop on plan search; without it the sweep runs inline.
        Returns True when a sweep was started.
        """
        if self._closed or not self.enabled:
            return False
        now = self._clock()
        if now < self._next_allowed:
            return False
        if not self._idle():
            return False
        if self._sweep_lock.locked():
            return False
        self._next_allowed = now + self.interval_seconds
        if submit is not None:
            submit(self.sweep)
        else:
            self.sweep()
        return True

    # ------------------------------------------------------------------
    # Lifecycle / observability
    # ------------------------------------------------------------------

    def update_config(self, config) -> None:
        """Hot-reload hook for the serve tier's ``warm_*`` knobs."""
        self.enabled = bool(config.warm_enabled)
        self.top_k = int(config.warm_top_k)
        self.step_budget = int(config.warm_step_budget)
        self.interval_seconds = float(config.warm_interval_seconds)
        if self.forecaster.name != config.warm_forecaster:
            from .forecasters import make_forecaster
            self.forecaster = make_forecaster(config.warm_forecaster)

    def abort(self) -> None:
        """Stop the in-flight sweep at its next shape boundary."""
        self._abort.set()

    def close(self) -> None:
        self._closed = True
        self.abort()

    def forecast_hit_rate(self) -> float:
        graded = self.forecast_hits + self.forecast_misses
        return self.forecast_hits / graded if graded else 0.0

    def stats(self) -> dict:
        """The ``/metrics`` gauge payload."""
        return {
            "enabled": self.enabled,
            "plans_warmed": self.plans_warmed,
            "sweep_steps": self.sweep_steps,
            "sweeps": self.sweeps,
            "sweeps_skipped": self.sweeps_skipped,
            "warm_errors": self.warm_errors,
            "forecaster": self.forecaster.name,
            "forecast_hits": self.forecast_hits,
            "forecast_misses": self.forecast_misses,
            "forecast_hit_rate": self.forecast_hit_rate(),
            "top_k": self.top_k,
            "step_budget": self.step_budget,
            "last_sweep": dict(self._last_result),
        }

    def __repr__(self) -> str:
        return (f"PlanWarmer(enabled={self.enabled}, "
                f"plans_warmed={self.plans_warmed}, "
                f"sweeps={self.sweeps})")
