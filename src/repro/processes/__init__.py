"""Simulation models: the substrates the paper evaluates MLSS on."""

from .ar import ARProcess
from .base import (FusedBatch, ImmutableStateProcess, ScalarFallback,
                   StochasticProcess, VectorizedProcess, as_vectorized,
                   batch_z_values, fuse_processes, register_batch_z,
                   resolve_backend, scalar_state_column, simulate_path,
                   step_into, supports_batch)
from .cpp import CompoundPoissonProcess, poisson_variate
from .gbm import GBMProcess, log_returns, synthetic_stock_series
from .markov_chain import MarkovChainProcess, birth_death_chain
from .queueing import TandemQueueProcess
from .random_walk import GaussianWalkProcess, RandomWalkProcess
from .volatile import ImpulseProcess, volatile_cpp, volatile_queue

__all__ = [
    "ARProcess", "CompoundPoissonProcess", "FusedBatch", "GBMProcess",
    "GaussianWalkProcess", "ImmutableStateProcess", "ImpulseProcess",
    "MarkovChainProcess", "RandomWalkProcess", "ScalarFallback",
    "StochasticProcess", "TandemQueueProcess", "VectorizedProcess",
    "as_vectorized", "batch_z_values", "birth_death_chain",
    "fuse_processes", "log_returns", "poisson_variate", "register_batch_z",
    "resolve_backend", "scalar_state_column", "simulate_path", "step_into",
    "supports_batch", "synthetic_stock_series", "volatile_cpp",
    "volatile_queue",
]
