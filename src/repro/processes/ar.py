"""Auto-regressive AR(m) processes (Section 2.1, model example 1).

The simulation procedure draws the value at time ``t`` as

    v_t = phi_1 * v_{t-1} + ... + phi_m * v_{t-m} + eps_t,

with ``eps_t ~ N(0, sigma)``.  The state is the tuple of the last ``m``
values (most recent first), so the process fits the generic step-wise
interface without the sampler knowing the order ``m``.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from .base import ImmutableStateProcess, VectorizedProcess, register_batch_z


class ARProcess(ImmutableStateProcess, VectorizedProcess):
    """AR(m) model with Gaussian innovations.

    Batched simulation supports in-place stepping (``supports_out``)
    and fusion: AR processes of the *same order* stack into one
    :class:`~repro.processes.base.FusedBatch` with per-row coefficient
    and noise parameters.

    Parameters
    ----------
    coefficients:
        ``[phi_1, ..., phi_m]``; ``phi_1`` multiplies the most recent
        value.
    sigma:
        Standard deviation of the innovation noise.
    initial_values:
        Seed window ``[v_0, v_{-1}, ...]`` (most recent first).  Defaults
        to all zeros.
    """

    supports_out = True

    def __init__(self, coefficients: Sequence[float], sigma: float = 1.0,
                 initial_values: Sequence[float] | None = None):
        coeffs = tuple(float(c) for c in coefficients)
        if not coeffs:
            raise ValueError("AR process needs at least one coefficient")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        if initial_values is None:
            initial_values = (0.0,) * len(coeffs)
        init = tuple(float(v) for v in initial_values)
        if len(init) != len(coeffs):
            raise ValueError(
                f"initial_values must have length {len(coeffs)}, "
                f"got {len(init)}"
            )
        self.coefficients = coeffs
        self.sigma = sigma
        self._initial = init
        self._coeff_array = np.asarray(coeffs, dtype=np.float64)

    @property
    def order(self) -> int:
        return len(self.coefficients)

    def initial_state(self) -> tuple:
        return self._initial

    def step(self, state: tuple, t: int, rng: random.Random) -> tuple:
        value = rng.gauss(0.0, self.sigma)
        for phi, past in zip(self.coefficients, state):
            value += phi * past
        # Shift the window: newest value first.
        return (value,) + state[:-1]

    def initial_states(self, n: int) -> np.ndarray:
        """State array of shape ``(n, m)``: one lag window per row."""
        return np.tile(np.asarray(self._initial, dtype=np.float64), (n, 1))

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator,
                   out: np.ndarray | None = None) -> np.ndarray:
        values = states @ self._coeff_array
        values += rng.normal(0.0, self.sigma, len(states))
        if out is None:
            # Shift each window: newest value first.
            return np.concatenate([values[:, None], states[:, :-1]], axis=1)
        # NumPy buffers overlapping assignments, so out may be states.
        out[:, 1:] = states[:, :-1]
        out[:, 0] = values
        return out

    def apply_impulse(self, state: tuple, magnitude: float) -> tuple:
        return (state[0] + magnitude,) + state[1:]

    def apply_impulse_batch(self, states: np.ndarray, rows,
                            magnitudes) -> None:
        states[rows, 0] += magnitudes

    # --- fusion hooks -------------------------------------------------

    def fusion_key(self):
        # Windows must be column-aligned, so the order is structural.
        return ("ar", self.order)

    def fusion_params(self) -> dict:
        return {"coefficients": self.coefficients, "sigma": self.sigma}

    @staticmethod
    def fused_step_batch(row_params, states, t, rng, out=None):
        values = np.einsum("ij,ij->i", states, row_params["coefficients"])
        values += row_params["sigma"] * rng.standard_normal(len(states))
        if out is None:
            return np.concatenate([values[:, None], states[:, :-1]], axis=1)
        out[:, 1:] = states[:, :-1]
        out[:, 0] = values
        return out

    # --- Gaussian-step protocol (used by importance sampling) ---------

    def step_with_noise(self, state: tuple, noise: float) -> tuple:
        value = noise
        for phi, past in zip(self.coefficients, state):
            value += phi * past
        return (value,) + state[:-1]

    def noise_sigma(self) -> float:
        return self.sigma

    @staticmethod
    def current_value(state: tuple) -> float:
        """Real-valued evaluation ``z`` of a state: the latest value."""
        return float(state[0])


def _current_values(states: np.ndarray) -> np.ndarray:
    # Object arrays (ScalarFallback wrapping, e.g. an impulse-decorated
    # AR process) hold tuple states; unpack before the column read.
    rows = np.asarray([tuple(s) for s in states]) \
        if states.dtype == object else states
    return rows[:, 0].astype(np.float64)


register_batch_z(ARProcess.current_value, _current_values)
