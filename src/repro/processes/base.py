"""Abstract interface for step-wise simulation models.

The paper (Section 2.1) assumes only that the predictive model exposes a
step-wise simulation procedure ``g``: given the states up to time ``t - 1``
it returns a (random) state for time ``t``.  Everything else — the state
space, the dynamics, whether the model is a classic stochastic process or
a neural network — is opaque to the query processor.

This module pins that contract down as :class:`StochasticProcess`.  The
samplers in :mod:`repro.core` interact with models exclusively through

* :meth:`StochasticProcess.initial_state`,
* :meth:`StochasticProcess.step`, and
* :meth:`StochasticProcess.copy_state` (needed by splitting samplers,
  which restart several simulations from one entrance state).

Cost is accounted as the number of ``step`` invocations, matching the
paper's cost model ("total number of invocations of g").
"""

from __future__ import annotations

import abc
import copy
import random
from typing import Any

State = Any


class StochasticProcess(abc.ABC):
    """A discrete-time stochastic process defined by a simulation rule.

    Subclasses must be cheap to construct and *stateless across paths*:
    all per-path information lives in the ``state`` object so that many
    sample paths can be simulated concurrently from shared entrance
    states (the core requirement of multi-level splitting).

    Contract:

    * ``initial_state()`` returns a fresh state for time 0.  Calling it
      twice must return states that can be simulated independently.
    * ``step(state, t, rng)`` returns the state at time ``t`` given the
      state at time ``t - 1``.  Implementations may mutate ``state``
      in place and return it, *provided* that states produced by
      ``copy_state`` share no mutable structure with the original.
    * ``copy_state(state)`` returns an independent copy.  The default
      uses :func:`copy.deepcopy`; processes with immutable states
      (tuples, ints, floats) should override it with identity for speed.
    """

    @abc.abstractmethod
    def initial_state(self) -> State:
        """Return a fresh state for time 0."""

    @abc.abstractmethod
    def step(self, state: State, t: int, rng: random.Random) -> State:
        """Simulate one step: return the state at time ``t``.

        ``t`` is the time index being generated (``t >= 1``); ``state``
        is the state at ``t - 1``.  ``rng`` is the caller's random
        source; implementations must draw all randomness from it so that
        runs are reproducible under a fixed seed.
        """

    def copy_state(self, state: State) -> State:
        """Return a copy of ``state`` safe to simulate independently."""
        return copy.deepcopy(state)

    def apply_impulse(self, state: State, magnitude: float) -> State:
        """Return ``state`` shifted by an exogenous impulse.

        Used by :mod:`repro.processes.volatile` to build the paper's
        "volatile" model variants (Section 6.2).  Processes that support
        impulses override this; the default refuses so that wrapping an
        unsupported process fails loudly rather than silently.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support impulses"
        )


class ImmutableStateProcess(StochasticProcess):
    """Convenience base for processes whose states are immutable values.

    Tuples, ints and floats need no copying; ``copy_state`` is identity.
    """

    def copy_state(self, state: State) -> State:
        return state


def simulate_path(
    process: StochasticProcess,
    horizon: int,
    rng: random.Random,
    initial_state: State | None = None,
) -> list:
    """Simulate one full sample path ``[x_0, x_1, ..., x_horizon]``.

    A small utility used by examples, calibration and tests; the samplers
    in :mod:`repro.core` run their own loops so they can stop early and
    count steps.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    state = initial_state if initial_state is not None else process.initial_state()
    path = [state]
    for t in range(1, horizon + 1):
        state = process.step(state, t, rng)
        path.append(state)
    return path
