"""Abstract interfaces for step-wise simulation models.

The paper (Section 2.1) assumes only that the predictive model exposes a
step-wise simulation procedure ``g``: given the states up to time ``t - 1``
it returns a (random) state for time ``t``.  Everything else — the state
space, the dynamics, whether the model is a classic stochastic process or
a neural network — is opaque to the query processor.

This module pins that contract down as :class:`StochasticProcess`.  The
samplers in :mod:`repro.core` interact with models exclusively through

* :meth:`StochasticProcess.initial_state`,
* :meth:`StochasticProcess.step`, and
* :meth:`StochasticProcess.copy_state` (needed by splitting samplers,
  which restart several simulations from one entrance state).

Cost is accounted as the number of ``step`` invocations, matching the
paper's cost model ("total number of invocations of g").

Batched simulation
------------------

The scalar contract dispatches one Python call per path per step, which
dominates the runtime of every sampler.  :class:`VectorizedProcess` is
the batched counterpart: a *state array* holds one state per row, and

* :meth:`VectorizedProcess.initial_states` returns ``n`` fresh rows,
* :meth:`VectorizedProcess.step_batch` advances every row one time step
  with a single NumPy-level operation, and
* :meth:`VectorizedProcess.replicate` clones selected rows (the batched
  analogue of ``copy_state``, used by splitting samplers).

Cost accounting is unchanged: one ``step_batch`` over ``k`` rows counts
as ``k`` invocations of ``g``.  Because all rows are independent paths,
batching only *reorders* independent random draws — every estimator's
unbiasedness argument goes through untouched.

:class:`ScalarFallback` adapts any scalar :class:`StochasticProcess` to
the batched contract (rows of a NumPy object array hold the scalar
states), so callers can program against :class:`VectorizedProcess`
uniformly; :func:`as_vectorized` picks the native implementation when
one exists.  :func:`register_batch_z` / :func:`batch_z_values` vectorize
the real-valued state evaluations ``z`` that value functions are built
from (see :mod:`repro.core.value_functions`).

In-place stepping
-----------------

Processes that can write the next state array into a caller-provided
buffer advertise it with ``supports_out = True`` and accept an ``out``
keyword on ``step_batch``; :func:`step_into` is the helper samplers use
to take the fast path when available and fall back to the allocating
contract otherwise.  Passing ``out=states`` (the common case) is
explicitly allowed: implementations must read everything they need from
a row before overwriting it.

Cross-process batch fusion
--------------------------

A fleet-screening batch asks the same question of many *entities* —
hundreds of processes of one family that differ only in parameters
(per-server arrival rates, per-stock drift and volatility).  Stepping
each entity's cohort separately repays the per-call dispatch overhead
once per entity per time step.  :class:`FusedBatch` removes that
multiplier: it stacks same-family processes into **one** vectorized
process whose state array carries an *owner column* (the last column)
mapping each row to its member, and whose step broadcasts per-member
parameter arrays by owner — one ``step_batch`` call advances the whole
fleet one time step.

A process opts into fusion by implementing three hooks:

* :meth:`StochasticProcess.fusion_key` — a structural family key; two
  processes fuse iff their keys are equal and not ``None`` (the
  default).  The key must capture everything *shape-like* (e.g. the AR
  order) so that per-member parameters can be stacked into rectangular
  arrays.
* ``fusion_params()`` — the per-member parameters as a flat dict of
  scalars/tuples; :class:`FusedBatch` stacks them into per-member
  arrays.
* ``fused_step_batch(row_params, states, t, rng, out=None)`` — the
  family's batched step over *row-aligned* parameter arrays
  (``row_params[name][i]`` parameterises row ``i``).  The generic
  :meth:`FusedBatch.step_batch` gathers per-member parameters by owner
  on every call; long-running passes gather once via
  :meth:`FusedBatch.row_params` and filter the rows and parameters
  together (see :mod:`repro.core.fleet`), keeping per-step work free
  of repeated indexing.

Because the owner column rides inside the state array, row selection,
:func:`numpy.repeat` replication and in-place stepping all work
unchanged, and registered batch-``z`` evaluations read their value from
the leading columns (the owner column is always last).

Backend coverage matrix
-----------------------

========================  ========  =====================  ======
process                   scalar    vectorized             fused
========================  ========  =====================  ======
RandomWalkProcess         yes       native                 yes
GaussianWalkProcess       yes       native                 yes
GBMProcess                yes       native                 yes
ARProcess                 yes       native                 yes (per order)
MarkovChainProcess        yes       native                 yes (per state-
                                                           space size)
TandemQueueProcess        yes       native (Gillespie)     yes
CompoundPoissonProcess    yes       native (Poisson sums)  yes
ImpulseProcess            yes       native over any        yes (fusible
                                    vectorized base        base family)
StockRNNProcess           yes       native (packed LSTM    no
                                    state, batched MDN)
anything else             yes       ScalarFallback         no
========================  ========  =====================  ======

``backend="auto"`` resolves to ``"vectorized"`` exactly when the row
above says *native* (a :class:`ScalarFallback` would add overhead, not
remove it), so no listed substrate silently degrades to a scalar loop.
"""

from __future__ import annotations

import abc
import copy
import random
from typing import Any, Callable, Sequence

import numpy as np

State = Any

#: Concrete simulation backends (``"auto"`` resolves to one of these).
BACKENDS = ("scalar", "vectorized")


class StochasticProcess(abc.ABC):
    """A discrete-time stochastic process defined by a simulation rule.

    Subclasses must be cheap to construct and *stateless across paths*:
    all per-path information lives in the ``state`` object so that many
    sample paths can be simulated concurrently from shared entrance
    states (the core requirement of multi-level splitting).

    Contract:

    * ``initial_state()`` returns a fresh state for time 0.  Calling it
      twice must return states that can be simulated independently.
    * ``step(state, t, rng)`` returns the state at time ``t`` given the
      state at time ``t - 1``.  Implementations may mutate ``state``
      in place and return it, *provided* that states produced by
      ``copy_state`` share no mutable structure with the original.
    * ``copy_state(state)`` returns an independent copy.  The default
      uses :func:`copy.deepcopy`; processes with immutable states
      (tuples, ints, floats) should override it with identity for speed.
    """

    @abc.abstractmethod
    def initial_state(self) -> State:
        """Return a fresh state for time 0."""

    @abc.abstractmethod
    def step(self, state: State, t: int, rng: random.Random) -> State:
        """Simulate one step: return the state at time ``t``.

        ``t`` is the time index being generated (``t >= 1``); ``state``
        is the state at ``t - 1``.  ``rng`` is the caller's random
        source; implementations must draw all randomness from it so that
        runs are reproducible under a fixed seed.
        """

    def copy_state(self, state: State) -> State:
        """Return a copy of ``state`` safe to simulate independently."""
        return copy.deepcopy(state)

    def apply_impulse(self, state: State, magnitude: float) -> State:
        """Return ``state`` shifted by an exogenous impulse.

        Used by :mod:`repro.processes.volatile` to build the paper's
        "volatile" model variants (Section 6.2).  Processes that support
        impulses override this; the default refuses so that wrapping an
        unsupported process fails loudly rather than silently.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support impulses"
        )

    def fusion_key(self):
        """Structural family key for cross-process batch fusion.

        Two processes can be stacked into one :class:`FusedBatch` iff
        their keys are equal and not ``None``.  The default — ``None`` —
        opts out; fusible families return a tuple identifying the
        family plus anything shape-like (e.g. the AR order) that the
        stacked parameter arrays depend on.  Parameters themselves
        (rates, drifts, volatilities) belong in ``fusion_params``, not
        the key: differing parameters are exactly what fusion exists to
        broadcast.
        """
        return None


class ImmutableStateProcess(StochasticProcess):
    """Convenience base for processes whose states are immutable values.

    Tuples, ints and floats need no copying; ``copy_state`` is identity.
    """

    def copy_state(self, state: State) -> State:
        return state


def simulate_path(
    process: StochasticProcess,
    horizon: int,
    rng: random.Random,
    initial_state: State | None = None,
) -> list:
    """Simulate one full sample path ``[x_0, x_1, ..., x_horizon]``.

    A small utility used by examples, calibration and tests; the samplers
    in :mod:`repro.core` run their own loops so they can stop early and
    count steps.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    state = initial_state if initial_state is not None else process.initial_state()
    path = [state]
    for t in range(1, horizon + 1):
        state = process.step(state, t, rng)
        path.append(state)
    return path


# ----------------------------------------------------------------------
# Batched simulation protocol
# ----------------------------------------------------------------------

class VectorizedProcess(abc.ABC):
    """Mixin contract for processes that simulate whole batches at once.

    A *state array* represents one state per row: a 1-D array for scalar
    states (walk positions, chain indices, prices) or a 2-D array of
    shape ``(n, d)`` for structured states (AR windows, queue pairs).
    Rows are independent sample paths.

    Contract:

    * ``initial_states(n)`` returns a state array of ``n`` fresh,
      independently-simulatable time-0 states.
    * ``step_batch(states, t, rng)`` returns the state array at time
      ``t`` given the array at ``t - 1``.  ``rng`` is a
      :class:`numpy.random.Generator`; implementations must draw all
      randomness from it.  Each call accounts for ``len(states)``
      invocations of ``g``.  Implementations must not mutate the input
      array (return a fresh array, or operate on a copy).
    * ``replicate(states, indices, counts)`` returns a state array with
      ``counts[j]`` independent copies of row ``indices[j]``, in order —
      the batched ``copy_state`` used when splitting samplers spawn
      offspring from entrance states.

    Row selection (``states[mask]``) and concatenation
    (``numpy.concatenate``) must produce valid state arrays; plain
    value-typed NumPy arrays satisfy this for free.

    Implementations advertising ``supports_out = True`` additionally
    accept an ``out`` keyword on ``step_batch`` (a buffer shaped like
    the input, possibly the input itself) and write the result there —
    the allocation-free fast path taken by :func:`step_into`.
    """

    #: True when ``step_batch`` accepts ``out=`` (see :func:`step_into`).
    supports_out = False

    @abc.abstractmethod
    def initial_states(self, n: int) -> np.ndarray:
        """Return a state array of ``n`` fresh time-0 states."""

    @abc.abstractmethod
    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator) -> np.ndarray:
        """Advance every row one step: the state array at time ``t``."""

    def replicate(self, states: np.ndarray, indices, counts) -> np.ndarray:
        """Clone rows: ``counts[j]`` independent copies of ``indices[j]``.

        The default is :func:`numpy.repeat`, correct whenever states are
        plain value arrays (no shared mutable structure between rows).
        """
        return np.repeat(states[np.asarray(indices)],
                         np.asarray(counts), axis=0)

    def batch_native(self) -> bool:
        """True when batching is genuinely array-level for this instance.

        Wrappers whose batched speed depends on what they wrap (e.g.
        :class:`repro.processes.volatile.ImpulseProcess`) override this;
        ``backend="auto"`` consults it through :func:`supports_batch`.
        """
        return True

    def apply_impulse_batch(self, states: np.ndarray, rows,
                            magnitudes) -> None:
        """Apply impulses to selected rows of a state array, in place.

        The batched counterpart of
        :meth:`StochasticProcess.apply_impulse`: ``states[rows[j]]``
        receives an impulse of ``magnitudes[j]`` (``magnitudes`` may be
        a scalar, broadcast over rows).  Mutates ``states`` — callers
        own the array.  The default refuses, mirroring the scalar
        contract.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support batched impulses"
        )


def step_into(process: "VectorizedProcess", states: np.ndarray, t: int,
              rng: np.random.Generator) -> np.ndarray:
    """Advance ``states`` one step, in place when the process allows it.

    The single call sites in the hot loops go through here: processes
    with ``supports_out`` overwrite the caller's buffer (no per-step
    allocation); everything else falls back to the allocating
    ``step_batch`` contract.  Either way the *returned* array is the
    new state array — callers must use it and forget the input.
    """
    if process.supports_out:
        return process.step_batch(states, t, rng, out=states)
    return process.step_batch(states, t, rng)


def scalar_state_column(states: np.ndarray) -> np.ndarray:
    """The scalar value of each row, for 1-D *or* fused state arrays.

    Scalar-state families (walks, GBM, CPP) keep 1-D native state
    arrays but gain a trailing owner column under :class:`FusedBatch`;
    their registered batch-``z`` evaluations read through this helper
    so both layouts score identically.
    """
    arr = np.asarray(states, dtype=np.float64)
    return arr if arr.ndim == 1 else arr[:, 0]


class ScalarFallback(VectorizedProcess, StochasticProcess):
    """Adapt any scalar :class:`StochasticProcess` to the batched contract.

    State arrays are 1-D NumPy object arrays whose elements are the
    wrapped process's scalar states, so the adapter works for *any*
    state type at scalar-loop speed.  It exists so that every sampler
    can be written once against :class:`VectorizedProcess`; use
    :func:`as_vectorized` to prefer a native implementation.

    Randomness: ``step_batch`` draws from a :class:`random.Random`
    seeded once from the caller's NumPy generator, so runs remain
    reproducible under a fixed seed.
    """

    def __init__(self, process: StochasticProcess):
        if supports_batch(process):
            raise TypeError(
                f"{type(process).__name__} is already vectorized; "
                f"wrapping it in ScalarFallback would only slow it down"
            )
        self.process = process
        self._scalar_rng: random.Random | None = None

    # -- scalar contract: delegate straight through --------------------

    def initial_state(self) -> State:
        return self.process.initial_state()

    def step(self, state: State, t: int, rng: random.Random) -> State:
        return self.process.step(state, t, rng)

    def copy_state(self, state: State) -> State:
        return self.process.copy_state(state)

    def apply_impulse(self, state: State, magnitude: float) -> State:
        return self.process.apply_impulse(state, magnitude)

    # -- batched contract ----------------------------------------------

    @staticmethod
    def _object_array(items: Sequence) -> np.ndarray:
        # np.array() would try to broadcast tuple states into a 2-D
        # array; element-wise assignment keeps rows opaque.
        out = np.empty(len(items), dtype=object)
        for j, item in enumerate(items):
            out[j] = item
        return out

    def _rng_for(self, rng: np.random.Generator) -> random.Random:
        if self._scalar_rng is None:
            self._scalar_rng = random.Random(int(rng.integers(1 << 62)))
        return self._scalar_rng

    def initial_states(self, n: int) -> np.ndarray:
        fresh = self.process.initial_state
        return self._object_array([fresh() for _ in range(n)])

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator) -> np.ndarray:
        scalar_rng = self._rng_for(rng)
        step = self.process.step
        return self._object_array([step(s, t, scalar_rng) for s in states])

    def replicate(self, states: np.ndarray, indices, counts) -> np.ndarray:
        copy_state = self.process.copy_state
        clones = []
        for index, count in zip(indices, counts):
            source = states[index]
            clones.extend(copy_state(source) for _ in range(count))
        return self._object_array(clones)

    def apply_impulse_batch(self, states: np.ndarray, rows,
                            magnitudes) -> None:
        magnitudes = np.broadcast_to(np.asarray(magnitudes, dtype=float),
                                     (len(rows),))
        apply = self.process.apply_impulse
        for j, magnitude in zip(rows, magnitudes):
            states[j] = apply(states[j], float(magnitude))

    def __repr__(self) -> str:
        return f"ScalarFallback({self.process!r})"


class FusedBatch(VectorizedProcess):
    """Same-family processes with different parameters as one batch.

    The cross-process fusion layer: ``FusedBatch([p_0, ..., p_{k-1}])``
    stacks ``k`` processes whose :meth:`StochasticProcess.fusion_key`
    agree into a single :class:`VectorizedProcess`.  Its state array is
    always 2-D — the members' (column-aligned) core state plus a
    trailing *owner column* holding the member index of each row — so
    one ``step_batch`` call advances rows belonging to every member,
    with per-member parameters (drift, volatility, rates, ...)
    broadcast per row by indexing the stacked parameter arrays with the
    owner column.

    Cost accounting is unchanged: one fused ``step_batch`` over ``n``
    rows still counts as ``n`` invocations of ``g`` — fusion removes
    per-member dispatch overhead, not simulation work.  Rows are
    independent paths exactly as before, so estimates built from fused
    passes are exchangeable with per-member runs.

    The owner column survives everything samplers do to state arrays —
    boolean selection, :func:`numpy.repeat` replication, in-place
    stepping — because it is data, not metadata.  Registered
    batch-``z`` evaluations read the *leading* columns (see
    :func:`scalar_state_column`), so shared value functions score fused
    rows correctly.
    """

    supports_out = True

    def __init__(self, members: Sequence[StochasticProcess]):
        members = tuple(members)
        if not members:
            raise ValueError("FusedBatch needs at least one member")
        keys = {member.fusion_key() for member in members}
        if len(keys) != 1 or next(iter(keys)) is None:
            raise ValueError(
                f"members are not fusible into one batch: fusion keys "
                f"{sorted(keys, key=repr)} (need one shared non-None key)"
            )
        self.members = members
        self.key = keys.pop()
        self._lead = members[0]
        per_member = [member.fusion_params() for member in members]
        self.params = {
            name: np.asarray([params[name] for params in per_member])
            for name in per_member[0]
        }
        rows = [np.asarray(member.initial_states(1),
                           dtype=np.float64).reshape(1, -1)
                for member in members]
        width = rows[0].shape[1]
        if any(row.shape[1] != width for row in rows):
            raise ValueError("members disagree on state width")
        self._initial_rows = np.concatenate(rows, axis=0)

    @property
    def n_members(self) -> int:
        return len(self.members)

    @staticmethod
    def owners_of(states: np.ndarray) -> np.ndarray:
        """The owner column as integer member indices."""
        return states[:, -1].astype(np.intp)

    def initial_core_rows(self, owners) -> np.ndarray:
        """Fresh core state rows (no owner column) for the given owners.

        For callers that track row ownership themselves (the fleet
        screening pass keeps owners in a side array so its hot loop
        never re-derives them); most callers want
        :meth:`initial_states_for` instead.
        """
        return self._initial_rows[np.asarray(owners, dtype=np.intp)]

    def initial_states_for(self, counts) -> np.ndarray:
        """A fused state array with ``counts[i]`` rows for member ``i``."""
        counts = np.asarray(counts, dtype=np.int64)
        if len(counts) != self.n_members:
            raise ValueError(
                f"{len(counts)} counts for {self.n_members} members")
        owners = np.repeat(np.arange(self.n_members), counts)
        core = self.initial_core_rows(owners)
        return np.concatenate(
            [core, owners[:, None].astype(np.float64)], axis=1)

    def initial_states(self, n: int) -> np.ndarray:
        """``n`` fresh rows spread as evenly as possible over members."""
        base, extra = divmod(n, self.n_members)
        counts = np.full(self.n_members, base, dtype=np.int64)
        counts[:extra] += 1
        return self.initial_states_for(counts)

    def row_params(self, owners) -> dict:
        """Per-row parameter arrays for the given owner assignment."""
        owners = np.asarray(owners, dtype=np.intp)
        return {name: values[owners]
                for name, values in self.params.items()}

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator,
                   out: np.ndarray | None = None) -> np.ndarray:
        row_params = self.row_params(self.owners_of(states))
        core = states[:, :-1]
        if out is not None:
            self._lead.fused_step_batch(row_params, core, t, rng,
                                        out=out[:, :-1])
            if out is not states:
                out[:, -1] = states[:, -1]
            return out
        new_core = self._lead.fused_step_batch(row_params, core, t, rng)
        return np.concatenate([new_core, states[:, -1:]], axis=1)

    def apply_impulse_batch(self, states: np.ndarray, rows,
                            magnitudes) -> None:
        self._lead.apply_impulse_batch(states[:, :-1], rows, magnitudes)

    def __repr__(self) -> str:
        return (f"FusedBatch({self.n_members} x "
                f"{type(self._lead).__name__}, key={self.key!r})")


def fuse_processes(processes: Sequence[StochasticProcess]) -> FusedBatch:
    """Stack fusible same-family processes into one :class:`FusedBatch`."""
    return FusedBatch(processes)


def supports_batch(process) -> bool:
    """True when the process natively implements the batched contract.

    Wrapper processes (e.g. an :class:`~repro.processes.volatile.
    ImpulseProcess` over a scalar base) may implement the interface yet
    still loop path-by-path underneath; ``batch_native`` lets them say
    so, and ``"auto"`` backend resolution treats them as scalar.
    """
    return isinstance(process, VectorizedProcess) and process.batch_native()


def as_vectorized(process: StochasticProcess) -> VectorizedProcess:
    """The process itself if vectorized, else a :class:`ScalarFallback`."""
    if supports_batch(process):
        return process
    if isinstance(process, VectorizedProcess):
        # A wrapper that is only as batched as its (scalar) base: its
        # step_batch is correct, merely loop-speed; use it directly
        # rather than double-wrapping.
        return process
    return ScalarFallback(process)


def resolve_backend(backend: str, process: StochasticProcess) -> str:
    """Resolve a backend request to a concrete ``"scalar"``/``"vectorized"``.

    ``"auto"`` picks ``"vectorized"`` exactly when the process natively
    supports batching (a :class:`ScalarFallback` would add overhead, not
    remove it); explicit requests are honoured as-is.
    """
    if backend == "auto":
        return "vectorized" if supports_batch(process) else "scalar"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from "
            f"{('auto',) + BACKENDS}"
        )
    return backend


# ----------------------------------------------------------------------
# Batched state evaluations (vectorized ``z``)
# ----------------------------------------------------------------------

# Maps a scalar ``z`` function (or the underlying __func__ of a bound
# method) to its batch variant.  Functions registered here let
# ThresholdValueFunction evaluate whole state arrays in one NumPy call.
_BATCH_Z: dict = {}


def register_batch_z(scalar_z: Callable, batch_z: Callable) -> Callable:
    """Register the batch variant of a scalar state evaluation ``z``.

    ``batch_z`` receives a state array (plus the bound instance first,
    when ``scalar_z`` is declared as an instance method) and returns one
    value per row.  Returns ``batch_z`` so it can be used as a
    decorator-style helper.
    """
    _BATCH_Z[getattr(scalar_z, "__func__", scalar_z)] = batch_z
    return batch_z


def batch_z_values(z: Callable, states: np.ndarray) -> np.ndarray:
    """Evaluate ``z`` over a state array, one value per row.

    Resolution order: an explicit ``z.batch`` attribute, then the
    :func:`register_batch_z` registry (bound methods are looked up by
    their underlying function and called with their instance), then a
    row-wise scalar loop — always correct, merely slower.
    """
    batch = getattr(z, "batch", None)
    if batch is not None:
        return np.asarray(batch(states), dtype=np.float64)
    registered = _BATCH_Z.get(getattr(z, "__func__", z))
    if registered is not None:
        owner = getattr(z, "__self__", None)
        if owner is not None:
            return np.asarray(registered(owner, states), dtype=np.float64)
        return np.asarray(registered(states), dtype=np.float64)
    return np.asarray([z(s) for s in states], dtype=np.float64)
