"""Abstract interfaces for step-wise simulation models.

The paper (Section 2.1) assumes only that the predictive model exposes a
step-wise simulation procedure ``g``: given the states up to time ``t - 1``
it returns a (random) state for time ``t``.  Everything else — the state
space, the dynamics, whether the model is a classic stochastic process or
a neural network — is opaque to the query processor.

This module pins that contract down as :class:`StochasticProcess`.  The
samplers in :mod:`repro.core` interact with models exclusively through

* :meth:`StochasticProcess.initial_state`,
* :meth:`StochasticProcess.step`, and
* :meth:`StochasticProcess.copy_state` (needed by splitting samplers,
  which restart several simulations from one entrance state).

Cost is accounted as the number of ``step`` invocations, matching the
paper's cost model ("total number of invocations of g").

Batched simulation
------------------

The scalar contract dispatches one Python call per path per step, which
dominates the runtime of every sampler.  :class:`VectorizedProcess` is
the batched counterpart: a *state array* holds one state per row, and

* :meth:`VectorizedProcess.initial_states` returns ``n`` fresh rows,
* :meth:`VectorizedProcess.step_batch` advances every row one time step
  with a single NumPy-level operation, and
* :meth:`VectorizedProcess.replicate` clones selected rows (the batched
  analogue of ``copy_state``, used by splitting samplers).

Cost accounting is unchanged: one ``step_batch`` over ``k`` rows counts
as ``k`` invocations of ``g``.  Because all rows are independent paths,
batching only *reorders* independent random draws — every estimator's
unbiasedness argument goes through untouched.

:class:`ScalarFallback` adapts any scalar :class:`StochasticProcess` to
the batched contract (rows of a NumPy object array hold the scalar
states), so callers can program against :class:`VectorizedProcess`
uniformly; :func:`as_vectorized` picks the native implementation when
one exists.  :func:`register_batch_z` / :func:`batch_z_values` vectorize
the real-valued state evaluations ``z`` that value functions are built
from (see :mod:`repro.core.value_functions`).
"""

from __future__ import annotations

import abc
import copy
import random
from typing import Any, Callable, Sequence

import numpy as np

State = Any

#: Concrete simulation backends (``"auto"`` resolves to one of these).
BACKENDS = ("scalar", "vectorized")


class StochasticProcess(abc.ABC):
    """A discrete-time stochastic process defined by a simulation rule.

    Subclasses must be cheap to construct and *stateless across paths*:
    all per-path information lives in the ``state`` object so that many
    sample paths can be simulated concurrently from shared entrance
    states (the core requirement of multi-level splitting).

    Contract:

    * ``initial_state()`` returns a fresh state for time 0.  Calling it
      twice must return states that can be simulated independently.
    * ``step(state, t, rng)`` returns the state at time ``t`` given the
      state at time ``t - 1``.  Implementations may mutate ``state``
      in place and return it, *provided* that states produced by
      ``copy_state`` share no mutable structure with the original.
    * ``copy_state(state)`` returns an independent copy.  The default
      uses :func:`copy.deepcopy`; processes with immutable states
      (tuples, ints, floats) should override it with identity for speed.
    """

    @abc.abstractmethod
    def initial_state(self) -> State:
        """Return a fresh state for time 0."""

    @abc.abstractmethod
    def step(self, state: State, t: int, rng: random.Random) -> State:
        """Simulate one step: return the state at time ``t``.

        ``t`` is the time index being generated (``t >= 1``); ``state``
        is the state at ``t - 1``.  ``rng`` is the caller's random
        source; implementations must draw all randomness from it so that
        runs are reproducible under a fixed seed.
        """

    def copy_state(self, state: State) -> State:
        """Return a copy of ``state`` safe to simulate independently."""
        return copy.deepcopy(state)

    def apply_impulse(self, state: State, magnitude: float) -> State:
        """Return ``state`` shifted by an exogenous impulse.

        Used by :mod:`repro.processes.volatile` to build the paper's
        "volatile" model variants (Section 6.2).  Processes that support
        impulses override this; the default refuses so that wrapping an
        unsupported process fails loudly rather than silently.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support impulses"
        )


class ImmutableStateProcess(StochasticProcess):
    """Convenience base for processes whose states are immutable values.

    Tuples, ints and floats need no copying; ``copy_state`` is identity.
    """

    def copy_state(self, state: State) -> State:
        return state


def simulate_path(
    process: StochasticProcess,
    horizon: int,
    rng: random.Random,
    initial_state: State | None = None,
) -> list:
    """Simulate one full sample path ``[x_0, x_1, ..., x_horizon]``.

    A small utility used by examples, calibration and tests; the samplers
    in :mod:`repro.core` run their own loops so they can stop early and
    count steps.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    state = initial_state if initial_state is not None else process.initial_state()
    path = [state]
    for t in range(1, horizon + 1):
        state = process.step(state, t, rng)
        path.append(state)
    return path


# ----------------------------------------------------------------------
# Batched simulation protocol
# ----------------------------------------------------------------------

class VectorizedProcess(abc.ABC):
    """Mixin contract for processes that simulate whole batches at once.

    A *state array* represents one state per row: a 1-D array for scalar
    states (walk positions, chain indices, prices) or a 2-D array of
    shape ``(n, d)`` for structured states (AR windows, queue pairs).
    Rows are independent sample paths.

    Contract:

    * ``initial_states(n)`` returns a state array of ``n`` fresh,
      independently-simulatable time-0 states.
    * ``step_batch(states, t, rng)`` returns the state array at time
      ``t`` given the array at ``t - 1``.  ``rng`` is a
      :class:`numpy.random.Generator`; implementations must draw all
      randomness from it.  Each call accounts for ``len(states)``
      invocations of ``g``.  Implementations must not mutate the input
      array (return a fresh array, or operate on a copy).
    * ``replicate(states, indices, counts)`` returns a state array with
      ``counts[j]`` independent copies of row ``indices[j]``, in order —
      the batched ``copy_state`` used when splitting samplers spawn
      offspring from entrance states.

    Row selection (``states[mask]``) and concatenation
    (``numpy.concatenate``) must produce valid state arrays; plain
    value-typed NumPy arrays satisfy this for free.
    """

    @abc.abstractmethod
    def initial_states(self, n: int) -> np.ndarray:
        """Return a state array of ``n`` fresh time-0 states."""

    @abc.abstractmethod
    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator) -> np.ndarray:
        """Advance every row one step: the state array at time ``t``."""

    def replicate(self, states: np.ndarray, indices, counts) -> np.ndarray:
        """Clone rows: ``counts[j]`` independent copies of ``indices[j]``.

        The default is :func:`numpy.repeat`, correct whenever states are
        plain value arrays (no shared mutable structure between rows).
        """
        return np.repeat(states[np.asarray(indices)],
                         np.asarray(counts), axis=0)


class ScalarFallback(VectorizedProcess, StochasticProcess):
    """Adapt any scalar :class:`StochasticProcess` to the batched contract.

    State arrays are 1-D NumPy object arrays whose elements are the
    wrapped process's scalar states, so the adapter works for *any*
    state type at scalar-loop speed.  It exists so that every sampler
    can be written once against :class:`VectorizedProcess`; use
    :func:`as_vectorized` to prefer a native implementation.

    Randomness: ``step_batch`` draws from a :class:`random.Random`
    seeded once from the caller's NumPy generator, so runs remain
    reproducible under a fixed seed.
    """

    def __init__(self, process: StochasticProcess):
        if isinstance(process, VectorizedProcess):
            raise TypeError(
                f"{type(process).__name__} is already vectorized; "
                f"wrapping it in ScalarFallback would only slow it down"
            )
        self.process = process
        self._scalar_rng: random.Random | None = None

    # -- scalar contract: delegate straight through --------------------

    def initial_state(self) -> State:
        return self.process.initial_state()

    def step(self, state: State, t: int, rng: random.Random) -> State:
        return self.process.step(state, t, rng)

    def copy_state(self, state: State) -> State:
        return self.process.copy_state(state)

    def apply_impulse(self, state: State, magnitude: float) -> State:
        return self.process.apply_impulse(state, magnitude)

    # -- batched contract ----------------------------------------------

    @staticmethod
    def _object_array(items: Sequence) -> np.ndarray:
        # np.array() would try to broadcast tuple states into a 2-D
        # array; element-wise assignment keeps rows opaque.
        out = np.empty(len(items), dtype=object)
        for j, item in enumerate(items):
            out[j] = item
        return out

    def _rng_for(self, rng: np.random.Generator) -> random.Random:
        if self._scalar_rng is None:
            self._scalar_rng = random.Random(int(rng.integers(1 << 62)))
        return self._scalar_rng

    def initial_states(self, n: int) -> np.ndarray:
        fresh = self.process.initial_state
        return self._object_array([fresh() for _ in range(n)])

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator) -> np.ndarray:
        scalar_rng = self._rng_for(rng)
        step = self.process.step
        return self._object_array([step(s, t, scalar_rng) for s in states])

    def replicate(self, states: np.ndarray, indices, counts) -> np.ndarray:
        copy_state = self.process.copy_state
        clones = []
        for index, count in zip(indices, counts):
            source = states[index]
            clones.extend(copy_state(source) for _ in range(count))
        return self._object_array(clones)

    def __repr__(self) -> str:
        return f"ScalarFallback({self.process!r})"


def supports_batch(process: StochasticProcess) -> bool:
    """True when the process natively implements the batched contract."""
    return isinstance(process, VectorizedProcess)


def as_vectorized(process: StochasticProcess) -> VectorizedProcess:
    """The process itself if vectorized, else a :class:`ScalarFallback`."""
    if isinstance(process, VectorizedProcess):
        return process
    return ScalarFallback(process)


def resolve_backend(backend: str, process: StochasticProcess) -> str:
    """Resolve a backend request to a concrete ``"scalar"``/``"vectorized"``.

    ``"auto"`` picks ``"vectorized"`` exactly when the process natively
    supports batching (a :class:`ScalarFallback` would add overhead, not
    remove it); explicit requests are honoured as-is.
    """
    if backend == "auto":
        return "vectorized" if supports_batch(process) else "scalar"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from "
            f"{('auto',) + BACKENDS}"
        )
    return backend


# ----------------------------------------------------------------------
# Batched state evaluations (vectorized ``z``)
# ----------------------------------------------------------------------

# Maps a scalar ``z`` function (or the underlying __func__ of a bound
# method) to its batch variant.  Functions registered here let
# ThresholdValueFunction evaluate whole state arrays in one NumPy call.
_BATCH_Z: dict = {}


def register_batch_z(scalar_z: Callable, batch_z: Callable) -> Callable:
    """Register the batch variant of a scalar state evaluation ``z``.

    ``batch_z`` receives a state array (plus the bound instance first,
    when ``scalar_z`` is declared as an instance method) and returns one
    value per row.  Returns ``batch_z`` so it can be used as a
    decorator-style helper.
    """
    _BATCH_Z[getattr(scalar_z, "__func__", scalar_z)] = batch_z
    return batch_z


def batch_z_values(z: Callable, states: np.ndarray) -> np.ndarray:
    """Evaluate ``z`` over a state array, one value per row.

    Resolution order: an explicit ``z.batch`` attribute, then the
    :func:`register_batch_z` registry (bound methods are looked up by
    their underlying function and called with their instance), then a
    row-wise scalar loop — always correct, merely slower.
    """
    batch = getattr(z, "batch", None)
    if batch is not None:
        return np.asarray(batch(states), dtype=np.float64)
    registered = _BATCH_Z.get(getattr(z, "__func__", z))
    if registered is not None:
        owner = getattr(z, "__self__", None)
        if owner is not None:
            return np.asarray(registered(owner, states), dtype=np.float64)
        return np.asarray(registered(states), dtype=np.float64)
    return np.asarray([z(s) for s in states], dtype=np.float64)
