"""Compound Poisson process (Section 6, experimental model 2).

The risk-theory surplus process

    U(t) = u + c * t - S(t),

where ``S(t)`` is a compound Poisson process with jump density ``lam``
and jump sizes drawn from ``Uniform(jump_low, jump_high)``.  ``u`` is
the initial surplus and ``c`` the premium income per unit time.  The
paper's parameters are ``u = 15``, ``c = 4.5``, ``lam = 0.8`` and jumps
``Uniform(5, 10)``, which we keep as defaults.

Note on calibration: with these defaults the drift is
``c - lam * E[J] = 4.5 - 6.0 = -1.5`` per unit time, so upward
excursions of ``U`` are genuinely rare events driven by lucky stretches
without claims — exactly the regime MLSS targets.  The value thresholds
in our workload registry are calibrated to this process (the paper's
printed thresholds of 300-500 are unreachable under its printed
parameters; see DESIGN.md, "Substitutions").

Batched simulation: each step draws every row's claim count with one
``Generator.poisson`` call, then forms all claim totals with a single
uniform draw over the pooled claims and a weighted ``bincount`` back to
rows — the compound sum never loops in Python.  CPP also participates
in cross-process fusion (per-row premium, claim rate and jump bounds),
so fleets of differently-parameterised surplus processes advance as one
``step_batch`` per time step.
"""

from __future__ import annotations

import math
import random

import numpy as np

from .base import (ImmutableStateProcess, VectorizedProcess,
                   register_batch_z, scalar_state_column)


def poisson_variate(rng: random.Random, exp_neg_lambda: float) -> int:
    """Draw a Poisson variate by Knuth's product-of-uniforms method.

    ``exp_neg_lambda`` is the pre-computed ``exp(-lambda)``; the method
    is exact and fast for the small rates used here (lambda < ~10).
    """
    k = 0
    product = rng.random()
    while product > exp_neg_lambda:
        k += 1
        product *= rng.random()
    return k


def _compound_uniform_sums(counts: np.ndarray, low, span,
                           rng: np.random.Generator) -> np.ndarray:
    """Per-row sums of ``counts[i]`` draws from ``Uniform(low, low+span)``.

    ``low``/``span`` may be scalars or per-row arrays (the fused path).
    One pooled uniform draw covers every claim of every row; a weighted
    bincount folds the claims back to their rows.
    """
    total_claims = int(counts.sum())
    n = len(counts)
    if total_claims == 0:
        return np.zeros(n, dtype=np.float64)
    claim_row = np.repeat(np.arange(n), counts)
    draws = rng.random(total_claims)
    if np.ndim(low) == 0:
        claims = low + span * draws
    else:
        claims = (np.asarray(low, dtype=np.float64)[claim_row]
                  + np.asarray(span, dtype=np.float64)[claim_row] * draws)
    return np.bincount(claim_row, weights=claims, minlength=n)


class CompoundPoissonProcess(ImmutableStateProcess, VectorizedProcess):
    """Insurance surplus process observed at integer times.

    The state is the current surplus ``U(t)`` (a float).  Each unit step
    adds the premium ``c`` and subtracts a compound-Poisson claim total
    with ``Poisson(lam)`` claims of size ``Uniform(jump_low, jump_high)``.
    """

    supports_out = True

    def __init__(self, initial_surplus: float = 15.0, premium_rate: float = 4.5,
                 jump_rate: float = 0.8, jump_low: float = 5.0,
                 jump_high: float = 10.0):
        if jump_rate <= 0:
            raise ValueError(f"jump_rate must be > 0, got {jump_rate}")
        if jump_high < jump_low:
            raise ValueError(
                f"jump_high ({jump_high}) must be >= jump_low ({jump_low})"
            )
        self.initial_surplus = initial_surplus
        self.premium_rate = premium_rate
        self.jump_rate = jump_rate
        self.jump_low = jump_low
        self.jump_high = jump_high
        self._exp_neg_lambda = math.exp(-jump_rate)
        self._jump_span = jump_high - jump_low

    def initial_state(self) -> float:
        return float(self.initial_surplus)

    def step(self, state: float, t: int, rng: random.Random) -> float:
        value = state + self.premium_rate
        n_claims = poisson_variate(rng, self._exp_neg_lambda)
        for _ in range(n_claims):
            value -= self.jump_low + self._jump_span * rng.random()
        return value

    def initial_states(self, n: int) -> np.ndarray:
        return np.full(n, float(self.initial_surplus), dtype=np.float64)

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator,
                   out: np.ndarray | None = None) -> np.ndarray:
        counts = rng.poisson(self.jump_rate, len(states))
        claims = _compound_uniform_sums(counts, self.jump_low,
                                        self._jump_span, rng)
        return np.add(states, self.premium_rate - claims, out=out)

    def apply_impulse(self, state: float, magnitude: float) -> float:
        return state + magnitude

    def apply_impulse_batch(self, states: np.ndarray, rows,
                            magnitudes) -> None:
        column = states if states.ndim == 1 else states[:, 0]
        column[rows] += magnitudes

    # --- fusion hooks -------------------------------------------------

    def fusion_key(self):
        return ("cpp",)

    def fusion_params(self) -> dict:
        return {"premium_rate": self.premium_rate,
                "jump_rate": self.jump_rate,
                "jump_low": self.jump_low,
                "jump_span": self._jump_span}

    @staticmethod
    def fused_step_batch(row_params, states, t, rng, out=None):
        counts = rng.poisson(row_params["jump_rate"])
        claims = _compound_uniform_sums(counts, row_params["jump_low"],
                                        row_params["jump_span"], rng)
        increments = row_params["premium_rate"] - claims
        return np.add(states, increments[:, None], out=out)

    def mean_drift(self) -> float:
        """Expected change of ``U`` per unit time."""
        mean_jump = 0.5 * (self.jump_low + self.jump_high)
        return self.premium_rate - self.jump_rate * mean_jump

    @staticmethod
    def surplus(state: float) -> float:
        """Real-valued evaluation ``z``: the surplus ``U(t)`` (paper §6)."""
        return float(state)


register_batch_z(CompoundPoissonProcess.surplus, scalar_state_column)
