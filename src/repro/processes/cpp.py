"""Compound Poisson process (Section 6, experimental model 2).

The risk-theory surplus process

    U(t) = u + c * t - S(t),

where ``S(t)`` is a compound Poisson process with jump density ``lam``
and jump sizes drawn from ``Uniform(jump_low, jump_high)``.  ``u`` is
the initial surplus and ``c`` the premium income per unit time.  The
paper's parameters are ``u = 15``, ``c = 4.5``, ``lam = 0.8`` and jumps
``Uniform(5, 10)``, which we keep as defaults.

Note on calibration: with these defaults the drift is
``c - lam * E[J] = 4.5 - 6.0 = -1.5`` per unit time, so upward
excursions of ``U`` are genuinely rare events driven by lucky stretches
without claims — exactly the regime MLSS targets.  The value thresholds
in our workload registry are calibrated to this process (the paper's
printed thresholds of 300-500 are unreachable under its printed
parameters; see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import math
import random

from .base import ImmutableStateProcess


def poisson_variate(rng: random.Random, exp_neg_lambda: float) -> int:
    """Draw a Poisson variate by Knuth's product-of-uniforms method.

    ``exp_neg_lambda`` is the pre-computed ``exp(-lambda)``; the method
    is exact and fast for the small rates used here (lambda < ~10).
    """
    k = 0
    product = rng.random()
    while product > exp_neg_lambda:
        k += 1
        product *= rng.random()
    return k


class CompoundPoissonProcess(ImmutableStateProcess):
    """Insurance surplus process observed at integer times.

    The state is the current surplus ``U(t)`` (a float).  Each unit step
    adds the premium ``c`` and subtracts a compound-Poisson claim total
    with ``Poisson(lam)`` claims of size ``Uniform(jump_low, jump_high)``.
    """

    def __init__(self, initial_surplus: float = 15.0, premium_rate: float = 4.5,
                 jump_rate: float = 0.8, jump_low: float = 5.0,
                 jump_high: float = 10.0):
        if jump_rate <= 0:
            raise ValueError(f"jump_rate must be > 0, got {jump_rate}")
        if jump_high < jump_low:
            raise ValueError(
                f"jump_high ({jump_high}) must be >= jump_low ({jump_low})"
            )
        self.initial_surplus = initial_surplus
        self.premium_rate = premium_rate
        self.jump_rate = jump_rate
        self.jump_low = jump_low
        self.jump_high = jump_high
        self._exp_neg_lambda = math.exp(-jump_rate)
        self._jump_span = jump_high - jump_low

    def initial_state(self) -> float:
        return float(self.initial_surplus)

    def step(self, state: float, t: int, rng: random.Random) -> float:
        value = state + self.premium_rate
        n_claims = poisson_variate(rng, self._exp_neg_lambda)
        for _ in range(n_claims):
            value -= self.jump_low + self._jump_span * rng.random()
        return value

    def apply_impulse(self, state: float, magnitude: float) -> float:
        return state + magnitude

    def mean_drift(self) -> float:
        """Expected change of ``U`` per unit time."""
        mean_jump = 0.5 * (self.jump_low + self.jump_high)
        return self.premium_rate - self.jump_rate * mean_jump

    @staticmethod
    def surplus(state: float) -> float:
        """Real-valued evaluation ``z``: the surplus ``U(t)`` (paper §6)."""
        return float(state)
