"""Geometric Brownian motion — synthetic stand-in for real stock data.

The paper trains its LSTM-RNN-MDN model on Google's 5-year daily stock
prices (2015-2020).  That data is not available offline, so we generate
a synthetic daily price series from a geometric Brownian motion
calibrated to the same regime: start near $520, drift such that the
series roughly triples over ~1250 trading days, and daily volatility of
about 1.5 %.  The series exercises the same code path (sequence-model
training on a single long price series) as the real data would.

:class:`GBMProcess` is also usable directly as a simulation model — a
useful lightweight "stock" process for examples and tests.
"""

from __future__ import annotations

import math
import random

import numpy as np

from .base import (ImmutableStateProcess, VectorizedProcess,
                   register_batch_z, scalar_state_column)


class GBMProcess(ImmutableStateProcess, VectorizedProcess):
    """Geometric Brownian motion observed at integer times (days).

    ``S_t = S_{t-1} * exp((mu - sigma^2/2) + sigma * Z_t)`` with
    ``Z_t ~ N(0, 1)``; ``mu`` and ``sigma`` are per-step (daily) drift
    and volatility.
    """

    supports_out = True

    def __init__(self, start_price: float = 520.0, mu: float = 0.00082,
                 sigma: float = 0.015):
        if start_price <= 0:
            raise ValueError(f"start_price must be > 0, got {start_price}")
        if sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {sigma}")
        self.start_price = start_price
        self.mu = mu
        self.sigma = sigma
        self._log_drift = mu - 0.5 * sigma * sigma

    def initial_state(self) -> float:
        return float(self.start_price)

    def step(self, state: float, t: int, rng: random.Random) -> float:
        return state * math.exp(self._log_drift + self.sigma * rng.gauss(0.0, 1.0))

    def initial_states(self, n: int) -> np.ndarray:
        return np.full(n, float(self.start_price), dtype=np.float64)

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator,
                   out: np.ndarray | None = None) -> np.ndarray:
        shocks = rng.standard_normal(len(states))
        factors = np.exp(self._log_drift + self.sigma * shocks)
        return np.multiply(states, factors, out=out)

    def apply_impulse(self, state: float, magnitude: float) -> float:
        return state + magnitude

    def apply_impulse_batch(self, states: np.ndarray, rows,
                            magnitudes) -> None:
        column = states if states.ndim == 1 else states[:, 0]
        column[rows] += magnitudes

    # --- fusion hooks -------------------------------------------------

    def fusion_key(self):
        return ("gbm",)

    def fusion_params(self) -> dict:
        return {"log_drift": self._log_drift, "sigma": self.sigma}

    @staticmethod
    def fused_step_batch(row_params, states, t, rng, out=None):
        shocks = rng.standard_normal(len(states))
        shocks *= row_params["sigma"]
        shocks += row_params["log_drift"]
        factors = np.exp(shocks, out=shocks)
        return np.multiply(states, factors[:, None], out=out)

    @staticmethod
    def price(state: float) -> float:
        """Real-valued evaluation ``z``: the simulated price."""
        return float(state)


register_batch_z(GBMProcess.price, scalar_state_column)


def synthetic_stock_series(n_days: int = 1258, seed: int = 20150102,
                           start_price: float = 520.0, mu: float = 0.00082,
                           sigma: float = 0.015) -> list:
    """Generate the synthetic "Google 2015-2020" daily close series.

    1258 trading days ~ 5 calendar years.  Deterministic under the
    default seed so the RNN substrate trains on a fixed dataset.
    """
    if n_days < 2:
        raise ValueError(f"need at least 2 days, got {n_days}")
    process = GBMProcess(start_price=start_price, mu=mu, sigma=sigma)
    rng = random.Random(seed)
    price = process.initial_state()
    series = [price]
    for t in range(1, n_days):
        price = process.step(price, t, rng)
        series.append(price)
    return series


def log_returns(prices: list) -> list:
    """Convert a price series to log-returns (length ``len(prices) - 1``)."""
    if len(prices) < 2:
        raise ValueError("need at least two prices")
    return [math.log(b / a) for a, b in zip(prices, prices[1:])]
