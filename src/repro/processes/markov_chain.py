"""Finite time-homogeneous Markov chains (Section 2.1, model example 2).

Beyond being one of the paper's motivating model classes, finite chains
are the backbone of our validation strategy: their durability-query
answers can be computed *exactly* by dynamic programming
(:func:`repro.core.analytic.hitting_probability`), so every sampler in
the library is tested against closed-form ground truth.
"""

from __future__ import annotations

import bisect
import random
from typing import Sequence

import numpy as np

from .base import (ImmutableStateProcess, VectorizedProcess,
                   register_batch_z, scalar_state_column)


class MarkovChainProcess(ImmutableStateProcess, VectorizedProcess):
    """A finite discrete-time Markov chain over states ``0..n-1``.

    Parameters
    ----------
    transition_matrix:
        Row-stochastic ``n x n`` matrix; ``P[i][j]`` is the probability
        of moving from state ``i`` to state ``j``.
    start:
        Initial state index.
    values:
        Optional real value per state used as the ``z`` evaluation; by
        default the state index itself.
    """

    def __init__(self, transition_matrix: Sequence[Sequence[float]],
                 start: int = 0, values: Sequence[float] | None = None):
        matrix = [list(map(float, row)) for row in transition_matrix]
        n = len(matrix)
        if n == 0:
            raise ValueError("transition matrix must be non-empty")
        for i, row in enumerate(matrix):
            if len(row) != n:
                raise ValueError(
                    f"row {i} has length {len(row)}, expected {n}"
                )
            if any(p < -1e-12 for p in row):
                raise ValueError(f"row {i} has negative probabilities")
            total = sum(row)
            if abs(total - 1.0) > 1e-9:
                raise ValueError(
                    f"row {i} sums to {total}, expected 1.0"
                )
        if not 0 <= start < n:
            raise ValueError(f"start state {start} out of range [0, {n})")
        if values is None:
            values = [float(i) for i in range(n)]
        if len(values) != n:
            raise ValueError(
                f"values must have length {n}, got {len(values)}"
            )
        self.matrix = matrix
        self.start = start
        self.values = [float(v) for v in values]
        # Pre-compute cumulative rows for O(log n) sampling.
        self._cumulative = []
        for row in matrix:
            acc, cum = 0.0, []
            for p in row:
                acc += p
                cum.append(acc)
            cum[-1] = 1.0 + 1e-12  # guard against float round-off
            self._cumulative.append(cum)
        self._cumulative_array = np.asarray(self._cumulative)
        self._value_array = np.asarray(self.values, dtype=np.float64)

    @property
    def num_states(self) -> int:
        return len(self.matrix)

    def initial_state(self) -> int:
        return self.start

    def step(self, state: int, t: int, rng: random.Random) -> int:
        return bisect.bisect_right(self._cumulative[state], rng.random())

    def initial_states(self, n: int) -> np.ndarray:
        return np.full(n, self.start, dtype=np.int64)

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator) -> np.ndarray:
        # Row-wise bisect_right over the cumulative transition rows:
        # count the cumulative entries <= u, exactly as the scalar step.
        rows = self._cumulative_array[states]
        u = rng.random(len(states))
        return (rows <= u[:, None]).sum(axis=1)

    def state_value(self, state: int) -> float:
        """Real-valued evaluation ``z`` of a state."""
        return self.values[state]

    # --- fusion hooks -------------------------------------------------

    def fusion_key(self):
        """Chains over equally-sized state spaces fuse.

        The state-space size is the only *shape* the stacked parameter
        tensor depends on; the transition probabilities themselves are
        per-member data (``fusion_params``).  Per-state ``values`` stay
        member-local: a fused fleet scores rows through a shared ``z``
        (e.g. :meth:`state_index`), not per-member value tables.
        """
        return ("markov_chain", self.num_states)

    def fusion_params(self) -> dict:
        # One (n, n) cumulative-row matrix per member; FusedBatch
        # stacks them into a (k, n, n) tensor and gathers (rows, n, n)
        # slices by owner.
        return {"cumulative": self._cumulative_array}

    @staticmethod
    def fused_step_batch(row_params, states, t, rng, out=None):
        indices = states[:, 0].astype(np.intp)
        # row_params["cumulative"][i] is row i's member's full matrix;
        # select each row's *current-state* cumulative row, then
        # bisect exactly as the unfused batched step.
        cumulative = row_params["cumulative"][
            np.arange(len(indices)), indices]
        u = rng.random(len(indices))
        successors = (cumulative <= u[:, None]).sum(axis=1)
        if out is None:
            out = states.copy()
        out[:, 0] = successors
        return out

    @staticmethod
    def state_index(state) -> float:
        """Shared ``z`` for fused chain fleets: the state index itself.

        Unlike the per-instance :meth:`state_value` (a bound method
        carrying a member-local value table), this is one plain
        function every member shares, so fused fleet passes and the
        engine's structural cohort grouping can use it.  Equals
        ``state_value`` whenever ``values`` is the default identity
        mapping.
        """
        return float(state)


register_batch_z(
    MarkovChainProcess.state_value,
    lambda self, states: self._value_array[
        scalar_state_column(states).astype(np.intp)])
register_batch_z(MarkovChainProcess.state_index, scalar_state_column)


def birth_death_chain(n: int, p_up: float, p_down: float,
                      start: int = 0) -> MarkovChainProcess:
    """Build a birth-death chain on ``0..n-1`` with absorbing top state.

    From interior state ``i`` the chain moves to ``i+1`` w.p. ``p_up``,
    to ``i-1`` w.p. ``p_down`` and stays otherwise; state 0 cannot move
    down and state ``n-1`` is absorbing.  This is the standard shape of a
    durability target ("reach backlog n-1") and, being banded, keeps the
    exact DP oracle cheap even for wide chains.
    """
    if n < 2:
        raise ValueError(f"need at least 2 states, got {n}")
    if p_up < 0 or p_down < 0 or p_up + p_down > 1.0 + 1e-12:
        raise ValueError(
            f"invalid probabilities p_up={p_up}, p_down={p_down}"
        )
    matrix = []
    for i in range(n):
        row = [0.0] * n
        if i == n - 1:
            row[i] = 1.0
        elif i == 0:
            row[1] = p_up
            row[0] = 1.0 - p_up
        else:
            row[i + 1] = p_up
            row[i - 1] = p_down
            row[i] = 1.0 - p_up - p_down
        matrix.append(row)
    return MarkovChainProcess(matrix, start=start)
