"""Tandem queue model (Section 6, experimental model 1).

Customers arrive at Queue 1 as a Poisson process with rate ``lam``;
Queue 1 serves them with exponential service times and feeds Queue 2,
which serves with its own exponential server.  The observed stochastic
process is the number of customers in Queue 2, sampled at integer times
(the paper's discrete time domain).

The paper sets ``lam = 0.5`` and ``mu_1 = mu_2 = 2``.  Reading the
service parameters as *mean* service times (2 time units, i.e. rate
0.5) makes both stations critically loaded (utilisation 1), which is the
only reading consistent with the probabilities reported in Table 3
(e.g. Queue 2 reaching 20 customers within 500 steps with probability
~17 %); with service *rates* of 2 the backlog would almost surely never
exceed a handful of customers.  We therefore expose ``mean_service``
parameters, defaulting to the paper's values under that reading.

Within each unit time step the embedded continuous-time Markov chain is
simulated exactly (Gillespie); thanks to the memorylessness of the
exponential clocks, restarting the clocks at integer boundaries does not
change the law of the process.
"""

from __future__ import annotations

import random

import numpy as np

from .base import ImmutableStateProcess, VectorizedProcess, register_batch_z

QueueState = tuple  # (customers in queue 1, customers in queue 2)


class TandemQueueProcess(ImmutableStateProcess, VectorizedProcess):
    """Two exponential queues in tandem, observed at integer times.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate into Queue 1 (paper: 0.5).
    mean_service1, mean_service2:
        Mean service times of the two stations (paper: 2.0 each, i.e.
        service rate 0.5 — critical load).
    """

    def __init__(self, arrival_rate: float = 0.5,
                 mean_service1: float = 2.0, mean_service2: float = 2.0):
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be > 0, got {arrival_rate}")
        if mean_service1 <= 0 or mean_service2 <= 0:
            raise ValueError("mean service times must be > 0")
        self.arrival_rate = arrival_rate
        self.mean_service1 = mean_service1
        self.mean_service2 = mean_service2
        self._mu1 = 1.0 / mean_service1
        self._mu2 = 1.0 / mean_service2

    def initial_state(self) -> QueueState:
        """The paper always starts from an empty system."""
        return (0, 0)

    def step(self, state: QueueState, t: int, rng: random.Random) -> QueueState:
        n1, n2 = state
        lam, mu1, mu2 = self.arrival_rate, self._mu1, self._mu2
        expovariate, uniform = rng.expovariate, rng.random
        clock = 0.0
        while True:
            r1 = mu1 if n1 > 0 else 0.0
            r2 = mu2 if n2 > 0 else 0.0
            total = lam + r1 + r2
            clock += expovariate(total)
            if clock >= 1.0:
                # Exponential clocks are memoryless: discarding the
                # residual time at the unit boundary is exact.
                return (n1, n2)
            u = uniform() * total
            if u < lam:
                n1 += 1
            elif u < lam + r1:
                n1 -= 1
                n2 += 1
            else:
                n2 -= 1

    def initial_states(self, n: int) -> np.ndarray:
        """State array of shape ``(n, 2)``: one (queue1, queue2) per row."""
        return np.zeros((n, 2), dtype=np.int64)

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator) -> np.ndarray:
        """Advance every queue pair through one unit of Gillespie time.

        All rows race their embedded CTMCs in lock-step: each sweep
        draws one event for every path whose clock is still inside the
        unit interval, then drops finished paths from the active set.
        The per-path event sequence has exactly the law of the scalar
        loop — only the interleaving of draws across paths differs.
        """
        n1 = states[:, 0].astype(np.int64, copy=True)
        n2 = states[:, 1].astype(np.int64, copy=True)
        lam, mu1, mu2 = self.arrival_rate, self._mu1, self._mu2
        clock = np.zeros(len(states))
        active = np.arange(len(states))
        while active.size:
            r1 = np.where(n1[active] > 0, mu1, 0.0)
            r2 = np.where(n2[active] > 0, mu2, 0.0)
            total = lam + r1 + r2
            clock[active] += rng.exponential(1.0, active.size) / total
            alive = clock[active] < 1.0
            active = active[alive]
            if not active.size:
                break
            u = rng.random(active.size) * total[alive]
            r1 = r1[alive]
            arrival = u < lam
            service1 = ~arrival & (u < lam + r1)
            service2 = ~arrival & ~service1
            n1[active[arrival]] += 1
            moved = active[service1]
            n1[moved] -= 1
            n2[moved] += 1
            n2[active[service2]] -= 1
        return np.stack([n1, n2], axis=1)

    def apply_impulse(self, state: QueueState, magnitude: float) -> QueueState:
        """Inject ``magnitude`` extra customers directly into Queue 2."""
        n1, n2 = state
        return (n1, max(0, n2 + int(magnitude)))

    @staticmethod
    def queue2_length(state: QueueState) -> float:
        """Real-valued evaluation ``z``: the Queue 2 backlog (paper §6)."""
        return float(state[1])

    @staticmethod
    def queue1_length(state: QueueState) -> float:
        return float(state[0])

    @staticmethod
    def total_customers(state: QueueState) -> float:
        return float(state[0] + state[1])


def _queue_rows(states: np.ndarray) -> np.ndarray:
    # Object arrays (ScalarFallback wrapping, e.g. a volatile queue)
    # hold tuple states; unpack before the column reads.
    return np.asarray([tuple(s) for s in states]) \
        if states.dtype == object else states


register_batch_z(TandemQueueProcess.queue2_length,
                 lambda states: _queue_rows(states)[:, 1].astype(np.float64))
register_batch_z(TandemQueueProcess.queue1_length,
                 lambda states: _queue_rows(states)[:, 0].astype(np.float64))
register_batch_z(
    TandemQueueProcess.total_customers,
    lambda states: _queue_rows(states).sum(axis=1).astype(np.float64))
