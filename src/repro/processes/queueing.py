"""Tandem queue model (Section 6, experimental model 1).

Customers arrive at Queue 1 as a Poisson process with rate ``lam``;
Queue 1 serves them with exponential service times and feeds Queue 2,
which serves with its own exponential server.  The observed stochastic
process is the number of customers in Queue 2, sampled at integer times
(the paper's discrete time domain).

The paper sets ``lam = 0.5`` and ``mu_1 = mu_2 = 2``.  Reading the
service parameters as *mean* service times (2 time units, i.e. rate
0.5) makes both stations critically loaded (utilisation 1), which is the
only reading consistent with the probabilities reported in Table 3
(e.g. Queue 2 reaching 20 customers within 500 steps with probability
~17 %); with service *rates* of 2 the backlog would almost surely never
exceed a handful of customers.  We therefore expose ``mean_service``
parameters, defaulting to the paper's values under that reading.

Within each unit time step the embedded continuous-time Markov chain is
simulated exactly (Gillespie); thanks to the memorylessness of the
exponential clocks, restarting the clocks at integer boundaries does not
change the law of the process.
"""

from __future__ import annotations

import random

import numpy as np

from .base import ImmutableStateProcess, VectorizedProcess, register_batch_z

QueueState = tuple  # (customers in queue 1, customers in queue 2)


def _gillespie_unit_interval(n1: np.ndarray, n2: np.ndarray, lam, mu1, mu2,
                             rng: np.random.Generator) -> None:
    """Race every row's embedded CTMC to the unit boundary, in place.

    ``n1``/``n2`` are mutated to the queue lengths at the end of the
    unit interval.  ``lam``/``mu1``/``mu2`` may be scalars (one shared
    parameterisation, the native batched path) or per-row arrays (the
    fused path, where every row carries its own member's rates).
    """
    n = len(n1)
    lam = np.broadcast_to(np.asarray(lam, dtype=np.float64), (n,))
    mu1 = np.broadcast_to(np.asarray(mu1, dtype=np.float64), (n,))
    mu2 = np.broadcast_to(np.asarray(mu2, dtype=np.float64), (n,))
    clock = np.zeros(n)
    active = np.arange(n)
    while active.size:
        la = lam[active]
        r1 = np.where(n1[active] > 0, mu1[active], 0.0)
        r2 = np.where(n2[active] > 0, mu2[active], 0.0)
        total = la + r1 + r2
        clock[active] += rng.exponential(1.0, active.size) / total
        alive = clock[active] < 1.0
        active = active[alive]
        if not active.size:
            break
        u = rng.random(active.size) * total[alive]
        la = la[alive]
        r1 = r1[alive]
        arrival = u < la
        service1 = ~arrival & (u < la + r1)
        service2 = ~arrival & ~service1
        n1[active[arrival]] += 1
        moved = active[service1]
        n1[moved] -= 1
        n2[moved] += 1
        n2[active[service2]] -= 1


class TandemQueueProcess(ImmutableStateProcess, VectorizedProcess):
    """Two exponential queues in tandem, observed at integer times.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate into Queue 1 (paper: 0.5).
    mean_service1, mean_service2:
        Mean service times of the two stations (paper: 2.0 each, i.e.
        service rate 0.5 — critical load).
    """

    supports_out = True

    def __init__(self, arrival_rate: float = 0.5,
                 mean_service1: float = 2.0, mean_service2: float = 2.0):
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be > 0, got {arrival_rate}")
        if mean_service1 <= 0 or mean_service2 <= 0:
            raise ValueError("mean service times must be > 0")
        self.arrival_rate = arrival_rate
        self.mean_service1 = mean_service1
        self.mean_service2 = mean_service2
        self._mu1 = 1.0 / mean_service1
        self._mu2 = 1.0 / mean_service2

    def initial_state(self) -> QueueState:
        """The paper always starts from an empty system."""
        return (0, 0)

    def step(self, state: QueueState, t: int, rng: random.Random) -> QueueState:
        n1, n2 = state
        lam, mu1, mu2 = self.arrival_rate, self._mu1, self._mu2
        expovariate, uniform = rng.expovariate, rng.random
        clock = 0.0
        while True:
            r1 = mu1 if n1 > 0 else 0.0
            r2 = mu2 if n2 > 0 else 0.0
            total = lam + r1 + r2
            clock += expovariate(total)
            if clock >= 1.0:
                # Exponential clocks are memoryless: discarding the
                # residual time at the unit boundary is exact.
                return (n1, n2)
            u = uniform() * total
            if u < lam:
                n1 += 1
            elif u < lam + r1:
                n1 -= 1
                n2 += 1
            else:
                n2 -= 1

    def initial_states(self, n: int) -> np.ndarray:
        """State array of shape ``(n, 2)``: one (queue1, queue2) per row."""
        return np.zeros((n, 2), dtype=np.int64)

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator,
                   out: np.ndarray | None = None) -> np.ndarray:
        """Advance every queue pair through one unit of Gillespie time.

        All rows race their embedded CTMCs in lock-step: each sweep
        draws one event for every path whose clock is still inside the
        unit interval, then drops finished paths from the active set.
        The per-path event sequence has exactly the law of the scalar
        loop — only the interleaving of draws across paths differs.
        """
        n1 = states[:, 0].astype(np.int64, copy=True)
        n2 = states[:, 1].astype(np.int64, copy=True)
        _gillespie_unit_interval(n1, n2, self.arrival_rate, self._mu1,
                                 self._mu2, rng)
        if out is None:
            return np.stack([n1, n2], axis=1)
        out[:, 0] = n1
        out[:, 1] = n2
        return out

    def apply_impulse(self, state: QueueState, magnitude: float) -> QueueState:
        """Inject ``magnitude`` extra customers directly into Queue 2."""
        n1, n2 = state
        return (n1, max(0, n2 + int(magnitude)))

    def apply_impulse_batch(self, states: np.ndarray, rows,
                            magnitudes) -> None:
        extra = np.trunc(np.asarray(magnitudes, dtype=np.float64))
        column = states[:, 1]
        column[rows] = np.maximum(0, column[rows]
                                  + extra.astype(column.dtype))

    # --- fusion hooks -------------------------------------------------

    def fusion_key(self):
        return ("tandem_queue",)

    def fusion_params(self) -> dict:
        return {"arrival_rate": self.arrival_rate,
                "mu1": self._mu1, "mu2": self._mu2}

    @staticmethod
    def fused_step_batch(row_params, states, t, rng, out=None):
        n1 = states[:, 0].astype(np.int64)
        n2 = states[:, 1].astype(np.int64)
        _gillespie_unit_interval(n1, n2, row_params["arrival_rate"],
                                 row_params["mu1"], row_params["mu2"], rng)
        if out is None:
            return np.stack([n1, n2], axis=1).astype(np.float64)
        out[:, 0] = n1
        out[:, 1] = n2
        return out

    @staticmethod
    def queue2_length(state: QueueState) -> float:
        """Real-valued evaluation ``z``: the Queue 2 backlog (paper §6)."""
        return float(state[1])

    @staticmethod
    def queue1_length(state: QueueState) -> float:
        return float(state[0])

    @staticmethod
    def total_customers(state: QueueState) -> float:
        return float(state[0] + state[1])


def _queue_rows(states: np.ndarray) -> np.ndarray:
    # Object arrays (ScalarFallback wrapping, e.g. a volatile queue)
    # hold tuple states; unpack before the column reads.
    return np.asarray([tuple(s) for s in states]) \
        if states.dtype == object else states


register_batch_z(TandemQueueProcess.queue2_length,
                 lambda states: _queue_rows(states)[:, 1].astype(np.float64))
register_batch_z(TandemQueueProcess.queue1_length,
                 lambda states: _queue_rows(states)[:, 0].astype(np.float64))
register_batch_z(
    TandemQueueProcess.total_customers,
    lambda states: _queue_rows(states).sum(axis=1).astype(np.float64))
