"""Simple random walks — the paper's canonical analytically-solvable model.

Random walks appear in Section 2.2 as an example of a process whose
first-hitting probabilities admit analytical solutions.  We use them as
*test oracles*: :mod:`repro.core.analytic` computes their hitting
probabilities exactly by dynamic programming, giving ground truth for
estimator validation.
"""

from __future__ import annotations

import random

import numpy as np

from .base import (ImmutableStateProcess, VectorizedProcess,
                   register_batch_z, scalar_state_column)


class RandomWalkProcess(ImmutableStateProcess, VectorizedProcess):
    """A lazy simple random walk on the integers.

    At each step the walk moves up by 1 with probability ``p_up``, down
    by 1 with probability ``p_down``, and stays put otherwise.  The state
    is the current position (an ``int``).
    """

    supports_out = True

    def __init__(self, p_up: float = 0.5, p_down: float | None = None,
                 start: int = 0):
        if p_down is None:
            p_down = 1.0 - p_up
        if p_up < 0 or p_down < 0 or p_up + p_down > 1.0 + 1e-12:
            raise ValueError(
                f"invalid move probabilities p_up={p_up}, p_down={p_down}"
            )
        self.p_up = p_up
        self.p_down = p_down
        self.start = start

    def initial_state(self) -> int:
        return self.start

    def step(self, state: int, t: int, rng: random.Random) -> int:
        u = rng.random()
        if u < self.p_up:
            return state + 1
        if u < self.p_up + self.p_down:
            return state - 1
        return state

    def initial_states(self, n: int) -> np.ndarray:
        return np.full(n, self.start, dtype=np.int64)

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator,
                   out: np.ndarray | None = None) -> np.ndarray:
        u = rng.random(len(states))
        moves = np.where(u < self.p_up, 1,
                         np.where(u < self.p_up + self.p_down, -1, 0))
        return np.add(states, moves, out=out)

    def apply_impulse(self, state: int, magnitude: float) -> int:
        return state + int(magnitude)

    def apply_impulse_batch(self, states: np.ndarray, rows,
                            magnitudes) -> None:
        shift = np.trunc(np.asarray(magnitudes, dtype=np.float64))
        column = states if states.ndim == 1 else states[:, 0]
        column[rows] += shift.astype(column.dtype)

    # --- fusion hooks -------------------------------------------------

    def fusion_key(self):
        return ("random_walk",)

    def fusion_params(self) -> dict:
        return {"p_up": self.p_up, "p_down": self.p_down}

    @staticmethod
    def fused_step_batch(row_params, states, t, rng, out=None):
        u = rng.random(len(states))
        p_up = row_params["p_up"]
        moves = np.where(u < p_up, 1.0,
                         np.where(u < p_up + row_params["p_down"],
                                  -1.0, 0.0))
        return np.add(states, moves[:, None], out=out)

    @staticmethod
    def position(state: int) -> float:
        """Real-valued evaluation ``z`` of a state: the walk position."""
        return float(state)


register_batch_z(RandomWalkProcess.position, scalar_state_column)


class GaussianWalkProcess(ImmutableStateProcess, VectorizedProcess):
    """A random walk with Gaussian increments ``N(drift, sigma)``.

    The continuous-state cousin of :class:`RandomWalkProcess`; its value
    can jump across several levels in one step, which makes it a handy
    small model for exercising level-skipping (Section 4).  It is also
    the simplest member of the Gaussian-step family supported by the
    importance-sampling comparator (:mod:`repro.core.importance`).
    """

    supports_out = True

    def __init__(self, drift: float = 0.0, sigma: float = 1.0,
                 start: float = 0.0):
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.drift = drift
        self.sigma = sigma
        self.start = start

    def initial_state(self) -> float:
        return self.start

    def step(self, state: float, t: int, rng: random.Random) -> float:
        return state + rng.gauss(self.drift, self.sigma)

    def initial_states(self, n: int) -> np.ndarray:
        return np.full(n, self.start, dtype=np.float64)

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator,
                   out: np.ndarray | None = None) -> np.ndarray:
        return np.add(states, rng.normal(self.drift, self.sigma,
                                         len(states)), out=out)

    # --- Gaussian-step protocol (used by importance sampling) ---------

    def step_with_noise(self, state: float, noise: float) -> float:
        """Advance deterministically given the Gaussian noise draw."""
        return state + self.drift + noise

    def noise_sigma(self) -> float:
        return self.sigma

    def apply_impulse(self, state: float, magnitude: float) -> float:
        return state + magnitude

    def apply_impulse_batch(self, states: np.ndarray, rows,
                            magnitudes) -> None:
        column = states if states.ndim == 1 else states[:, 0]
        column[rows] += magnitudes

    # --- fusion hooks -------------------------------------------------

    def fusion_key(self):
        return ("gaussian_walk",)

    def fusion_params(self) -> dict:
        return {"drift": self.drift, "sigma": self.sigma}

    @staticmethod
    def fused_step_batch(row_params, states, t, rng, out=None):
        increments = (row_params["drift"]
                      + row_params["sigma"]
                      * rng.standard_normal(len(states)))
        return np.add(states, increments[:, None], out=out)

    @staticmethod
    def position(state: float) -> float:
        return float(state)


register_batch_z(GaussianWalkProcess.position, scalar_state_column)
