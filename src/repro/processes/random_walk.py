"""Simple random walks — the paper's canonical analytically-solvable model.

Random walks appear in Section 2.2 as an example of a process whose
first-hitting probabilities admit analytical solutions.  We use them as
*test oracles*: :mod:`repro.core.analytic` computes their hitting
probabilities exactly by dynamic programming, giving ground truth for
estimator validation.
"""

from __future__ import annotations

import random

import numpy as np

from .base import ImmutableStateProcess, VectorizedProcess, register_batch_z


class RandomWalkProcess(ImmutableStateProcess, VectorizedProcess):
    """A lazy simple random walk on the integers.

    At each step the walk moves up by 1 with probability ``p_up``, down
    by 1 with probability ``p_down``, and stays put otherwise.  The state
    is the current position (an ``int``).
    """

    def __init__(self, p_up: float = 0.5, p_down: float | None = None,
                 start: int = 0):
        if p_down is None:
            p_down = 1.0 - p_up
        if p_up < 0 or p_down < 0 or p_up + p_down > 1.0 + 1e-12:
            raise ValueError(
                f"invalid move probabilities p_up={p_up}, p_down={p_down}"
            )
        self.p_up = p_up
        self.p_down = p_down
        self.start = start

    def initial_state(self) -> int:
        return self.start

    def step(self, state: int, t: int, rng: random.Random) -> int:
        u = rng.random()
        if u < self.p_up:
            return state + 1
        if u < self.p_up + self.p_down:
            return state - 1
        return state

    def initial_states(self, n: int) -> np.ndarray:
        return np.full(n, self.start, dtype=np.int64)

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator) -> np.ndarray:
        u = rng.random(len(states))
        moves = np.where(u < self.p_up, 1,
                         np.where(u < self.p_up + self.p_down, -1, 0))
        return states + moves

    def apply_impulse(self, state: int, magnitude: float) -> int:
        return state + int(magnitude)

    @staticmethod
    def position(state: int) -> float:
        """Real-valued evaluation ``z`` of a state: the walk position."""
        return float(state)


register_batch_z(RandomWalkProcess.position,
                 lambda states: np.asarray(states, dtype=np.float64))


class GaussianWalkProcess(ImmutableStateProcess, VectorizedProcess):
    """A random walk with Gaussian increments ``N(drift, sigma)``.

    The continuous-state cousin of :class:`RandomWalkProcess`; its value
    can jump across several levels in one step, which makes it a handy
    small model for exercising level-skipping (Section 4).  It is also
    the simplest member of the Gaussian-step family supported by the
    importance-sampling comparator (:mod:`repro.core.importance`).
    """

    def __init__(self, drift: float = 0.0, sigma: float = 1.0,
                 start: float = 0.0):
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.drift = drift
        self.sigma = sigma
        self.start = start

    def initial_state(self) -> float:
        return self.start

    def step(self, state: float, t: int, rng: random.Random) -> float:
        return state + rng.gauss(self.drift, self.sigma)

    def initial_states(self, n: int) -> np.ndarray:
        return np.full(n, self.start, dtype=np.float64)

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator) -> np.ndarray:
        return states + rng.normal(self.drift, self.sigma, len(states))

    # --- Gaussian-step protocol (used by importance sampling) ---------

    def step_with_noise(self, state: float, noise: float) -> float:
        """Advance deterministically given the Gaussian noise draw."""
        return state + self.drift + noise

    def noise_sigma(self) -> float:
        return self.sigma

    def apply_impulse(self, state: float, magnitude: float) -> float:
        return state + magnitude

    @staticmethod
    def position(state: float) -> float:
        return float(state)


register_batch_z(GaussianWalkProcess.position,
                 lambda states: np.asarray(states, dtype=np.float64))
