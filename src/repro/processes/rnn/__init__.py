"""LSTM-RNN-MDN sequence model, implemented from scratch in numpy."""

from .lstm import LSTMLayer, sigmoid
from .mdn import MDNHead
from .model import LSTMMDNModel
from .stock_model import (StockRNNProcess, build_stock_process,
                          pretrained_stock_process)
from .train import (Adam, TrainingResult, clip_gradients, make_windows,
                    train_model)

__all__ = [
    "Adam", "LSTMLayer", "LSTMMDNModel", "MDNHead", "StockRNNProcess",
    "TrainingResult", "build_stock_process", "clip_gradients",
    "make_windows", "pretrained_stock_process", "sigmoid", "train_model",
]
