"""A from-scratch LSTM layer in numpy (forward + BPTT backward).

The paper's third experimental model is an LSTM-RNN with a mixture
density head (Section 6, Figure 5).  No deep-learning framework is
available offline, so this module implements the standard LSTM cell

    z = [x, h] W + b,          (i, f, o, g) = split(z)
    c' = sigmoid(f) * c + sigmoid(i) * tanh(g)
    h' = sigmoid(o) * tanh(c')

with exact backpropagation through time.  Weights follow the usual
Glorot-uniform initialisation; the forget-gate bias starts at 1.0 (the
standard trick that stabilises early training).
"""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class LSTMLayer:
    """One LSTM layer processing inputs of shape ``(batch, input_size)``.

    Parameters are stored in a flat dict so generic optimizers
    (:class:`repro.processes.rnn.train.Adam`) can walk them:

    * ``W`` — ``(input_size + hidden_size, 4 * hidden_size)`` weights,
      gate order ``[i, f, o, g]``;
    * ``b`` — ``(4 * hidden_size,)`` biases.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator):
        if input_size < 1 or hidden_size < 1:
            raise ValueError(
                f"sizes must be >= 1, got input={input_size}, "
                f"hidden={hidden_size}"
            )
        self.input_size = input_size
        self.hidden_size = hidden_size
        fan_in = input_size + hidden_size
        limit = np.sqrt(6.0 / (fan_in + 4 * hidden_size))
        weights = rng.uniform(-limit, limit, size=(fan_in, 4 * hidden_size))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0  # forget-gate bias
        self.params = {"W": weights, "b": bias}

    def zero_state(self, batch: int) -> tuple:
        h = np.zeros((batch, self.hidden_size))
        c = np.zeros((batch, self.hidden_size))
        return h, c

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------

    def step(self, x: np.ndarray, h: np.ndarray, c: np.ndarray):
        """One time step.  Returns ``(h_next, c_next, cache)``."""
        hidden = self.hidden_size
        xh = np.concatenate([x, h], axis=1)
        z = xh @ self.params["W"] + self.params["b"]
        i = sigmoid(z[:, :hidden])
        f = sigmoid(z[:, hidden:2 * hidden])
        o = sigmoid(z[:, 2 * hidden:3 * hidden])
        g = np.tanh(z[:, 3 * hidden:])
        c_next = f * c + i * g
        tanh_c = np.tanh(c_next)
        h_next = o * tanh_c
        cache = (xh, i, f, o, g, c, tanh_c)
        return h_next, c_next, cache

    def forward(self, xs: np.ndarray, h: np.ndarray, c: np.ndarray):
        """Process a sequence ``xs`` of shape ``(T, batch, input_size)``.

        Returns ``(hs, (h_T, c_T), caches)`` where ``hs`` has shape
        ``(T, batch, hidden_size)``.
        """
        steps = xs.shape[0]
        hs = np.empty((steps, xs.shape[1], self.hidden_size))
        caches = []
        for t in range(steps):
            h, c, cache = self.step(xs[t], h, c)
            hs[t] = h
            caches.append(cache)
        return hs, (h, c), caches

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------

    def backward(self, dhs: np.ndarray, caches: list):
        """Backpropagate through time.

        ``dhs`` carries the loss gradient w.r.t. every hidden output
        (shape like the forward ``hs``).  Returns ``(dxs, grads)`` with
        ``dxs`` the gradient w.r.t. the inputs and ``grads`` matching
        the parameter dict.  Gradients w.r.t. the initial state are
        discarded (training always starts from zero states).
        """
        hidden = self.hidden_size
        weights = self.params["W"]
        d_weights = np.zeros_like(weights)
        d_bias = np.zeros_like(self.params["b"])
        steps = dhs.shape[0]
        batch = dhs.shape[1]
        dxs = np.empty((steps, batch, self.input_size))
        dh_next = np.zeros((batch, hidden))
        dc_next = np.zeros((batch, hidden))

        for t in range(steps - 1, -1, -1):
            xh, i, f, o, g, c_prev, tanh_c = caches[t]
            dh = dhs[t] + dh_next
            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c * tanh_c) + dc_next
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_next = dc * f
            # Gate pre-activations.
            dz = np.concatenate([
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                do * o * (1.0 - o),
                dg * (1.0 - g * g),
            ], axis=1)
            d_weights += xh.T @ dz
            d_bias += dz.sum(axis=0)
            dxh = dz @ weights.T
            dxs[t] = dxh[:, :self.input_size]
            dh_next = dxh[:, self.input_size:]

        return dxs, {"W": d_weights, "b": d_bias}
