"""Mixture Density Network head (Bishop 1994), numpy implementation.

The paper's stock model ends in a mixture layer: given the RNN hidden
state, the MDN outputs the parameters of a ``K``-component Gaussian
mixture over the next (normalised) log-return:

    pi = softmax(h W_pi + b_pi),   mu = h W_mu + b_mu,
    sigma = exp(h W_s + b_s).

Training minimises the negative log-likelihood; the gradients have the
classic closed form through the component responsibilities.
"""

from __future__ import annotations

import math
import random

import numpy as np

# exp(log_sigma) is clamped to keep the NLL finite early in training.
_LOG_SIGMA_MIN = -7.0
_LOG_SIGMA_MAX = 7.0
_LOG_2PI = math.log(2.0 * math.pi)


class MDNHead:
    """Dense layer emitting mixture parameters for a scalar target.

    Parameters: ``W`` of shape ``(hidden, 3K)`` and ``b`` of shape
    ``(3K,)``; column blocks are ``[logits, mu, log_sigma]``.
    """

    def __init__(self, hidden_size: int, n_mixtures: int,
                 rng: np.random.Generator):
        if hidden_size < 1 or n_mixtures < 1:
            raise ValueError(
                f"sizes must be >= 1, got hidden={hidden_size}, "
                f"mixtures={n_mixtures}"
            )
        self.hidden_size = hidden_size
        self.n_mixtures = n_mixtures
        limit = np.sqrt(6.0 / (hidden_size + 3 * n_mixtures))
        self.params = {
            "W": rng.uniform(-limit, limit,
                             size=(hidden_size, 3 * n_mixtures)),
            "b": np.zeros(3 * n_mixtures),
        }
        # Spread the initial means so components differentiate.
        self.params["b"][n_mixtures:2 * n_mixtures] = np.linspace(
            -1.0, 1.0, n_mixtures)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------

    def mixture_parameters(self, h: np.ndarray):
        """Map hidden states ``(batch, hidden)`` to mixture parameters.

        Returns ``(pi, mu, sigma, cache)``; each of shape
        ``(batch, K)``.
        """
        k = self.n_mixtures
        raw = h @ self.params["W"] + self.params["b"]
        logits = raw[:, :k]
        mu = raw[:, k:2 * k]
        log_sigma = np.clip(raw[:, 2 * k:], _LOG_SIGMA_MIN, _LOG_SIGMA_MAX)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp_logits = np.exp(shifted)
        pi = exp_logits / exp_logits.sum(axis=1, keepdims=True)
        sigma = np.exp(log_sigma)
        cache = (h, pi, mu, sigma)
        return pi, mu, sigma, cache

    def negative_log_likelihood(self, cache, y: np.ndarray):
        """Mean NLL of targets ``y`` (shape ``(batch,)``) and its cache.

        Returns ``(loss, responsibilities)``; responsibilities feed the
        backward pass.
        """
        _, pi, mu, sigma = cache
        y = y.reshape(-1, 1)
        # log N(y; mu, sigma) per component, computed in log space.
        z = (y - mu) / sigma
        log_norm = -0.5 * z * z - np.log(sigma) - 0.5 * _LOG_2PI
        log_weighted = np.log(np.maximum(pi, 1e-300)) + log_norm
        top = log_weighted.max(axis=1, keepdims=True)
        log_mix = top.squeeze(1) + np.log(
            np.exp(log_weighted - top).sum(axis=1))
        responsibilities = np.exp(log_weighted - log_mix.reshape(-1, 1))
        return -float(log_mix.mean()), responsibilities

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------

    def backward(self, cache, y: np.ndarray, responsibilities: np.ndarray):
        """Gradients of the mean NLL.  Returns ``(dh, grads)``."""
        h, pi, mu, sigma = cache
        batch = h.shape[0]
        y = y.reshape(-1, 1)
        z = (y - mu) / sigma
        d_logits = (pi - responsibilities) / batch
        d_mu = -responsibilities * z / sigma / batch
        d_log_sigma = responsibilities * (1.0 - z * z) / batch
        d_raw = np.concatenate([d_logits, d_mu, d_log_sigma], axis=1)
        grads = {
            "W": h.T @ d_raw,
            "b": d_raw.sum(axis=0),
        }
        dh = d_raw @ self.params["W"].T
        return dh, grads

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(self, h: np.ndarray, rng: random.Random) -> float:
        """Draw one value from the mixture for a single hidden state.

        ``h`` has shape ``(1, hidden)``; the caller's ``random.Random``
        supplies all randomness (reproducibility contract of the
        process interface).
        """
        pi, mu, sigma, _ = self.mixture_parameters(h)
        u = rng.random()
        acc = 0.0
        component = self.n_mixtures - 1
        for k in range(self.n_mixtures):
            acc += pi[0, k]
            if u < acc:
                component = k
                break
        return rng.gauss(float(mu[0, component]), float(sigma[0, component]))

    def sample_batch(self, h: np.ndarray,
                     rng: np.random.Generator) -> np.ndarray:
        """Draw one value per row from each row's own mixture.

        The batched counterpart of :meth:`sample`: component selection
        is the same inverse-CDF walk (the index of the first cumulative
        weight exceeding the uniform, defaulting to the last component),
        evaluated for all rows with one comparison against the row-wise
        cumulative sums.  Returns shape ``(len(h),)``.
        """
        pi, mu, sigma, _ = self.mixture_parameters(h)
        u = rng.random(len(h))
        cumulative = np.cumsum(pi, axis=1)
        components = np.minimum((cumulative <= u[:, None]).sum(axis=1),
                                self.n_mixtures - 1)
        rows = np.arange(len(h))
        return (mu[rows, components]
                + sigma[rows, components] * rng.standard_normal(len(h)))
