"""Stacked LSTM-MDN sequence model (the paper's Figure 5 architecture).

Two (by default) stacked LSTM layers followed by a mixture density
head, modelling the distribution of the next normalised log-return
given the sequence so far.  The class exposes two faces:

* a *training* face — ``loss_and_gradients`` over teacher-forced
  windows, used by :mod:`repro.processes.rnn.train`;
* a *generation* face — ``begin_state`` / ``advance`` / ``sample_next``
  consumed by :class:`repro.processes.rnn.stock_model.StockRNNProcess`,
  which adapts it to the step-wise simulation interface.
"""

from __future__ import annotations

import random

import numpy as np

from .lstm import LSTMLayer
from .mdn import MDNHead


class LSTMMDNModel:
    """Stacked LSTM layers with an MDN output head (scalar sequences)."""

    def __init__(self, hidden_size: int = 32, n_layers: int = 2,
                 n_mixtures: int = 5, seed: int = 0):
        if n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {n_layers}")
        rng = np.random.default_rng(seed)
        self.hidden_size = hidden_size
        self.n_layers = n_layers
        self.n_mixtures = n_mixtures
        self.layers = []
        input_size = 1
        for _ in range(n_layers):
            self.layers.append(LSTMLayer(input_size, hidden_size, rng))
            input_size = hidden_size
        self.head = MDNHead(hidden_size, n_mixtures, rng)

    # ------------------------------------------------------------------
    # Parameter plumbing (flat dict for generic optimizers / saving)
    # ------------------------------------------------------------------

    def parameters(self) -> dict:
        """Flat ``name -> array`` view of all trainable parameters."""
        params = {}
        for idx, layer in enumerate(self.layers):
            for key, value in layer.params.items():
                params[f"lstm{idx}.{key}"] = value
        for key, value in self.head.params.items():
            params[f"mdn.{key}"] = value
        return params

    def load_parameters(self, params: dict) -> None:
        """Load parameters saved by :meth:`parameters` (shape-checked)."""
        own = self.parameters()
        missing = set(own) - set(params)
        if missing:
            raise ValueError(f"missing parameters: {sorted(missing)}")
        for name, current in own.items():
            incoming = np.asarray(params[name])
            if incoming.shape != current.shape:
                raise ValueError(
                    f"parameter {name} has shape {incoming.shape}, "
                    f"expected {current.shape}"
                )
            current[...] = incoming

    # ------------------------------------------------------------------
    # Training face
    # ------------------------------------------------------------------

    def loss_and_gradients(self, inputs: np.ndarray, targets: np.ndarray):
        """Teacher-forced NLL over a batch of windows.

        ``inputs`` has shape ``(T, batch)`` (scalar sequences) and
        ``targets`` the same shape (next-step values).  Returns
        ``(loss, grads)`` with ``grads`` keyed like :meth:`parameters`.
        """
        steps, batch = inputs.shape
        xs = inputs.reshape(steps, batch, 1)
        layer_caches = []
        for layer in self.layers:
            h0, c0 = layer.zero_state(batch)
            xs, _, caches = layer.forward(xs, h0, c0)
            layer_caches.append(caches)
        hidden = xs.reshape(steps * batch, self.hidden_size)
        _, _, _, mdn_cache = self.head.mixture_parameters(hidden)
        flat_targets = targets.reshape(steps * batch)
        loss, responsibilities = self.head.negative_log_likelihood(
            mdn_cache, flat_targets)
        d_hidden, head_grads = self.head.backward(
            mdn_cache, flat_targets, responsibilities)
        d_layer = d_hidden.reshape(steps, batch, self.hidden_size)
        grads = {f"mdn.{key}": value for key, value in head_grads.items()}
        for idx in range(self.n_layers - 1, -1, -1):
            d_layer, layer_grads = self.layers[idx].backward(
                d_layer, layer_caches[idx])
            for key, value in layer_grads.items():
                grads[f"lstm{idx}.{key}"] = value
        return loss, grads

    def sequence_nll(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Evaluation-only NLL (no gradients)."""
        steps, batch = inputs.shape
        xs = inputs.reshape(steps, batch, 1)
        for layer in self.layers:
            h0, c0 = layer.zero_state(batch)
            xs, _, _ = layer.forward(xs, h0, c0)
        hidden = xs.reshape(steps * batch, self.hidden_size)
        _, _, _, cache = self.head.mixture_parameters(hidden)
        loss, _ = self.head.negative_log_likelihood(
            cache, targets.reshape(steps * batch))
        return loss

    # ------------------------------------------------------------------
    # Generation face
    # ------------------------------------------------------------------

    def begin_state(self) -> tuple:
        """Fresh per-layer ``(h, c)`` states for a batch of one."""
        return tuple(layer.zero_state(1) for layer in self.layers)

    def advance(self, x: float, state: tuple) -> tuple:
        """Feed one scalar input; returns ``(new_state, hidden_row)``."""
        current = np.array([[x]])
        new_state = []
        for layer, (h, c) in zip(self.layers, state):
            h, c, _ = layer.step(current, h, c)
            new_state.append((h, c))
            current = h
        return tuple(new_state), current

    def sample_next(self, hidden_row: np.ndarray,
                    rng: random.Random) -> float:
        """Sample the next value from the MDN given the top hidden row."""
        return self.head.sample(hidden_row, rng)

    def advance_batch(self, xs: np.ndarray, state: list) -> tuple:
        """Feed one scalar input per row through the whole stack.

        The batched generation face: ``xs`` has shape ``(n,)`` and
        ``state`` is a list of per-layer ``(h, c)`` pairs of shape
        ``(n, hidden)``.  Returns ``(new_state, hidden)`` with
        ``hidden`` the top layer's ``(n, hidden)`` output — every row
        advances through one LSTM matmul per layer instead of ``n``.
        """
        current = xs.reshape(-1, 1)
        new_state = []
        for layer, (h, c) in zip(self.layers, state):
            h, c, _ = layer.step(current, h, c)
            new_state.append((h, c))
            current = h
        return new_state, current

    def sample_next_batch(self, hidden: np.ndarray,
                          rng: np.random.Generator) -> np.ndarray:
        """Sample one next value per row from the MDN (batched)."""
        return self.head.sample_batch(hidden, rng)

    def warm_up(self, values, state: tuple | None = None) -> tuple:
        """Run a sequence of scalars through the model (no sampling).

        Returns ``(state, hidden_row)`` after the last input — the
        conditioning context a generation process starts from.
        """
        if state is None:
            state = self.begin_state()
        hidden_row = None
        for value in values:
            state, hidden_row = self.advance(float(value), state)
        if hidden_row is None:
            raise ValueError("warm_up needs at least one value")
        return state, hidden_row
