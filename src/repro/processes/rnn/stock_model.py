"""The black-box stock model: a trained LSTM-MDN as a simulation process.

This is the paper's third experimental substrate (Section 6): an
LSTM-RNN-MDN trained on five years of daily prices, then used as the
step-wise simulation procedure ``g`` for durability queries such as
"will the price reach beta within 200 trading days?".  The query
processor never looks inside — it just calls ``step``.

The process state is ``(per-layer LSTM states, last normalised return,
price)``; a step feeds the last return through the network, samples the
next return from the mixture head, and updates the price
multiplicatively.

``pretrained_stock_process`` trains (once per configuration, cached in
memory and optionally on disk) on the synthetic GBM series standing in
for the Google data — see DESIGN.md, "Substitutions".
"""

from __future__ import annotations

import math
import random
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..base import StochasticProcess, VectorizedProcess, register_batch_z
from ..gbm import log_returns, synthetic_stock_series
from .model import LSTMMDNModel
from .train import TrainingResult, train_model

#: Bound on a single day's sampled log-return (normalised units) — keeps
#: an undertrained mixture component from producing absurd prices.
_MAX_ABS_NORMALIZED_RETURN = 8.0


class StockRNNProcess(StochasticProcess, VectorizedProcess):
    """Wrap a trained LSTM-MDN model as a price simulation process.

    Parameters
    ----------
    model:
        The trained sequence model over *normalised* log-returns.
    return_mean, return_std:
        The normalisation moments of the training returns.
    context_returns:
        Raw (unnormalised) log-returns used to warm the hidden state up
        before simulation starts — the model's conditioning window.
    start_price:
        Price at time 0 (the last training price).

    Batched simulation packs each path's full state into one float row
    — ``[h_0, c_0, ..., h_{L-1}, c_{L-1}, last_return, price]`` — so a
    state array is a plain ``(n, 2*L*hidden + 2)`` matrix.  A
    ``step_batch`` then runs one LSTM matmul per layer over the whole
    batch and one batched MDN sample (``MDNHead.sample_batch``) instead
    of ``n`` scalar network evaluations; row selection and
    ``numpy.repeat`` replication work for free on the packed rows.
    """

    supports_out = True

    def __init__(self, model: LSTMMDNModel, return_mean: float,
                 return_std: float, context_returns: Sequence[float],
                 start_price: float):
        if return_std <= 0:
            raise ValueError(f"return_std must be > 0, got {return_std}")
        if start_price <= 0:
            raise ValueError(f"start_price must be > 0, got {start_price}")
        if not context_returns:
            raise ValueError("context_returns must be non-empty")
        self.model = model
        self.return_mean = return_mean
        self.return_std = return_std
        self.start_price = float(start_price)
        self._context = [(r - return_mean) / return_std
                         for r in context_returns]
        # The warmed-up state is identical for every path: compute once.
        state, _ = model.warm_up(self._context[:-1])
        self._warm_state = state
        self._last_context_return = self._context[-1]

    def initial_state(self) -> tuple:
        layers = tuple((h.copy(), c.copy()) for h, c in self._warm_state)
        return (layers, self._last_context_return, self.start_price)

    def step(self, state: tuple, t: int, rng: random.Random) -> tuple:
        layers, last_return, price = state
        new_layers, hidden_row = self.model.advance(last_return, layers)
        sampled = self.model.sample_next(hidden_row, rng)
        sampled = max(-_MAX_ABS_NORMALIZED_RETURN,
                      min(_MAX_ABS_NORMALIZED_RETURN, sampled))
        log_return = sampled * self.return_std + self.return_mean
        return (new_layers, sampled, price * math.exp(log_return))

    def copy_state(self, state: tuple) -> tuple:
        layers, last_return, price = state
        copied = tuple((h.copy(), c.copy()) for h, c in layers)
        return (copied, last_return, price)

    # --- batched contract (packed rows) -------------------------------

    @property
    def state_width(self) -> int:
        """Columns of a packed state row (see the class docstring)."""
        return 2 * self.model.n_layers * self.model.hidden_size + 2

    def initial_states(self, n: int) -> np.ndarray:
        parts = []
        for h, c in self._warm_state:
            parts.append(h.ravel())
            parts.append(c.ravel())
        parts.append([self._last_context_return, self.start_price])
        row = np.concatenate([np.asarray(p, dtype=np.float64)
                              for p in parts])
        return np.tile(row, (n, 1))

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator,
                   out: np.ndarray | None = None) -> np.ndarray:
        hidden = self.model.hidden_size
        layer_state = []
        for index in range(self.model.n_layers):
            offset = 2 * hidden * index
            layer_state.append((states[:, offset:offset + hidden],
                                states[:, offset + hidden:
                                       offset + 2 * hidden]))
        new_state, top = self.model.advance_batch(states[:, -2],
                                                  layer_state)
        sampled = self.model.sample_next_batch(top, rng)
        np.clip(sampled, -_MAX_ABS_NORMALIZED_RETURN,
                _MAX_ABS_NORMALIZED_RETURN, out=sampled)
        prices = states[:, -1] * np.exp(sampled * self.return_std
                                        + self.return_mean)
        # All reads are done (advance_batch allocates fresh h/c), so
        # writing into out is safe even when out is states.
        target = out if out is not None else np.empty_like(states)
        for index, (h, c) in enumerate(new_state):
            offset = 2 * hidden * index
            target[:, offset:offset + hidden] = h
            target[:, offset + hidden:offset + 2 * hidden] = c
        target[:, -2] = sampled
        target[:, -1] = prices
        return target

    @staticmethod
    def price(state: tuple) -> float:
        """Real-valued evaluation ``z``: the simulated price (paper §6)."""
        return float(state[2])


def _batch_prices(states: np.ndarray) -> np.ndarray:
    # Packed float rows keep the price in the last column; object rows
    # (ScalarFallback) hold the scalar (layers, return, price) tuples.
    if states.dtype == object:
        return np.asarray([s[2] for s in states], dtype=np.float64)
    return states[:, -1].astype(np.float64)


register_batch_z(StockRNNProcess.price, _batch_prices)


def build_stock_process(prices: Sequence[float], hidden_size: int = 32,
                        n_layers: int = 2, n_mixtures: int = 5,
                        seq_len: int = 50, epochs: int = 10,
                        batch_size: int = 32, learning_rate: float = 3e-3,
                        context_len: int = 50,
                        seed: int = 0) -> tuple:
    """Train an LSTM-MDN on a price series and wrap it as a process.

    Returns ``(process, training_result)``.
    """
    returns = log_returns(list(prices))
    mean = sum(returns) / len(returns)
    variance = sum((r - mean) ** 2 for r in returns) / max(len(returns) - 1, 1)
    std = math.sqrt(variance) if variance > 0 else 1.0
    normalised = [(r - mean) / std for r in returns]

    model = LSTMMDNModel(hidden_size=hidden_size, n_layers=n_layers,
                         n_mixtures=n_mixtures, seed=seed)
    result = train_model(model, normalised, seq_len=seq_len,
                         batch_size=batch_size, epochs=epochs,
                         learning_rate=learning_rate, seed=seed + 1)
    context = returns[-context_len:]
    process = StockRNNProcess(model, mean, std, context, prices[-1])
    return process, result


# ----------------------------------------------------------------------
# Cached pretrained processes (training is the expensive part)
# ----------------------------------------------------------------------

_PROCESS_CACHE: dict = {}


def pretrained_stock_process(hidden_size: int = 32, n_layers: int = 2,
                             n_mixtures: int = 5, seq_len: int = 50,
                             epochs: int = 10, seed: int = 0,
                             cache_dir: Optional[str] = None
                             ) -> StockRNNProcess:
    """The default stock substrate, trained once and cached.

    Trains on the synthetic "Google 2015-2020" series.  With
    ``cache_dir`` the trained weights persist across interpreter runs
    (``.npz``), so benchmarks never retrain.
    """
    key = (hidden_size, n_layers, n_mixtures, seq_len, epochs, seed)
    if key in _PROCESS_CACHE:
        return _PROCESS_CACHE[key]

    prices = synthetic_stock_series()
    cache_path = None
    if cache_dir is not None:
        name = ("stock_h{}_l{}_k{}_s{}_e{}_seed{}.npz"
                .format(*key))
        cache_path = Path(cache_dir) / name

    if cache_path is not None and cache_path.exists():
        model = LSTMMDNModel(hidden_size=hidden_size, n_layers=n_layers,
                             n_mixtures=n_mixtures, seed=seed)
        with np.load(cache_path) as saved:
            model.load_parameters({name: saved[name]
                                   for name in saved.files})
        returns = log_returns(prices)
        mean = sum(returns) / len(returns)
        variance = (sum((r - mean) ** 2 for r in returns)
                    / max(len(returns) - 1, 1))
        std = math.sqrt(variance) if variance > 0 else 1.0
        process = StockRNNProcess(model, mean, std, returns[-seq_len:],
                                  prices[-1])
    else:
        process, _ = build_stock_process(
            prices, hidden_size=hidden_size, n_layers=n_layers,
            n_mixtures=n_mixtures, seq_len=seq_len, epochs=epochs,
            context_len=seq_len, seed=seed)
        if cache_path is not None:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            np.savez(cache_path, **process.model.parameters())

    _PROCESS_CACHE[key] = process
    return process
