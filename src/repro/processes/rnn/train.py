"""Training loop for the LSTM-MDN model: Adam + BPTT over windows.

Mirrors the paper's setup (Section 6): fixed-length training windows
(sequence length 50 in the paper), mini-batches, and a standard
gradient-based optimiser.  Adam is implemented from scratch; gradients
are clipped by global norm, the usual guard for recurrent nets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .model import LSTMMDNModel


class Adam:
    """Adam optimiser over a flat ``name -> array`` parameter dict."""

    def __init__(self, params: dict, learning_rate: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999,
                 epsilon: float = 1e-8):
        if learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be > 0, got {learning_rate}"
            )
        self.params = params
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.t = 0
        self._m = {name: np.zeros_like(p) for name, p in params.items()}
        self._v = {name: np.zeros_like(p) for name, p in params.items()}

    def step(self, grads: dict) -> None:
        """Apply one Adam update in place."""
        self.t += 1
        correction1 = 1.0 - self.beta1 ** self.t
        correction2 = 1.0 - self.beta2 ** self.t
        for name, param in self.params.items():
            grad = grads[name]
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat)
                                                   + self.epsilon)


def clip_gradients(grads: dict, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for monitoring).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be > 0, got {max_norm}")
    total = math.sqrt(sum(float((g * g).sum()) for g in grads.values()))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for grad in grads.values():
            grad *= scale
    return total


def make_windows(series: Sequence[float], seq_len: int) -> tuple:
    """Slice a scalar series into teacher-forcing windows.

    Returns ``(inputs, targets)`` of shape ``(n_windows, seq_len)``
    where ``targets`` is ``inputs`` shifted by one step.
    """
    values = np.asarray(series, dtype=np.float64)
    if seq_len < 1:
        raise ValueError(f"seq_len must be >= 1, got {seq_len}")
    if values.size < seq_len + 1:
        raise ValueError(
            f"series of length {values.size} too short for "
            f"windows of length {seq_len}"
        )
    n_windows = values.size - seq_len
    inputs = np.empty((n_windows, seq_len))
    targets = np.empty((n_windows, seq_len))
    for i in range(n_windows):
        inputs[i] = values[i:i + seq_len]
        targets[i] = values[i + 1:i + seq_len + 1]
    return inputs, targets


@dataclass
class TrainingResult:
    """Losses observed while fitting the model."""

    epoch_losses: list = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else math.nan


def train_model(model: LSTMMDNModel, series: Sequence[float],
                seq_len: int = 50, batch_size: int = 32,
                epochs: int = 10, learning_rate: float = 3e-3,
                clip_norm: float = 5.0, seed: int = 0) -> TrainingResult:
    """Fit the model on a scalar series by mini-batch BPTT.

    The series should already be normalised (zero mean, unit variance);
    :mod:`repro.processes.rnn.stock_model` handles that.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    inputs, targets = make_windows(series, seq_len)
    n_windows = inputs.shape[0]
    optimizer = Adam(model.parameters(), learning_rate=learning_rate)
    rng = np.random.default_rng(seed)
    result = TrainingResult()

    for _ in range(epochs):
        order = rng.permutation(n_windows)
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, n_windows, batch_size):
            batch_idx = order[start:start + batch_size]
            # (T, batch) layout for the recurrent forward pass.
            batch_inputs = inputs[batch_idx].T
            batch_targets = targets[batch_idx].T
            loss, grads = model.loss_and_gradients(batch_inputs,
                                                   batch_targets)
            clip_gradients(grads, clip_norm)
            optimizer.step(grads)
            epoch_loss += loss
            n_batches += 1
        result.epoch_losses.append(epoch_loss / max(n_batches, 1))
    return result
