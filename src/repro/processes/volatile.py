"""Volatile process variants with impulse jumps (Section 6.2).

To demonstrate the failure of s-MLSS under level skipping, the paper
modifies the CPP and Queue models with "impulse value jumps between
consecutive time instants": once the simulation passes a fraction of the
horizon (``t > 0.8 s``), each step carries a small probability of a
large instantaneous value increase.  Such a jump can carry the value
function across several levels at once — exactly the level-skipping
scenario of Section 4.

:class:`ImpulseProcess` wraps any base process that implements
``apply_impulse`` and adds this behaviour, so the same wrapper builds
both "Volatile CPP" and "Volatile Queue".
"""

from __future__ import annotations

import random

from .base import State, StochasticProcess


class ImpulseProcess(StochasticProcess):
    """Wrap a process with late-horizon impulse jumps.

    Parameters
    ----------
    base:
        The underlying process; must implement ``apply_impulse``.
    impulse:
        Magnitude added to the observed value when an impulse fires.
    probability:
        Per-step probability of an impulse once active.
    active_after:
        First time step (exclusive) at which impulses may fire; the
        paper uses ``0.8 * s``.
    """

    def __init__(self, base: StochasticProcess, impulse: float,
                 probability: float, active_after: int):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if active_after < 0:
            raise ValueError(f"active_after must be >= 0, got {active_after}")
        # Fail fast if the base process cannot receive impulses.
        base.apply_impulse(base.initial_state(), 0)
        self.base = base
        self.impulse = impulse
        self.probability = probability
        self.active_after = active_after

    def initial_state(self) -> State:
        return self.base.initial_state()

    def step(self, state: State, t: int, rng: random.Random) -> State:
        new_state = self.base.step(state, t, rng)
        if t > self.active_after and rng.random() < self.probability:
            new_state = self.base.apply_impulse(new_state, self.impulse)
        return new_state

    def copy_state(self, state: State) -> State:
        return self.base.copy_state(state)

    def apply_impulse(self, state: State, magnitude: float) -> State:
        return self.base.apply_impulse(state, magnitude)


def volatile_queue(base: StochasticProcess, horizon: int,
                   impulse: float = 5.0,
                   probability: float = 0.004) -> ImpulseProcess:
    """The paper's Volatile Queue: +5 customers late in the horizon.

    The impulse probability is calibrated so that the Tiny/Rare volatile
    workloads land in the paper's reported probability bands (Table 6);
    see ``repro/workloads``.
    """
    return ImpulseProcess(base, impulse=impulse, probability=probability,
                          active_after=int(0.8 * horizon))


def volatile_cpp(base: StochasticProcess, horizon: int,
                 impulse: float = 40.0,
                 probability: float = 0.005) -> ImpulseProcess:
    """The paper's Volatile CPP: a large surplus impulse late in the horizon.

    The paper adds +200 against its beta range of 300-500; our CPP value
    scale is ~10x smaller (see DESIGN.md), so the default impulse is
    scaled accordingly and the workload registry calibrates thresholds.
    """
    return ImpulseProcess(base, impulse=impulse, probability=probability,
                          active_after=int(0.8 * horizon))
