"""Volatile process variants with impulse jumps (Section 6.2).

To demonstrate the failure of s-MLSS under level skipping, the paper
modifies the CPP and Queue models with "impulse value jumps between
consecutive time instants": once the simulation passes a fraction of the
horizon (``t > 0.8 s``), each step carries a small probability of a
large instantaneous value increase.  Such a jump can carry the value
function across several levels at once — exactly the level-skipping
scenario of Section 4.

:class:`ImpulseProcess` wraps any base process that implements
``apply_impulse`` and adds this behaviour, so the same wrapper builds
both "Volatile CPP" and "Volatile Queue".

Batched simulation: the wrapper is itself a
:class:`~repro.processes.base.VectorizedProcess` — it advances the
whole batch through the base's ``step_batch`` and then applies impulses
to a uniform-masked subset of rows via ``apply_impulse_batch``, so a
vectorized base never degrades to a scalar loop just because it is
volatile (``batch_native`` reports whether the base is natively
batched, which is what ``backend="auto"`` consults).  Wrappers over
fusible bases are fusible themselves: a fleet of volatile CPPs with
per-member impulse parameters advances as one fused ``step_batch``.
"""

from __future__ import annotations

import random

import numpy as np

from .base import State, StochasticProcess, VectorizedProcess, as_vectorized, supports_batch


class ImpulseProcess(StochasticProcess, VectorizedProcess):
    """Wrap a process with late-horizon impulse jumps.

    Parameters
    ----------
    base:
        The underlying process; must implement ``apply_impulse``.
    impulse:
        Magnitude added to the observed value when an impulse fires.
    probability:
        Per-step probability of an impulse once active.
    active_after:
        First time step (exclusive) at which impulses may fire; the
        paper uses ``0.8 * s``.
    """

    def __init__(self, base: StochasticProcess, impulse: float,
                 probability: float, active_after: int):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if active_after < 0:
            raise ValueError(f"active_after must be >= 0, got {active_after}")
        # Fail fast if the base process cannot receive impulses.
        base.apply_impulse(base.initial_state(), 0)
        self.base = base
        self.impulse = impulse
        self.probability = probability
        self.active_after = active_after
        # The batched face delegates to the base (or a fallback adapter
        # when the base is scalar-only, keeping step_batch universally
        # correct; "auto" still resolves such wrappers to scalar).
        self._batch_base = as_vectorized(base)

    def initial_state(self) -> State:
        return self.base.initial_state()

    def step(self, state: State, t: int, rng: random.Random) -> State:
        new_state = self.base.step(state, t, rng)
        if t > self.active_after and rng.random() < self.probability:
            new_state = self.base.apply_impulse(new_state, self.impulse)
        return new_state

    def copy_state(self, state: State) -> State:
        return self.base.copy_state(state)

    def apply_impulse(self, state: State, magnitude: float) -> State:
        return self.base.apply_impulse(state, magnitude)

    # --- batched contract ---------------------------------------------

    @property
    def supports_out(self) -> bool:
        return self._batch_base.supports_out

    def batch_native(self) -> bool:
        """Batched exactly as fast as the base: native iff the base is."""
        return supports_batch(self.base)

    def initial_states(self, n: int) -> np.ndarray:
        return self._batch_base.initial_states(n)

    def step_batch(self, states: np.ndarray, t: int,
                   rng: np.random.Generator,
                   out: np.ndarray | None = None) -> np.ndarray:
        base = self._batch_base
        if out is not None and base.supports_out:
            new_states = base.step_batch(states, t, rng, out=out)
        else:
            new_states = base.step_batch(states, t, rng)
        if t > self.active_after:
            fired = rng.random(len(new_states)) < self.probability
            rows = np.nonzero(fired)[0]
            if rows.size:
                base.apply_impulse_batch(new_states, rows, self.impulse)
        return new_states

    def replicate(self, states: np.ndarray, indices, counts) -> np.ndarray:
        return self._batch_base.replicate(states, indices, counts)

    def apply_impulse_batch(self, states: np.ndarray, rows,
                            magnitudes) -> None:
        self._batch_base.apply_impulse_batch(states, rows, magnitudes)

    # --- fusion hooks -------------------------------------------------

    def fusion_key(self):
        base_key = self.base.fusion_key()
        if base_key is None:
            return None
        return ("impulse",) + base_key

    def fusion_params(self) -> dict:
        params = dict(self.base.fusion_params())
        params["impulse__magnitude"] = self.impulse
        params["impulse__probability"] = self.probability
        params["impulse__active_after"] = self.active_after
        return params

    def fused_step_batch(self, row_params, states, t, rng, out=None):
        new_states = self.base.fused_step_batch(row_params, states, t, rng,
                                                out=out)
        active = t > row_params["impulse__active_after"]
        if active.any():
            fired = (active
                     & (rng.random(len(new_states))
                        < row_params["impulse__probability"]))
            rows = np.nonzero(fired)[0]
            if rows.size:
                self.base.apply_impulse_batch(
                    new_states, rows,
                    row_params["impulse__magnitude"][rows])
        return new_states


def volatile_queue(base: StochasticProcess, horizon: int,
                   impulse: float = 5.0,
                   probability: float = 0.004) -> ImpulseProcess:
    """The paper's Volatile Queue: +5 customers late in the horizon.

    The impulse probability is calibrated so that the Tiny/Rare volatile
    workloads land in the paper's reported probability bands (Table 6);
    see ``repro/workloads``.
    """
    return ImpulseProcess(base, impulse=impulse, probability=probability,
                          active_after=int(0.8 * horizon))


def volatile_cpp(base: StochasticProcess, horizon: int,
                 impulse: float = 40.0,
                 probability: float = 0.005) -> ImpulseProcess:
    """The paper's Volatile CPP: a large surplus impulse late in the horizon.

    The paper adds +200 against its beta range of 300-500; our CPP value
    scale is ~10x smaller (see DESIGN.md), so the default impulse is
    scaled accordingly and the workload registry calibrates thresholds.
    """
    return ImpulseProcess(base, impulse=impulse, probability=probability,
                          active_after=int(0.8 * horizon))
