"""Durability prediction as a service: the ``repro.serve`` tier.

A stdlib-only asyncio serving layer in front of one shared
:class:`~repro.engine.DurabilityEngine`: sessions pin policies and
seeds, cost-aware admission keeps the engine loaded but not buried,
curves stream point-by-point, and a watchdog publishes a live health
verdict.  Start one with::

    from repro.serve import DurabilityServer, ServerThread
    with ServerThread(policy=policy) as handle:
        ...  # HTTP on 127.0.0.1:<handle.port>

Wire protocol (version 1)
=========================

All request and response bodies are JSON.  Responses are **canonical
bytes**: keys sorted, compact separators, no wall-clock fields
(``elapsed_seconds`` is stripped at every nesting level; serving
latency travels in the ``X-Elapsed-Ms`` header instead).  That makes
the serving determinism contract testable: for the same query, policy
and seed, the served body is byte-identical to encoding the in-process
answer.

Common request fields (the ``POST`` query routes):

``query``
    ``{"process": {"family": ..., "params": {...}}, "beta": 0.9,
    "horizon": 250}`` plus optional ``"z"`` (a value-function name such
    as ``position`` / ``price`` / ``surplus``; each family has a
    default) and ``"name"``.  Families: ``random_walk``,
    ``gaussian_walk``, ``gbm``, ``ar``, ``markov_chain``,
    ``tandem_queue``, ``cpp``, ``impulse``.
``policy``
    An :meth:`ExecutionPolicy.to_dict` document (may be partial —
    fields override the session policy or the server default).
``session``
    A session id from ``POST /session``; pins the base policy (and its
    derived seed) for plan-cache locality and repeatability.
``tenant``
    Rate-limiting identity (or the ``X-Tenant`` header).
``partition``
    Optional explicit level boundaries (list of floats in (0, 1)).

Routes:

``POST /answer``
    -> ``{"ok": true, "result": {estimate}, "cost_class": ...}``.
``POST /answer_batch``
    ``{"queries": [...]}`` -> ``{"ok": true, "results": [...]}``
    (order preserved; fusible batches run as a fused fleet).
``POST /curve``
    ``{"query": ..., "thresholds": [...]}``.  Default **streams**
    (chunked transfer encoding, one JSON line per chunk): a ``start``
    event, one ``{"event": "point", "threshold": b, "estimate":
    {...}}`` per grid point in ascending order, then an ``end``
    summary.  ``"stream": false`` returns one unary body instead.
``POST /curves``
    Many queries, shared or per-query grids; ``"stream": true`` emits
    one chunk per finished curve.
``POST /session`` / ``GET|DELETE /session/{id}``
    Create (201; echoes the effective policy, seed included), inspect,
    drop.
``GET /metrics``
    Counters, per-route latency percentiles (p50/p95/p99), qps,
    gauges (pool / plan-cache / admission), the watchdog verdict.
``GET /stats`` / ``GET /healthz``
    Engine + admission + session counters; liveness (+ draining flag).
``POST /config``
    Hot-apply a partial :class:`ServeConfig` document (queue bounds,
    rate limits, watchdog cadence — listener address and executor
    width are start-time-only).

Errors are ``{"ok": false, "error": {"kind": ..., "message": ...}}``
with the obvious statuses: 400 malformed/unservable, 404 unknown
session or route, 429 tenant over rate (with ``Retry-After``), 503
shed (queue full, expensive-class limit, queue timeout, draining).
"""

from .admission import (AdmissionController, AdmissionError,
                        RateLimitedError, SheddedError, TokenBucket,
                        classify_request)
from .client import Reply, ServeClient, ServeError
from .config import HotConfig, ServeConfig
from .metrics import MetricsRegistry, RateWindow, StreamingHistogram
from .protocol import (PROTOCOL_VERSION, ProtocolError, build_process,
                       dumps_canonical, encode_curve, encode_estimate,
                       parse_policy, parse_query)
from .server import DurabilityServer, ServerThread
from .session import Session, SessionStore, UnknownSessionError
from .watchdog import Watchdog

__all__ = [
    "AdmissionController", "AdmissionError", "DurabilityServer",
    "HotConfig", "MetricsRegistry", "PROTOCOL_VERSION", "ProtocolError",
    "RateLimitedError", "RateWindow", "Reply", "ServeClient",
    "ServeConfig", "ServeError", "ServerThread", "Session",
    "SessionStore", "SheddedError", "StreamingHistogram", "TokenBucket",
    "UnknownSessionError", "Watchdog", "build_process",
    "classify_request", "dumps_canonical", "encode_curve",
    "encode_estimate", "parse_policy", "parse_query",
]
