"""Cost-aware admission: classify, rate-limit, queue, shed.

Motivated by Wu et al., "Uncertainty Aware Query Execution Time
Prediction" (arXiv 1408.6589): the cheapest way to keep tail latency
bounded is to *predict cost before executing* and act at the front
door.  The serving tier has exactly the cheap predictors that paper
asks for:

* a request's **class** is decidable without simulating anything —
  SRS point queries and MLSS queries whose plan-cache bucket is warm
  are ``cache_hit`` (one bounded sampling pass); MLSS queries whose
  bucket is cold are ``cold_search`` (a greedy/pilot plan search
  *precedes* sampling); fused multi-entity batches are ``fleet`` and
  whole-grid requests are ``curve``, both scaled by member count;
* each class carries **cost units** (configurable), and admission is a
  bounded counting semaphore over units: a big fleet occupies the
  capacity several point queries would.

Under load the controller degrades in order: expensive classes
(``cold_search`` / ``fleet``) are shed first (at a configurable
fraction of the queue), then the bounded queue sheds everything
(HTTP 503), and per-tenant token buckets turn away abusive clients
with HTTP 429 + ``Retry-After`` before they occupy a queue slot.
Admitted requests that wait longer than ``queue_timeout_seconds`` are
shed rather than served arbitrarily late.  When the metrics watchdog
flags the tier as *stalled* (:meth:`set_stalled`, pushed from
:meth:`repro.serve.watchdog.Watchdog.sample`), expensive classes are
shed outright (503 + ``Retry-After``) — admitting a plan search or a
fused fleet pass into a wedged executor only deepens the stall, while
cheap cache-hit traffic keeps probing whether the tier has recovered.

The controller is event-loop-confined (no locks): every method must be
called from the server's asyncio thread.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import deque
from typing import Callable, Optional, Sequence

from ..engine.cache import PlanCache
from ..engine.policy import ExecutionPolicy
from .config import ServeConfig

#: Request classes, cheapest first.
COST_CLASSES = ("cache_hit", "curve", "fleet", "cold_search")

#: Classes shed early under load (plan search / big fused passes).
EXPENSIVE_CLASSES = frozenset({"cold_search", "fleet"})

#: Batch size at which a fusible batch counts as a fleet.
FLEET_MIN_MEMBERS = 4

#: Members covered by one fleet/curve cost unit block.
MEMBERS_PER_UNIT = 32


class AdmissionError(Exception):
    """A request turned away at the front door."""

    kind = "admission"
    http_status = 503

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class RateLimitedError(AdmissionError):
    """Tenant over its token-bucket rate (HTTP 429)."""

    kind = "rate_limited"
    http_status = 429


class SheddedError(AdmissionError):
    """Load shed: queue full, expensive under load, or timed out."""

    kind = "shed"
    http_status = 503


class TokenBucket:
    """A continuous-refill token bucket."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = rate
        self.burst = max(burst, 1.0)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def try_acquire(self, cost: float = 1.0) -> Optional[float]:
        """Take ``cost`` tokens; None on success, else seconds-to-wait."""
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= cost:
            self._tokens -= cost
            return None
        return (cost - self._tokens) / self.rate


class RateLimiter:
    """Per-tenant token buckets from the serving config."""

    def __init__(self, config: ServeConfig,
                 clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._buckets: dict = {}
        self.update_config(config)

    def update_config(self, config: ServeConfig) -> None:
        self._default_rps = config.rate_default_rps
        self._default_burst = config.rate_default_burst
        self._tenants = {tenant: (float(spec["rps"]),
                                  float(spec.get("burst", spec["rps"])))
                         for tenant, spec in config.rate_tenants.items()}
        self._buckets.clear()  # re-derive buckets under the new limits

    def _limits_for(self, tenant: str) -> Optional[tuple]:
        if tenant in self._tenants:
            rps, burst = self._tenants[tenant]
        else:
            rps, burst = self._default_rps, self._default_burst
        if rps <= 0:
            return None  # unlimited
        return rps, burst

    def check(self, tenant: str) -> None:
        """Raise :class:`RateLimitedError` if the tenant is over rate."""
        limits = self._limits_for(tenant)
        if limits is None:
            return
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                *limits, clock=self._clock)
        wait = bucket.try_acquire()
        if wait is not None:
            raise RateLimitedError(
                f"tenant {tenant!r} over its rate limit "
                f"({limits[0]:g} req/s)", retry_after=wait)


# ----------------------------------------------------------------------
# Cost classification
# ----------------------------------------------------------------------

def _plan_is_warm(query, policy: ExecutionPolicy,
                  plan_cache: Optional[PlanCache]) -> bool:
    """Would this MLSS query skip plan search?  (A pure probe: no
    hit/miss counters move, no entries are touched.)"""
    if not policy.use_plan_cache or plan_cache is None:
        return False
    kind = ("balanced", policy.num_levels) \
        if policy.num_levels is not None else "greedy"
    try:
        return plan_cache.key_for(query, kind) in plan_cache
    except Exception:
        return False  # unprobeable shapes admit conservatively as cold


def _scaled_units(base: float, members: int) -> int:
    return max(1, int(base) * math.ceil(max(members, 1)
                                        / MEMBERS_PER_UNIT))


def classify_request(kind: str, queries: Sequence, policy: ExecutionPolicy,
                     plan_cache: Optional[PlanCache] = None,
                     explicit_plan: bool = False,
                     cost_units: Optional[dict] = None) -> tuple:
    """Predict a request's cost class and units before executing it.

    ``kind`` is the route family (``"answer"``, ``"batch"``,
    ``"curve"``, ``"curves"``); returns ``(cost_class, units)``.
    """
    units = dict(ServeConfig().cost_units)
    units.update(cost_units or {})
    if kind in ("curve", "curves"):
        return "curve", _scaled_units(units["curve"], len(queries))
    if kind == "batch" and len(queries) >= FLEET_MIN_MEMBERS \
            and policy.fuse:
        families = {query.process.fusion_key() for query in queries}
        if None not in families:
            return "fleet", _scaled_units(units["fleet"], len(queries))
    cold = 0
    for query in queries:
        if policy.method == "srs" or explicit_plan:
            continue
        if not _plan_is_warm(query, policy, plan_cache):
            cold += 1
    if cold:
        return "cold_search", max(1, int(units["cold_search"]) * cold)
    return "cache_hit", max(1, int(units["cache_hit"]) * len(queries))


# ----------------------------------------------------------------------
# The controller
# ----------------------------------------------------------------------

class Ticket:
    """An admitted request's capacity claim; release exactly once."""

    def __init__(self, controller: "AdmissionController", units: int,
                 cost_class: str):
        self._controller = controller
        self.units = units
        self.cost_class = cost_class
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self.units)

    def __enter__(self) -> "Ticket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class AdmissionController:
    """Bounded, cost-aware request admission (asyncio, loop-confined)."""

    def __init__(self, config: ServeConfig, metrics=None,
                 clock: Callable[[], float] = time.monotonic):
        self._metrics = metrics
        self._clock = clock
        self.in_flight_units = 0
        self.in_flight_requests = 0
        self.stalled = False
        self._waiters: deque = deque()  # (future, units)
        self.rate_limiter = RateLimiter(config, clock=clock)
        self.update_config(config)

    def update_config(self, config: ServeConfig) -> None:
        self._capacity = config.max_inflight_units
        self._max_queue = config.max_queue
        self._expensive_queue = int(config.max_queue
                                    * config.expensive_queue_fraction)
        self._timeout = config.queue_timeout_seconds
        self.cost_units = dict(config.cost_units)
        self.rate_limiter.update_config(config)
        self._grant_waiters()

    # -- introspection -------------------------------------------------

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def stats(self) -> dict:
        return {"in_flight_units": self.in_flight_units,
                "in_flight_requests": self.in_flight_requests,
                "queued": self.queued,
                "capacity_units": self._capacity,
                "max_queue": self._max_queue,
                "stalled": self.stalled}

    def set_stalled(self, stalled: bool) -> None:
        """The watchdog's stall verdict (loop-confined, like admit).

        While set, :meth:`admit` sheds ``cold_search``/``fleet``
        requests outright; the verdict clears on the watchdog's next
        progressed sample.
        """
        self.stalled = bool(stalled)

    # -- admit / release ----------------------------------------------

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.inc(name)

    async def admit(self, tenant: str, cost_class: str,
                    units: int) -> Ticket:
        """Admit or turn away one request (may wait, bounded)."""
        try:
            self.rate_limiter.check(tenant)
        except RateLimitedError:
            self._count("admission.rate_limited")
            raise
        units = min(max(1, units), self._capacity)  # one request may
        # never demand more than total capacity, or it would wait forever
        if self.stalled and cost_class in EXPENSIVE_CLASSES:
            # A stalled tier means work already admitted is not
            # completing; adding plan searches or fleet passes on top
            # only digs deeper.  Shed them immediately and tell clients
            # when to probe again (one watchdog verdict cycle).
            self._count("admission.shed_stalled")
            raise SheddedError(
                f"{cost_class} request shed: serving tier is stalled "
                f"(watchdog verdict); retry after the stall clears",
                retry_after=self._timeout)
        if self.in_flight_units + units <= self._capacity \
                and not self._waiters:
            return self._grant(units, cost_class)
        if cost_class in EXPENSIVE_CLASSES \
                and len(self._waiters) >= self._expensive_queue:
            self._count("admission.shed_expensive")
            raise SheddedError(
                f"{cost_class} request shed: {len(self._waiters)} "
                f"requests already queued (expensive-class limit "
                f"{self._expensive_queue})")
        if len(self._waiters) >= self._max_queue:
            self._count("admission.shed_queue_full")
            raise SheddedError(
                f"request shed: admission queue full "
                f"({self._max_queue})")
        future = asyncio.get_running_loop().create_future()
        entry = (future, units, cost_class)
        self._waiters.append(entry)
        try:
            return await asyncio.wait_for(future, timeout=self._timeout)
        except asyncio.TimeoutError:
            try:
                self._waiters.remove(entry)
            except ValueError:
                pass
            # The grant may have landed at the buzzer (result set just
            # as the timeout fired): honour it rather than leaking the
            # claimed units.
            if future.done() and not future.cancelled() \
                    and future.exception() is None:
                return future.result()
            self._count("admission.shed_timeout")
            raise SheddedError(
                f"request shed: waited longer than {self._timeout:g}s "
                f"for admission") from None

    def _grant(self, units: int, cost_class: str) -> Ticket:
        self.in_flight_units += units
        self.in_flight_requests += 1
        self._count("admission.admitted")
        self._count(f"admission.class.{cost_class}")
        return Ticket(self, units, cost_class)

    def _release(self, units: int) -> None:
        self.in_flight_units -= units
        self.in_flight_requests -= 1
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        """Grant queued requests (FIFO) that now fit the capacity.

        The grant happens *here*, synchronously — units are claimed
        before the woken coroutine resumes, so a release can never
        over-admit through a not-yet-scheduled waiter.
        """
        while self._waiters:
            future, units, cost_class = self._waiters[0]
            if future.done():  # timed out / cancelled; abandoned
                self._waiters.popleft()
                continue
            units = min(units, self._capacity)
            if self.in_flight_units + units > self._capacity \
                    and self.in_flight_requests > 0:
                break
            self._waiters.popleft()
            future.set_result(self._grant(units, cost_class))
