"""A small asyncio client for the durability serving tier.

:class:`ServeClient` speaks the wire protocol over one persistent
HTTP/1.1 connection (keep-alive, requests serialized per connection —
open several clients for concurrency, as the bench does).  It exists so
demos, benchmarks and tests can drive the server from asyncio without
pulling in any HTTP dependency; it parses both fixed-length and
chunked (streaming-curve) responses.

    async with ServeClient("127.0.0.1", port) as client:
        reply = await client.answer(query_doc)
        async for event in client.curve_stream(query_doc, grid):
            ...  # {"event": "start"|"point"|"end", ...}
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import AsyncIterator, Optional

#: Statuses worth retrying: throttles and sheds, where the server has
#: said "come back later" (often with an explicit ``Retry-After``).
RETRYABLE_STATUSES = (429, 503)


class ServeError(Exception):
    """A non-2xx reply from the server."""

    def __init__(self, status: int, payload):
        error = (payload or {}).get("error", {}) \
            if isinstance(payload, dict) else {}
        message = error.get("message") or f"HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.kind = error.get("kind", "http_error")
        self.retry_after = error.get("retry_after")


class Reply:
    """One parsed response: status, headers, decoded JSON body."""

    __slots__ = ("status", "headers", "body", "raw")

    def __init__(self, status: int, headers: dict, raw: bytes):
        self.status = status
        self.headers = headers
        self.raw = raw
        try:
            self.body = json.loads(raw) if raw else {}
        except ValueError:
            self.body = {}

    @property
    def elapsed_ms(self) -> Optional[float]:
        value = self.headers.get("x-elapsed-ms")
        return float(value) if value is not None else None

    def raise_for_status(self) -> "Reply":
        if self.status >= 400:
            raise ServeError(self.status, self.body)
        return self


class ServeClient:
    """One keep-alive connection to a :class:`DurabilityServer`.

    Parameters
    ----------
    retries:
        How many times a unary request may be re-sent after a
        retryable reply (429 rate-limit, 503 shed/transient).  Each
        retry honors the server's ``Retry-After`` when given,
        otherwise sleeps a capped exponential backoff with jitter.
        ``0`` (the default) keeps the historical fail-fast behavior —
        identity tests see every reply exactly as sent.  Streaming
        (:meth:`curve_stream`) never retries: events may already have
        been yielded.
    backoff_base / backoff_max:
        First-retry backoff and the cap, seconds.
    """

    def __init__(self, host: str, port: int, tenant: Optional[str] = None,
                 timeout: float = 120.0, retries: int = 0,
                 backoff_base: float = 0.05, backoff_max: float = 2.0):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        #: How many retry sends this client has performed (lifetime).
        self.retries_used = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    def _backoff_delay(self, attempt: int,
                       retry_after: Optional[float]) -> float:
        """Seconds to sleep before retry ``attempt`` (1-based).

        ``Retry-After`` wins when the server sent one; otherwise
        exponential backoff from ``backoff_base`` with full jitter.
        Either way the delay is capped at ``backoff_max``.
        """
        if retry_after is not None:
            try:
                delay = max(float(retry_after), 0.0)
            except (TypeError, ValueError):
                delay = self.backoff_base
        else:
            delay = self.backoff_base * (2.0 ** (attempt - 1))
            delay *= 0.5 + 0.5 * random.random()  # jitter
        return min(delay, self.backoff_max)

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def _connected(self):
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)
        return self._reader, self._writer

    # -- raw request plumbing ------------------------------------------

    def _head(self, method: str, path: str, body: bytes,
              streaming: bool, attempt: int = 0) -> bytes:
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {self.host}:{self.port}",
                 f"Content-Length: {len(body)}",
                 "Content-Type: application/json"]
        if self.tenant:
            lines.append(f"X-Tenant: {self.tenant}")
        if attempt:
            # Mark retried sends so the server can count retry
            # pressure (/metrics "client_retries").
            lines.append(f"X-Retry-Attempt: {attempt}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _read_head(self, reader) -> tuple:
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        headers: dict = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    async def _read_chunk(self, reader) -> bytes:
        size_line = await reader.readline()
        size = int(size_line.strip().split(b";")[0], 16)
        if size == 0:
            await reader.readline()  # trailing CRLF after last chunk
            return b""
        chunk = await reader.readexactly(size)
        await reader.readexactly(2)  # CRLF chunk terminator
        return chunk

    async def request(self, method: str, path: str,
                      payload: Optional[dict] = None) -> Reply:
        """One unary request; raises :class:`ServeError` on >= 400.

        With ``retries > 0``, retryable replies (429/503) are re-sent
        up to the budget, honoring ``Retry-After`` (else capped
        exponential backoff with jitter); any other error — and the
        final retryable one — propagates.
        """
        body = json.dumps(payload).encode("utf-8") \
            if payload is not None else b""
        attempt = 0
        while True:
            try:
                async with self._lock:
                    return await asyncio.wait_for(
                        self._request_locked(method, path, body, attempt),
                        self.timeout)
            except ServeError as exc:
                if (attempt >= self.retries
                        or exc.status not in RETRYABLE_STATUSES):
                    raise
                attempt += 1
                self.retries_used += 1
                await asyncio.sleep(
                    self._backoff_delay(attempt, exc.retry_after))

    async def _request_locked(self, method, path, body,
                              attempt: int = 0) -> Reply:
        reader, writer = await self._connected()
        writer.write(self._head(method, path, body, streaming=False,
                                attempt=attempt)
                     + body)
        await writer.drain()
        status, headers = await self._read_head(reader)
        if headers.get("transfer-encoding", "").lower() == "chunked":
            pieces = []
            while True:
                chunk = await self._read_chunk(reader)
                if not chunk:
                    break
                pieces.append(chunk)
            raw = b"".join(pieces)
        else:
            length = int(headers.get("content-length", "0"))
            raw = await reader.readexactly(length) if length else b""
        return Reply(status, headers, raw).raise_for_status()

    # -- protocol verbs ------------------------------------------------

    async def healthz(self) -> dict:
        return (await self.request("GET", "/healthz")).body

    async def metrics(self) -> dict:
        return (await self.request("GET", "/metrics")).body

    async def stats(self) -> dict:
        return (await self.request("GET", "/stats")).body

    async def apply_config(self, overrides: dict) -> dict:
        return (await self.request("POST", "/config", overrides)).body

    async def open_session(self, policy: Optional[dict] = None,
                           labels: Optional[dict] = None) -> dict:
        payload: dict = {}
        if policy is not None:
            payload["policy"] = policy
        if labels is not None:
            payload["labels"] = labels
        return (await self.request("POST", "/session", payload)).body

    async def close_session(self, session_id: str) -> dict:
        return (await self.request(
            "DELETE", f"/session/{session_id}")).body

    async def answer(self, query: dict, policy: Optional[dict] = None,
                     session: Optional[str] = None,
                     partition=None) -> Reply:
        payload: dict = {"query": query}
        if policy is not None:
            payload["policy"] = policy
        if session is not None:
            payload["session"] = session
        if partition is not None:
            payload["partition"] = partition
        return await self.request("POST", "/answer", payload)

    async def answer_batch(self, queries: list,
                           policy: Optional[dict] = None,
                           session: Optional[str] = None) -> Reply:
        payload: dict = {"queries": queries}
        if policy is not None:
            payload["policy"] = policy
        if session is not None:
            payload["session"] = session
        return await self.request("POST", "/answer_batch", payload)

    async def curve(self, query: dict, thresholds: list,
                    policy: Optional[dict] = None,
                    session: Optional[str] = None) -> Reply:
        payload: dict = {"query": query, "thresholds": thresholds,
                         "stream": False}
        if policy is not None:
            payload["policy"] = policy
        if session is not None:
            payload["session"] = session
        return await self.request("POST", "/curve", payload)

    async def curve_stream(self, query: dict, thresholds: list,
                           policy: Optional[dict] = None,
                           session: Optional[str] = None
                           ) -> AsyncIterator[dict]:
        """Stream a curve: yields decoded events (one per chunk) in
        arrival order — ``start``, each ``point``, then ``end``."""
        payload: dict = {"query": query, "thresholds": thresholds,
                         "stream": True}
        if policy is not None:
            payload["policy"] = policy
        if session is not None:
            payload["session"] = session
        body = json.dumps(payload).encode("utf-8")
        async with self._lock:
            reader, writer = await self._connected()
            writer.write(self._head("POST", "/curve", body,
                                    streaming=True) + body)
            await writer.drain()
            status, headers = await asyncio.wait_for(
                self._read_head(reader), self.timeout)
            if headers.get("transfer-encoding", "").lower() != "chunked":
                length = int(headers.get("content-length", "0"))
                raw = await reader.readexactly(length) if length else b""
                Reply(status, headers, raw).raise_for_status()
                raise ServeError(status, json.loads(raw or b"{}"))
            buffered = b""
            while True:
                chunk = await asyncio.wait_for(self._read_chunk(reader),
                                               self.timeout)
                if not chunk:
                    break
                buffered += chunk
                while b"\n" in buffered:
                    line, buffered = buffered.split(b"\n", 1)
                    if line.strip():
                        event = json.loads(line)
                        if status >= 400:
                            raise ServeError(status, event)
                        yield event
