"""Serving configuration: one immutable document, hot-reloadable.

:class:`ServeConfig` is the serving tier's counterpart of
:class:`~repro.engine.policy.ExecutionPolicy`: an immutable, versioned
("``v``"-stamped), JSON-round-trippable dataclass holding every knob
the server exposes — listener address, engine executor width, admission
queue depth and timeouts, per-tenant rate limits, session lifetime, and
the watchdog cadence.

:class:`HotConfig` makes it *live*: it holds the current config behind
a lock, applies validated replacements atomically
(:meth:`HotConfig.apply`), notifies registered listeners (the admission
controller resizes its queue, the watchdog re-times itself, the session
store re-bounds), and can watch a JSON file for changes
(:meth:`HotConfig.reload_if_changed`) so an operator edit lands without
a restart.  Invalid replacement documents are rejected whole — the
running config never ends up half-updated.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

#: Config document version; bumped on incompatible field changes.
CONFIG_VERSION = 1

#: Default admission cost units per request class (see
#: :mod:`repro.serve.admission`).
DEFAULT_COST_UNITS = {"cache_hit": 1, "cold_search": 4, "curve": 2,
                      "fleet": 4}


@dataclass(frozen=True)
class ServeConfig:
    """Every serving-tier knob, in one serializable document.

    Attributes
    ----------
    host / port:
        Listener address; port 0 binds an ephemeral port (the bound
        port is reported by the server after startup).
    engine_workers:
        Threads in the engine executor — the number of engine calls
        that may run simulation concurrently.
    max_inflight_units:
        Admission capacity in *cost units* (see ``cost_units``); one
        unit approximates one cache-friendly point query.
    max_queue:
        Bounded admission queue depth (requests waiting for units).
        Beyond it, requests are shed with HTTP 503.
    expensive_queue_fraction:
        Fraction of ``max_queue`` beyond which *expensive* classes
        (``cold_search``, ``fleet``) are shed early — cheap traffic
        keeps flowing while plan searches queue.
    queue_timeout_seconds:
        Longest a request may wait for admission before being shed.
    cost_units:
        Cost units per request class (``cache_hit`` / ``cold_search``
        / ``curve`` / ``fleet``).
    rate_default_rps / rate_default_burst:
        Token-bucket refill rate and capacity applied to every tenant
        without an explicit entry; ``0`` rps disables limiting.
    rate_tenants:
        Per-tenant overrides: ``{tenant: {"rps": .., "burst": ..}}``.
    session_ttl_seconds / max_sessions:
        Idle session lifetime and session-store capacity (LRU beyond).
    session_seed_salt:
        Salt for deterministic per-session seed derivation.
    watchdog_interval_seconds / stall_after_intervals:
        Watchdog sampling cadence and the number of consecutive
        no-progress samples (with work in flight) that flags a stall.
    request_max_bytes:
        Largest accepted request body.
    request_deadline_seconds:
        Per-request engine deadline (hot-reloadable).  Work still
        running past it is abandoned by the response path — the client
        gets a structured 504 ``deadline_exceeded`` error — and
        counted in ``/metrics`` as ``deadline_kills``.  Best-effort
        cancellation: the executor thread finishes its current engine
        call in the background (a documented known limit).  ``0``
        (the default) disables deadlines.
    drain_timeout_seconds:
        Graceful-shutdown budget for in-flight requests.
    warm_enabled:
        Master switch for the proactive plan warmer (hot-reloadable;
        flipping it off stops future sweeps, the current one finishes
        its shape and aborts).
    warm_interval_seconds:
        Minimum spacing between warming sweeps.
    warm_top_k:
        Maximum plans warmed per sweep.
    warm_step_budget:
        Maximum simulation steps one sweep may spend (hardware-
        independent step units, same accounting as everywhere else).
    warm_forecaster:
        Which arrival forecaster ranks the shapes: ``"constant"``,
        ``"moving_average"``, ``"linear"`` or ``"last_value"``.
    warm_window_seconds:
        Width of the workload log's arrival-count windows (start-time
        knob: the log is built once with the boot config).
    plan_store_path:
        Optional sqlite file persisting the plan cache across restarts
        (start-time knob).  ``None`` keeps plans in memory only.
    """

    host: str = "127.0.0.1"
    port: int = 0
    engine_workers: int = 4
    max_inflight_units: int = 8
    max_queue: int = 64
    expensive_queue_fraction: float = 0.5
    queue_timeout_seconds: float = 10.0
    cost_units: dict = field(
        default_factory=lambda: dict(DEFAULT_COST_UNITS))
    rate_default_rps: float = 0.0
    rate_default_burst: float = 10.0
    rate_tenants: dict = field(default_factory=dict)
    session_ttl_seconds: float = 3600.0
    max_sessions: int = 10_000
    session_seed_salt: int = 0
    watchdog_interval_seconds: float = 1.0
    stall_after_intervals: int = 5
    request_max_bytes: int = 8 * 1024 * 1024
    request_deadline_seconds: float = 0.0
    drain_timeout_seconds: float = 30.0
    warm_enabled: bool = True
    warm_interval_seconds: float = 5.0
    warm_top_k: int = 8
    warm_step_budget: int = 200_000
    warm_forecaster: str = "moving_average"
    warm_window_seconds: float = 60.0
    plan_store_path: Optional[str] = None

    def validate(self) -> "ServeConfig":
        if self.engine_workers < 1:
            raise ValueError(f"engine_workers must be >= 1, got "
                             f"{self.engine_workers}")
        if self.max_inflight_units < 1:
            raise ValueError(f"max_inflight_units must be >= 1, got "
                             f"{self.max_inflight_units}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got "
                             f"{self.max_queue}")
        if not 0.0 <= self.expensive_queue_fraction <= 1.0:
            raise ValueError(
                f"expensive_queue_fraction must be in [0, 1], got "
                f"{self.expensive_queue_fraction}")
        if self.queue_timeout_seconds <= 0:
            raise ValueError(f"queue_timeout_seconds must be > 0, got "
                             f"{self.queue_timeout_seconds}")
        for cls, units in self.cost_units.items():
            if not isinstance(units, (int, float)) or units < 1:
                raise ValueError(
                    f"cost_units[{cls!r}] must be >= 1, got {units!r}")
        if self.rate_default_rps < 0:
            raise ValueError(f"rate_default_rps must be >= 0, got "
                             f"{self.rate_default_rps}")
        for tenant, spec in self.rate_tenants.items():
            if not isinstance(spec, dict) or "rps" not in spec:
                raise ValueError(
                    f"rate_tenants[{tenant!r}] must be a dict with at "
                    f"least an 'rps' key, got {spec!r}")
        if self.session_ttl_seconds <= 0:
            raise ValueError(f"session_ttl_seconds must be > 0, got "
                             f"{self.session_ttl_seconds}")
        if self.max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got "
                             f"{self.max_sessions}")
        if self.watchdog_interval_seconds <= 0:
            raise ValueError(
                f"watchdog_interval_seconds must be > 0, got "
                f"{self.watchdog_interval_seconds}")
        if self.stall_after_intervals < 1:
            raise ValueError(f"stall_after_intervals must be >= 1, got "
                             f"{self.stall_after_intervals}")
        if self.request_max_bytes < 1024:
            raise ValueError(f"request_max_bytes must be >= 1024, got "
                             f"{self.request_max_bytes}")
        if self.request_deadline_seconds < 0:
            raise ValueError(
                f"request_deadline_seconds must be >= 0 (0 disables "
                f"deadlines), got {self.request_deadline_seconds}")
        if self.warm_interval_seconds <= 0:
            raise ValueError(f"warm_interval_seconds must be > 0, got "
                             f"{self.warm_interval_seconds}")
        if self.warm_top_k < 1:
            raise ValueError(f"warm_top_k must be >= 1, got "
                             f"{self.warm_top_k}")
        if self.warm_step_budget < 1:
            raise ValueError(f"warm_step_budget must be >= 1, got "
                             f"{self.warm_step_budget}")
        # Imported here, not at module top: config stays importable
        # without dragging the forecasting stack into every consumer.
        from ..forecast.forecasters import FORECASTERS
        if self.warm_forecaster not in FORECASTERS:
            raise ValueError(
                f"warm_forecaster must be one of {sorted(FORECASTERS)}, "
                f"got {self.warm_forecaster!r}")
        if self.warm_window_seconds <= 0:
            raise ValueError(f"warm_window_seconds must be > 0, got "
                             f"{self.warm_window_seconds}")
        return self

    def replace(self, **overrides) -> "ServeConfig":
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> dict:
        data = {"v": CONFIG_VERSION}
        for spec in dataclasses.fields(self):
            value = getattr(self, spec.name)
            data[spec.name] = dict(value) if isinstance(value, dict) \
                else value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServeConfig":
        """Rebuild a config; unknown versions and fields fail loudly."""
        data = dict(data)
        version = data.pop("v", CONFIG_VERSION)
        if version != CONFIG_VERSION:
            raise ValueError(
                f"unsupported serving-config version {version!r}; this "
                f"build speaks v{CONFIG_VERSION}")
        known = {spec.name for spec in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ServeConfig fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}")
        return cls(**data).validate()


class HotConfig:
    """The live serving config: atomic replacement plus change fanout.

    Listeners are callables ``listener(config)`` invoked (outside the
    lock) after every successful :meth:`apply`; components register one
    and re-derive their internal limits from the new document.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 path: Optional[str] = None):
        self._config = (config if config is not None
                        else ServeConfig()).validate()
        self._path = path
        self._mtime: Optional[float] = None
        self._lock = threading.Lock()
        self._listeners: list = []
        self.version = 0
        if path is not None and os.path.exists(path):
            self.reload_if_changed()

    @property
    def current(self) -> ServeConfig:
        with self._lock:
            return self._config

    def subscribe(self, listener: Callable[[ServeConfig], None],
                  replay: bool = True) -> None:
        """Register a change listener (optionally replaying current)."""
        with self._lock:
            self._listeners.append(listener)
            config = self._config
        if replay:
            listener(config)

    def apply(self, update) -> ServeConfig:
        """Atomically replace the config from a document or instance.

        ``update`` is a full/partial ``to_dict`` document (partial
        documents are overrides on the *current* config) or a
        :class:`ServeConfig`.  Validation failures leave the running
        config untouched.
        """
        with self._lock:
            if isinstance(update, ServeConfig):
                config = update.validate()
            else:
                update = dict(update)
                version = update.pop("v", CONFIG_VERSION)
                if version != CONFIG_VERSION:
                    raise ValueError(
                        f"unsupported serving-config version "
                        f"{version!r}; this build speaks "
                        f"v{CONFIG_VERSION}")
                known = {spec.name
                         for spec in dataclasses.fields(ServeConfig)}
                unknown = set(update) - known
                if unknown:
                    raise ValueError(
                        f"unknown ServeConfig fields {sorted(unknown)}")
                config = self._config.replace(**update).validate()
            self._config = config
            self.version += 1
            listeners = list(self._listeners)
        for listener in listeners:
            listener(config)
        return config

    def reload_if_changed(self) -> bool:
        """Re-read the watched JSON file if its mtime moved.

        Returns True when a new config was applied.  Unreadable or
        invalid files are reported by raising — the previous config
        stays live either way.
        """
        if self._path is None:
            return False
        try:
            mtime = os.stat(self._path).st_mtime
        except OSError:
            return False
        if mtime == self._mtime:
            return False
        with open(self._path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        self.apply(data)
        self._mtime = mtime
        return True
