"""Serving observability: streaming histograms, rates, one registry.

Latency percentiles come from :class:`StreamingHistogram` — a fixed
set of geometrically spaced buckets, O(1) per observation and O(buckets)
per percentile query, so recording a million requests costs a million
integer increments, not a million stored floats.  Queries-per-second
come from :class:`RateWindow`, a per-second ring of counters (no
timestamp lists to grow without bound).

:class:`MetricsRegistry` aggregates counters, per-route latency
histograms, rate windows, gauges (late-bound callables sampled at
snapshot time — pool utilization, plan-cache hit rate, queue depth)
and free-form facts (the watchdog's verdict).  Everything is
thread-safe: requests are recorded from the event loop *and* the engine
executor threads, and ``/metrics`` serves
:meth:`MetricsRegistry.snapshot` from whichever thread asks.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

#: Percentiles reported for every route.
PERCENTILES = (0.50, 0.95, 0.99)


class StreamingHistogram:
    """Geometric-bucket histogram with percentile estimation.

    Buckets span ``[min_value, max_value]`` with ``growth``-factor
    spacing; observations below/above clamp into the edge buckets.
    Percentiles interpolate within the winning bucket, so the error is
    bounded by the bucket's relative width (4 buckets per factor of
    ~2.4 at the default growth of 1.25 — plenty for tail-latency
    reporting).
    """

    def __init__(self, min_value: float = 1e-4, max_value: float = 600.0,
                 growth: float = 1.25):
        if min_value <= 0 or max_value <= min_value or growth <= 1.0:
            raise ValueError(
                f"need 0 < min_value < max_value and growth > 1, got "
                f"min={min_value}, max={max_value}, growth={growth}")
        bounds = [min_value]
        while bounds[-1] < max_value:
            bounds.append(bounds[-1] * growth)
        #: Upper bounds; bucket i counts values in (bounds[i-1], bounds[i]].
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # + overflow bucket
        self.count = 0
        self.total = 0.0
        self.max_seen = 0.0
        self._lock = threading.Lock()

    def _bucket(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def record(self, value: float) -> None:
        index = self._bucket(value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if value > self.max_seen:
                self.max_seen = value

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0 < q <= 1); 0.0 when empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            seen = 0
            for index, bucket_count in enumerate(self.counts):
                seen += bucket_count
                if seen >= rank:
                    if index >= len(self.bounds):
                        return self.max_seen
                    upper = self.bounds[index]
                    lower = self.bounds[index - 1] if index else 0.0
                    # Linear interpolation inside the bucket.
                    into = (rank - (seen - bucket_count)) / bucket_count
                    return lower + (upper - lower) * into
            return self.max_seen

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        stats = {"count": self.count, "mean": self.mean,
                 "max": self.max_seen}
        for q in PERCENTILES:
            stats[f"p{int(q * 100)}"] = self.percentile(q)
        return stats


class RateWindow:
    """Events-per-second over trailing windows, via a per-second ring."""

    def __init__(self, window_seconds: int = 60,
                 clock: Callable[[], float] = time.monotonic):
        if window_seconds < 1:
            raise ValueError(f"window_seconds must be >= 1, got "
                             f"{window_seconds}")
        self.window_seconds = window_seconds
        self._clock = clock
        self._counts = [0] * window_seconds
        self._seconds = [-1] * window_seconds
        self._lock = threading.Lock()

    def record(self, n: int = 1) -> None:
        second = int(self._clock())
        slot = second % self.window_seconds
        with self._lock:
            if self._seconds[slot] != second:
                self._seconds[slot] = second
                self._counts[slot] = 0
            self._counts[slot] += n

    def rate(self, over_seconds: Optional[int] = None) -> float:
        """Mean events/second over the trailing window (excluding the
        in-progress current second, which would bias the rate low)."""
        over = over_seconds or self.window_seconds
        over = min(over, self.window_seconds - 1) or 1
        now_second = int(self._clock())
        total = 0
        with self._lock:
            for age in range(1, over + 1):
                second = now_second - age
                slot = second % self.window_seconds
                if self._seconds[slot] == second:
                    total += self._counts[slot]
        return total / over


class MetricsRegistry:
    """All serving metrics in one place (and one ``/metrics`` payload).

    Counters and histograms are created on first touch; gauges are
    registered callables evaluated lazily at snapshot time; facts are
    small dicts set wholesale (the watchdog's state).
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self.started_at = clock()
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, StreamingHistogram] = {}
        self._gauges: Dict[str, Callable[[], object]] = {}
        self._facts: Dict[str, dict] = {}
        self.requests = RateWindow(clock=clock)
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def _histogram(self, route: str) -> StreamingHistogram:
        with self._lock:
            histogram = self._histograms.get(route)
            if histogram is None:
                histogram = self._histograms.setdefault(
                    route, StreamingHistogram())
        return histogram

    def observe(self, route: str, seconds: float) -> None:
        """Record one completed request on ``route`` (and the ``total``
        aggregate — one ``requests_total`` bump per call)."""
        self._histogram(route).record(seconds)
        if route != "total":
            self._histogram("total").record(seconds)
        self.inc("requests_total")
        self.inc(f"requests.{route}")
        self.requests.record()

    def register_gauge(self, name: str,
                       fn: Callable[[], object]) -> None:
        with self._lock:
            self._gauges[name] = fn

    def set_fact(self, name: str, value: dict) -> None:
        with self._lock:
            self._facts[name] = dict(value)

    def get_fact(self, name: str) -> dict:
        with self._lock:
            return dict(self._facts.get(name, {}))

    # -- reporting ----------------------------------------------------

    def snapshot(self) -> dict:
        """The full observable state (the ``/metrics`` payload)."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            gauges = dict(self._gauges)
            facts = {name: dict(value)
                     for name, value in self._facts.items()}
        latency = {route: histogram.summary()
                   for route, histogram in histograms.items()}
        gauge_values = {}
        for name, fn in gauges.items():
            try:
                gauge_values[name] = fn()
            except Exception as exc:  # a broken gauge must not break /metrics
                gauge_values[name] = f"<error: {type(exc).__name__}>"
        return {
            "uptime_seconds": self._clock() - self.started_at,
            "counters": counters,
            "latency_seconds": latency,
            "qps": {"10s": self.requests.rate(10),
                    "60s": self.requests.rate(60)},
            "gauges": gauge_values,
            "facts": facts,
        }
