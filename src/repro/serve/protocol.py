"""The JSON wire protocol: requests to queries, answers to bytes.

The serving tier's correctness gate is *byte identity*: an answer
served over HTTP must be byte-for-byte the answer the in-process engine
gives for the same query, policy and seed.  Everything in this module
is therefore deterministic by construction:

* **Requests** describe queries structurally — a process *family* name
  plus scalar constructor parameters, a named state evaluation ``z``, a
  threshold and a horizon — so the server can rebuild the exact
  :class:`~repro.core.value_functions.DurabilityQuery` a library caller
  would construct.  Families resolve through :data:`PROCESS_FAMILIES`
  and evaluations through :data:`Z_FUNCTIONS` (the same staticmethods
  the substrates ship, so plan-cache keys match in-process callers').
* **Responses** encode estimates through :func:`encode_estimate` /
  :func:`encode_curve` and serialize with :func:`dumps_canonical`
  (sorted keys, no whitespace) — the single canonical byte encoding
  shared by the server, the identity tests and the load benchmark.
  Wall-clock fields (``elapsed_seconds``, anywhere in the payload) are
  *excluded* from the canonical form: they are reported in the
  ``X-Elapsed-Ms`` response header instead, so two runs of the same
  query produce the same bytes.

Malformed requests raise :class:`ProtocolError` (mapped to HTTP 400);
the message always names the offending field.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

import numpy as np

from ..core.levels import LevelPartition
from ..core.value_functions import DurabilityQuery
from ..engine.policy import ExecutionPolicy
from ..processes import (ARProcess, CompoundPoissonProcess, GBMProcess,
                         GaussianWalkProcess, ImpulseProcess,
                         MarkovChainProcess, RandomWalkProcess,
                         TandemQueueProcess)

#: Wire-format version; bumped on incompatible protocol changes.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A malformed or unserviceable request (HTTP 400)."""


#: Process families constructible over the wire.  ``impulse`` is the
#: composition wrapper and takes a nested ``base`` spec.
PROCESS_FAMILIES = {
    "random_walk": RandomWalkProcess,
    "gaussian_walk": GaussianWalkProcess,
    "gbm": GBMProcess,
    "ar": ARProcess,
    "markov_chain": MarkovChainProcess,
    "tandem_queue": TandemQueueProcess,
    "cpp": CompoundPoissonProcess,
    "impulse": ImpulseProcess,
}

#: Named state evaluations.  These are the *same* staticmethod objects
#: the substrates ship, so a wire query lands on the same plan-cache
#: key as the equivalent in-process query.
Z_FUNCTIONS = {
    "position": RandomWalkProcess.position,
    "price": GBMProcess.price,
    "current_value": ARProcess.current_value,
    "queue2_length": TandemQueueProcess.queue2_length,
    "queue1_length": TandemQueueProcess.queue1_length,
    "total_customers": TandemQueueProcess.total_customers,
    "surplus": CompoundPoissonProcess.surplus,
}

#: Default evaluation per family (what a library caller would pick).
DEFAULT_Z = {
    "random_walk": "position",
    "gaussian_walk": "position",
    "gbm": "price",
    "ar": "current_value",
    "tandem_queue": "queue2_length",
    "cpp": "surplus",
}


def _require(data: dict, field: str, context: str):
    if field not in data:
        raise ProtocolError(f"{context}: missing required field "
                            f"{field!r}")
    return data[field]


def _as_dict(value, context: str) -> dict:
    if not isinstance(value, dict):
        raise ProtocolError(
            f"{context}: expected an object, got "
            f"{type(value).__name__}")
    return value


def build_process(spec) -> object:
    """Instantiate a process from a wire spec.

    ``{"family": <name>, "params": {...}}``; parameters are passed to
    the family's constructor verbatim (scalars, or lists for matrix /
    coefficient parameters).  The ``impulse`` family nests its base
    process as ``params["base"]``, itself a process spec.
    """
    spec = _as_dict(spec, "process")
    family = _require(spec, "family", "process")
    cls = PROCESS_FAMILIES.get(family)
    if cls is None:
        raise ProtocolError(
            f"process: unknown family {family!r}; choose from "
            f"{sorted(PROCESS_FAMILIES)}")
    params = dict(_as_dict(spec.get("params", {}), "process.params"))
    if family == "impulse":
        base_spec = _require(params, "base", "process.params (impulse)")
        params["base"] = build_process(base_spec)
    try:
        return cls(**params)
    except ProtocolError:
        raise
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"process: cannot build {family!r} from params "
            f"{sorted(k for k in params)}: {exc}") from None


def resolve_z(name: Optional[str], family: str, process) -> object:
    """Resolve a named state evaluation for a process.

    ``None`` falls back to the family default; names not in
    :data:`Z_FUNCTIONS` resolve against the process instance (bound
    methods like :meth:`MarkovChainProcess.state_value` — correct, but
    keyed by object identity in the plan cache).
    """
    if name is None:
        name = DEFAULT_Z.get(family)
        if name is None:
            raise ProtocolError(
                f"query: family {family!r} has no default evaluation; "
                f"pass \"z\" explicitly")
    fn = Z_FUNCTIONS.get(name)
    if fn is not None:
        return fn
    bound = getattr(process, name, None)
    if callable(bound):
        return bound
    raise ProtocolError(
        f"query: unknown evaluation z={name!r}; choose from "
        f"{sorted(Z_FUNCTIONS)} or a method of the process")


def parse_query(data) -> DurabilityQuery:
    """Build a threshold :class:`DurabilityQuery` from a wire query."""
    data = _as_dict(data, "query")
    process_spec = _as_dict(_require(data, "process", "query"),
                            "query.process")
    process = build_process(process_spec)
    beta = _require(data, "beta", "query")
    if not isinstance(beta, (int, float)) or isinstance(beta, bool) \
            or beta <= 0:
        raise ProtocolError(f"query: beta must be a positive number, "
                            f"got {beta!r}")
    horizon = _require(data, "horizon", "query")
    if not isinstance(horizon, int) or isinstance(horizon, bool) \
            or horizon < 1:
        raise ProtocolError(f"query: horizon must be an integer >= 1, "
                            f"got {horizon!r}")
    name = data.get("name", "")
    if not isinstance(name, str):
        raise ProtocolError(f"query: name must be a string, got "
                            f"{name!r}")
    z = resolve_z(data.get("z"), process_spec.get("family"), process)
    try:
        return DurabilityQuery.threshold(process, z, beta=float(beta),
                                         horizon=horizon, name=name)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"query: {exc}") from None


def parse_partition(data) -> Optional[LevelPartition]:
    """An optional explicit level plan: an ascending boundary list."""
    if data is None:
        return None
    if not isinstance(data, (list, tuple)):
        raise ProtocolError(
            f"partition: expected a list of boundaries, got "
            f"{type(data).__name__}")
    try:
        return LevelPartition(float(b) for b in data)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"partition: {exc}") from None


def parse_thresholds(data) -> list:
    """A curve's threshold grid (validated downstream by the engine)."""
    if not isinstance(data, (list, tuple)) or not data:
        raise ProtocolError(
            "thresholds: expected a non-empty list of numbers")
    grid = []
    for value in data:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ProtocolError(
                f"thresholds: expected numbers, got {value!r}")
        grid.append(float(value))
    return grid


def parse_policy(data, base: ExecutionPolicy) -> ExecutionPolicy:
    """Resolve the request's execution policy.

    ``data`` is either ``None`` (use ``base`` — the session's or the
    server's default policy) or a (possibly partial)
    :meth:`ExecutionPolicy.to_dict` document applied as field overrides
    on top of ``base``.  Unknown fields and unknown ``"v"`` versions
    fail with a :class:`ProtocolError`.
    """
    if data is None:
        return base
    data = _as_dict(data, "policy")
    try:
        parsed = ExecutionPolicy.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"policy: {exc}") from None
    overrides = {key: getattr(parsed, key) for key in data
                 if key != "v"}
    try:
        return base.replace(**overrides).validate()
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"policy: {exc}") from None


# ----------------------------------------------------------------------
# Canonical response encoding
# ----------------------------------------------------------------------

def jsonable(value):
    """Deterministic JSON-safe deep conversion of result payloads.

    Wall-clock keys (anything ending in ``_seconds`` —
    ``elapsed_seconds``, ``bootstrap_seconds``, ...) are dropped at
    every level, NumPy scalars unwrap, :class:`LevelPartition` becomes
    its boundary list, dataclasses (trace points) convert field-wise,
    and anything else irreducible collapses to its type name — never
    its ``repr``, which could leak memory addresses and break byte
    identity.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, LevelPartition):
        return [float(b) for b in value.boundaries]
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()
                if not str(key).endswith("_seconds")}
    if isinstance(value, (list, tuple, np.ndarray)):
        return [jsonable(item) for item in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)
                if not field.name.endswith("_seconds")}
    return f"<{type(value).__qualname__}>"


def encode_estimate(estimate) -> dict:
    """The canonical wire form of a :class:`DurabilityEstimate`.

    Excludes ``elapsed_seconds`` (wall clock; see the module
    docstring) — everything else is a pure function of query + policy
    + seed, which is what the byte-identity contract quantifies over.
    """
    return {
        "probability": float(estimate.probability),
        "variance": float(estimate.variance),
        "n_roots": int(estimate.n_roots),
        "hits": int(estimate.hits),
        "steps": int(estimate.steps),
        "method": estimate.method,
        "details": jsonable(estimate.details),
    }


#: Details keys that record how a level plan was *found* (search vs
#: cache vs store vs warmed) rather than what the sampler computed.
PLAN_PROVENANCE_KEYS = ("plan_source", "plan_cache", "plan_origin",
                        "plan_search")


def strip_plan_provenance(doc: dict) -> dict:
    """An encoded estimate/curve minus its plan-provenance details.

    The warm-start byte-identity contract says a cold-searched, a
    store-loaded and a pre-warmed answer to one query are the same
    *answer*: every sampled quantity (probability, variance, roots,
    hits, steps, backend) is byte-identical.  Their provenance
    legitimately differs — that is the whole point of warming — so
    comparisons quantify over the encoded document with the
    :data:`PLAN_PROVENANCE_KEYS` removed.  Recursive, so curve
    documents (per-estimate details) are covered too.
    """
    doc = dict(doc)
    details = doc.get("details")
    if isinstance(details, dict):
        doc["details"] = {key: value for key, value in details.items()
                          if key not in PLAN_PROVENANCE_KEYS}
    estimates = doc.get("estimates")
    if isinstance(estimates, list):
        doc["estimates"] = [strip_plan_provenance(item)
                            if isinstance(item, dict) else item
                            for item in estimates]
    return doc


def encode_curve(curve) -> dict:
    """The canonical wire form of a whole :class:`DurabilityCurve`."""
    return {
        "thresholds": [float(b) for b in curve.thresholds],
        "levels": [float(v) for v in curve.levels],
        "method": curve.method,
        "n_roots": int(curve.n_roots),
        "steps": int(curve.steps),
        "details": jsonable(curve.details),
        "estimates": [encode_estimate(e) for e in curve.estimates],
    }


def curve_events(curve) -> list:
    """The chunk sequence of a streamed curve response, in wire order.

    ``start`` (the grid, before any point), one ``point`` per
    threshold ascending, then ``end`` with the shared-pass totals.
    Each event is one chunk on the wire; the point events are exactly
    :func:`encode_estimate` of the corresponding grid estimate, so
    streamed and unary curve responses are point-wise byte-identical.
    """
    events = [{"event": "start",
               "thresholds": [float(b) for b in curve.thresholds],
               "levels": [float(v) for v in curve.levels],
               "method": curve.method}]
    for beta, estimate in zip(curve.thresholds, curve.estimates):
        events.append({"event": "point", "threshold": float(beta),
                       "estimate": encode_estimate(estimate)})
    events.append({"event": "end", "n_roots": int(curve.n_roots),
                   "steps": int(curve.steps),
                   "details": jsonable(curve.details)})
    return events


def dumps_canonical(payload) -> bytes:
    """The one canonical JSON byte encoding (sorted keys, compact)."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def error_body(kind: str, message: str, **extra) -> dict:
    """The uniform error envelope (``ok: false``)."""
    error = {"kind": kind, "message": message}
    error.update(extra)
    return {"ok": False, "error": error}
